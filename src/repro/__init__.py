"""repro — reproduction of the DAC 2016 P-ILP RFIC layout generation paper.

The package is organised as a set of substrates (ILP solving, geometry,
circuit/netlist model, layout model, RF simulation) underneath the paper's
core contribution, the progressive ILP-based layout generator in
:mod:`repro.core`.

High-level entry points
-----------------------
``repro.core.PILPLayoutGenerator``
    The progressive flow of Section 5 (the paper's headline method).
``repro.baselines.ManualLikeFlow``
    The sequential place-then-route baseline standing in for manual layouts.
``repro.circuits``
    Reconstructions of the paper's three benchmark circuits.
``repro.experiments``
    Harnesses regenerating Table 1 and Figure 11.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
