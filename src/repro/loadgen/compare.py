"""Snapshot diff engine: turn the ``BENCH_*.json`` trajectory into a gate.

PR 7 made perf claims *diffable*; this module makes them *enforceable*.
:func:`compare_snapshots` loads two ``rfic-bench`` envelopes, walks their
``data`` trees, and classifies every numeric series by what kind of
number it is — because the tolerance that keeps CI honest for a counter
would flake constantly for a timing:

``counter``
    Invariant bookkeeping that must match to the unit on a same-plan
    re-run: reconciliation ``ok`` flags, lost jobs, submit errors,
    failures, journal drops, supervision counters.  Any drift is a
    ``regression`` — these numbers have no noise.
``plan``
    The workload identity (``spec``/``config`` subtrees).  A mismatch
    means the two snapshots measured *different experiments*; that is a
    ``warn`` for ad-hoc diffing and a gate failure under ``--gate``.
``latency``
    Lower-is-better timings (latency percentiles, wall clocks, stage
    sums, benchmark ``timings_s``).  Compared by ratio with a noise
    floor: values where both sides sit under the floor are scheduler
    jitter, not signal.  ``warn`` on moderate drift, ``regression``
    only on order-of-magnitude drift — generous on purpose, so a CI
    runner that is 2x slower than the baseline machine never flakes.
``throughput``
    Higher-is-better rates (``*_per_s``); the inverse ratio of latency.
``info``
    Everything else — scheduling-timing-dependent numbers such as the
    attach/cache disposition split, queue-depth peaks, SSE event
    counts, cache hit rates.  Reported (large drifts are worth eyes)
    but never gated: two correct runs of the same plan legitimately
    disagree about them.

The report is machine-readable (:meth:`DiffReport.to_dict`) and
human-readable (:meth:`DiffReport.to_text`); the CLI surface is
``rfic-layout bench diff BASELINE CURRENT [--gate] [--json]``.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.loadgen.snapshot import load_snapshot

__all__ = [
    "DiffEntry",
    "DiffReport",
    "Thresholds",
    "compare_snapshots",
    "diff_snapshot_files",
]

PathLike = Union[str, Path]

#: Verdict severity order (worst wins for the report-level verdict).
_SEVERITY = {"ok": 0, "warn": 1, "regression": 2}


@dataclass(frozen=True)
class Thresholds:
    """Noise-aware tolerances, one pair per timing-shaped class.

    The fail ratios are deliberately generous (order of magnitude): the
    gate exists to catch a 10x latency regression merging green, not to
    litigate machine-to-machine variance.  Counters get no tolerance at
    all — they are exact by contract.
    """

    latency_warn_ratio: float = 2.0
    latency_fail_ratio: float = 10.0
    throughput_warn_ratio: float = 2.0
    throughput_fail_ratio: float = 10.0
    #: Timings where *both* sides sit at or under this are noise, not
    #: signal (sub-5ms scheduling jitter ratios wildly run to run).
    latency_floor_s: float = 0.005
    #: Throughputs where both sides sit under this are likewise ignored.
    throughput_floor: float = 0.01

    def __post_init__(self) -> None:
        for name in ("latency", "throughput"):
            warn = getattr(self, f"{name}_warn_ratio")
            fail = getattr(self, f"{name}_fail_ratio")
            if warn < 1.0 or fail < warn:
                raise ValueError(
                    f"need 1 <= {name}_warn_ratio <= {name}_fail_ratio "
                    f"(got {warn}, {fail})"
                )


@dataclass
class DiffEntry:
    """One compared numeric series."""

    path: str
    metric_class: str  # counter | plan | latency | throughput | info
    baseline: Optional[float]
    current: Optional[float]
    verdict: str  # ok | warn | regression
    ratio: Optional[float] = None  # current/baseline for timings
    note: str = ""

    def to_dict(self) -> Dict[str, object]:
        doc: Dict[str, object] = {
            "path": self.path,
            "class": self.metric_class,
            "baseline": self.baseline,
            "current": self.current,
            "verdict": self.verdict,
        }
        if self.ratio is not None and math.isfinite(self.ratio):
            doc["ratio"] = round(self.ratio, 4)
        if self.note:
            doc["note"] = self.note
        return doc


@dataclass
class DiffReport:
    """Everything one snapshot comparison concluded."""

    name: str
    baseline_ref: str
    current_ref: str
    entries: List[DiffEntry] = field(default_factory=list)
    provenance_warnings: List[str] = field(default_factory=list)

    @property
    def verdict(self) -> str:
        worst = "ok"
        for entry in self.entries:
            if _SEVERITY[entry.verdict] > _SEVERITY[worst]:
                worst = entry.verdict
        return worst

    @property
    def plan_mismatch(self) -> bool:
        """Whether the two snapshots measured different experiments."""
        return any(
            e.metric_class == "plan" and e.verdict != "ok" for e in self.entries
        )

    def gate_verdict(self, gate: bool = False) -> str:
        """The verdict CI acts on.

        ``regression`` always gates.  Under ``--gate`` a plan mismatch
        gates too: a baseline comparison against a *different workload*
        proves nothing, and CI silently passing on it would be worse
        than failing loudly.
        """
        verdict = self.verdict
        if gate and verdict != "regression" and self.plan_mismatch:
            return "regression"
        return verdict

    def counts(self) -> Dict[str, int]:
        tally = {"ok": 0, "warn": 0, "regression": 0}
        for entry in self.entries:
            tally[entry.verdict] += 1
        return tally

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "baseline": self.baseline_ref,
            "current": self.current_ref,
            "verdict": self.verdict,
            "plan_mismatch": self.plan_mismatch,
            "counts": self.counts(),
            "provenance_warnings": list(self.provenance_warnings),
            "entries": [entry.to_dict() for entry in self.entries],
        }

    def to_text(self, show_ok: bool = False) -> str:
        """Human-readable table: the non-ok entries, worst first."""
        lines = [
            f"bench diff [{self.name}]: {self.baseline_ref} -> {self.current_ref}"
        ]
        for warning in self.provenance_warnings:
            lines.append(f"  ! {warning}")
        shown = [
            e for e in self.entries if show_ok or e.verdict != "ok" or e.note
        ]
        shown.sort(key=lambda e: (-_SEVERITY[e.verdict], e.path))
        if shown:
            width = max(len(e.path) for e in shown)
            for entry in shown:
                ratio = (
                    f" ({entry.ratio:.2f}x)"
                    if entry.ratio is not None and math.isfinite(entry.ratio)
                    else ""
                )
                note = f"  [{entry.note}]" if entry.note else ""
                lines.append(
                    f"  {entry.verdict.upper():>10}  {entry.path:<{width}}  "
                    f"{_fmt(entry.baseline)} -> {_fmt(entry.current)}"
                    f"{ratio}{note}"
                )
        tally = self.counts()
        lines.append(
            f"verdict: {self.verdict.upper()} "
            f"({tally['regression']} regression(s), {tally['warn']} warning(s), "
            f"{tally['ok']} ok)"
        )
        return "\n".join(lines)


def _fmt(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if float(value).is_integer() and abs(value) < 1e12:
        return str(int(value))
    return f"{value:.6g}"


# ---------------------------------------------------------------------- #
# classification
# ---------------------------------------------------------------------- #

#: First matching rule wins; evaluated against the dotted leaf path.
_CLASS_RULES: Tuple[Tuple[str, str], ...] = (
    # Not comparable at all: timestamps, per-sample timelines, hints.
    (r"(^|\.)(created_unix|.*_unix)$", "ignore"),
    (r"(^|\.)queue_depth\.samples(\.|$)", "ignore"),
    (r"(^|\.)trace_sample(\.|$)", "ignore"),
    (r"(^|\.)uptime_s$", "ignore"),
    (r"(^|\.)retry_after_hint_s$", "ignore"),
    # Workload identity: a mismatch means different experiments.
    (r"^(spec|config|context)(\.|$)", "plan"),
    # Hard invariants of a correct run — exact on any plan re-run.  Note
    # the reconciliation subtree: its *.ok flags are invariant (caught by
    # the rule below), but the client/server tallies they compare are
    # timing-dependent dispositions and fall through to "info".
    (r"(^|\.)ok$", "counter"),
    (r"(^|\.)(lost_jobs|submit_errors)(\.len)?$", "counter"),
    (r"(^|\.)(failures|journal_dropped_lines)$", "counter"),
    (r"(^|\.)jobs\.(failed|timeout|cancelled)$", "counter"),
    (r"(^|\.)(dispatcher_restarts|poisoned|crash_retries|put_errors"
     r"|journal_write_errors|watchers_stalled)$", "counter"),
    # A healthy load run never trips cache integrity: any quarantined
    # entry means corruption was detected mid-run — exact, gated.
    (r"(^|\.)cache\.quarantined$", "counter"),
    # Checkpoint/resume tallies depend on crash timing (which worker died
    # where), so they are real numbers but never comparable across runs;
    # the whole subtree is informational, including its histogram
    # sum_s/mean_s leaves that would otherwise classify as latency.
    (r"(^|\.)resumes(\.|$)", "info"),
    # Throughput before the generic latency rules: "per second" rates.
    (r"_per_s$", "throughput"),
    # Tail samples of a latency summary (max, and p99 at CI sample sizes
    # is effectively the max) are a single worst observation: one GC
    # pause moves them >10x between correct same-plan runs, so gating
    # them flakes.  The gate rides mean/p50/p95 instead.
    (r"(^|\.)[a-z_]*(latency|lag|wall)[a-z_]*_s\.(max|p99)$", "info"),
    # Latency-shaped: summary stats inside *_s subtrees, wall clocks,
    # benchmark timings, histogram sums/means.
    (r"(^|\.)timings_s\.", "latency"),
    (r"(^|\.)[a-z_]*(latency|lag|wall)[a-z_]*_s"
     r"(\.(mean|min|p50|p95))?$", "latency"),
    (r"(^|\.)(stages?_s\.[a-z_]+\.)?(sum_s|mean_s)$", "latency"),
    # Sample counts, disposition splits, cache hit rates, SSE tallies:
    # real numbers, timing-dependent — reported, never gated.
    (r".*", "info"),
)

_COMPILED_RULES = tuple(
    (re.compile(pattern), cls) for pattern, cls in _CLASS_RULES
)


def classify(path: str) -> str:
    """Metric class of one dotted leaf path (see module docstring)."""
    for pattern, cls in _COMPILED_RULES:
        if pattern.search(path):
            return cls
    return "info"  # unreachable: the final rule matches everything


# ---------------------------------------------------------------------- #
# tree walking
# ---------------------------------------------------------------------- #


def _numeric_leaves(node: object, prefix: str = "") -> Dict[str, float]:
    """Flatten ``data`` to ``{dotted.path: float}``.

    Booleans become 0/1 (so ``ok`` flags diff like counters), lists
    contribute their *length* under ``<path>.len`` (so ``lost_jobs``
    stays assertable without diffing per-sample timelines), and
    strings/nulls are skipped — they are annotations, not measurements.
    """
    leaves: Dict[str, float] = {}
    if isinstance(node, dict):
        for key, value in node.items():
            path = f"{prefix}.{key}" if prefix else str(key)
            leaves.update(_numeric_leaves(value, path))
    elif isinstance(node, bool):
        leaves[prefix] = 1.0 if node else 0.0
    elif isinstance(node, (int, float)):
        if math.isfinite(float(node)):
            leaves[prefix] = float(node)
    elif isinstance(node, list):
        leaves[f"{prefix}.len"] = float(len(node))
    return leaves


# ---------------------------------------------------------------------- #
# per-class verdicts
# ---------------------------------------------------------------------- #


def _verdict_exact(path: str, cls: str, base: float, cur: float) -> DiffEntry:
    if base == cur:
        return DiffEntry(path, cls, base, cur, "ok")
    note = (
        "plan differs: not the same experiment"
        if cls == "plan"
        else "invariant counter drifted"
    )
    verdict = "warn" if cls == "plan" else "regression"
    return DiffEntry(path, cls, base, cur, verdict, note=note)


def _verdict_ratio(
    path: str,
    cls: str,
    base: float,
    cur: float,
    floor: float,
    warn_ratio: float,
    fail_ratio: float,
    lower_is_better: bool,
) -> DiffEntry:
    if base <= floor and cur <= floor:
        return DiffEntry(path, cls, base, cur, "ok", note="under noise floor")
    # The ratio in the *bad* direction: >1 means worse either way.
    worse = (
        max(cur, floor) / max(base, floor)
        if lower_is_better
        else max(base, floor) / max(cur, floor)
    )
    ratio = cur / base if base > 0 else math.inf
    if worse >= fail_ratio:
        return DiffEntry(
            path, cls, base, cur, "regression", ratio=ratio,
            note=f"{worse:.1f}x worse (limit {fail_ratio:g}x)",
        )
    if worse >= warn_ratio:
        return DiffEntry(
            path, cls, base, cur, "warn", ratio=ratio,
            note=f"{worse:.1f}x worse",
        )
    note = ""
    if worse > 0 and 1.0 / worse >= warn_ratio:
        note = "improved"
    return DiffEntry(path, cls, base, cur, "ok", ratio=ratio, note=note)


def _verdict_info(path: str, base: float, cur: float) -> DiffEntry:
    if base == cur:
        return DiffEntry(path, "info", base, cur, "ok")
    ratio = cur / base if base else None
    return DiffEntry(
        path, "info", base, cur, "ok", ratio=ratio,
        note="not gated (timing-dependent)",
    )


# ---------------------------------------------------------------------- #
# the comparator
# ---------------------------------------------------------------------- #


def compare_snapshots(
    baseline: Dict[str, object],
    current: Dict[str, object],
    thresholds: Optional[Thresholds] = None,
    baseline_ref: str = "baseline",
    current_ref: str = "current",
) -> DiffReport:
    """Compare two loaded ``rfic-bench`` envelopes; returns the report.

    Both arguments are full envelopes as returned by
    :func:`~repro.loadgen.snapshot.load_snapshot` — the envelope's
    provenance fields (``host``/``platform``) feed the cross-machine
    warning, the ``data`` trees feed the metric diff.
    """
    thresholds = thresholds or Thresholds()
    report = DiffReport(
        name=str(current.get("name", "?")),
        baseline_ref=baseline_ref,
        current_ref=current_ref,
    )
    if baseline.get("name") != current.get("name"):
        report.entries.append(DiffEntry(
            "<envelope>.name", "plan", None, None, "warn",
            note=(
                f"different snapshots: {baseline.get('name')!r} vs "
                f"{current.get('name')!r}"
            ),
        ))
    for field_name in ("host", "platform"):
        base_value = baseline.get(field_name)
        cur_value = current.get(field_name)
        # Absent provenance (pre-provenance snapshots) reads as None and
        # warns once: timings across unknown machines deserve suspicion.
        if base_value != cur_value:
            report.provenance_warnings.append(
                f"{field_name} differs ({base_value or 'unrecorded'} vs "
                f"{cur_value or 'unrecorded'}): timing classes are "
                "cross-machine, expect drift"
            )
    base_leaves = _numeric_leaves(baseline.get("data") or {})
    cur_leaves = _numeric_leaves(current.get("data") or {})
    for path in sorted(set(base_leaves) | set(cur_leaves)):
        cls = classify(path)
        if cls == "ignore":
            continue
        base_value = base_leaves.get(path)
        cur_value = cur_leaves.get(path)
        if base_value is None or cur_value is None:
            side = "baseline" if base_value is None else "current"
            verdict = "warn" if cls in ("counter", "plan") else "ok"
            report.entries.append(DiffEntry(
                path, cls, base_value, cur_value, verdict,
                note=f"missing in {side}",
            ))
            continue
        if cls in ("counter", "plan"):
            report.entries.append(_verdict_exact(path, cls, base_value, cur_value))
        elif cls == "latency":
            report.entries.append(_verdict_ratio(
                path, cls, base_value, cur_value,
                thresholds.latency_floor_s,
                thresholds.latency_warn_ratio,
                thresholds.latency_fail_ratio,
                lower_is_better=True,
            ))
        elif cls == "throughput":
            report.entries.append(_verdict_ratio(
                path, cls, base_value, cur_value,
                thresholds.throughput_floor,
                thresholds.throughput_warn_ratio,
                thresholds.throughput_fail_ratio,
                lower_is_better=False,
            ))
        else:
            report.entries.append(_verdict_info(path, base_value, cur_value))
    return report


def diff_snapshot_files(
    baseline: PathLike,
    current: PathLike,
    thresholds: Optional[Thresholds] = None,
) -> DiffReport:
    """Load two snapshot files (or bare names) and compare them."""
    return compare_snapshots(
        load_snapshot(baseline),
        load_snapshot(current),
        thresholds=thresholds,
        baseline_ref=str(baseline),
        current_ref=str(current),
    )
