"""Schema-versioned benchmark snapshots (the ``BENCH_*.json`` files).

Every benchmark in this repo — the service load harness, the model-build
microbenchmarks, the batch-runner benchmarks — persists its results
through this module, so the repo accumulates a *benchmark trajectory*:
stable, diffable JSON files committed alongside the code they measure.
A perf claim in a PR description is checkable by diffing the snapshot it
committed against the previous one.

Envelope (``schema_version`` 1)::

    {
      "schema": "rfic-bench",
      "schema_version": 1,
      "name": "service_load",
      "created_unix": 1721998800.5,
      "python": "3.11.9",
      "platform": "Linux-...",
      "data": { ... benchmark-specific payload ... }
    }

Only the envelope is versioned here; each benchmark owns its ``data``
layout.  Files land in the repository root by default (``BENCH_<name>.json``)
so they are committed and diffed like any other artifact; set
:data:`BENCH_DIR_ENV` to redirect them (CI uploads them as artifacts from
a scratch directory).
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path
from typing import Dict, Optional, Union

from repro.errors import ConfigurationError

__all__ = [
    "BENCH_DIR_ENV",
    "SNAPSHOT_SCHEMA",
    "SNAPSHOT_SCHEMA_VERSION",
    "load_snapshot",
    "snapshot_path",
    "write_snapshot",
]

SNAPSHOT_SCHEMA = "rfic-bench"
SNAPSHOT_SCHEMA_VERSION = 1

#: Environment override for where ``BENCH_*.json`` files are written.
BENCH_DIR_ENV = "RFIC_BENCH_DIR"

PathLike = Union[str, Path]


def bench_dir(explicit: Optional[PathLike] = None) -> Path:
    """Resolve the snapshot directory: explicit arg > env > cwd."""
    if explicit is not None:
        return Path(explicit)
    env = os.environ.get(BENCH_DIR_ENV)
    return Path(env) if env else Path.cwd()


def snapshot_path(name: str, directory: Optional[PathLike] = None) -> Path:
    """Where the snapshot ``name`` lives: ``<dir>/BENCH_<name>.json``."""
    if not name or any(ch in name for ch in "/\\"):
        raise ConfigurationError(f"bad snapshot name {name!r}")
    return bench_dir(directory) / f"BENCH_{name}.json"


def write_snapshot(
    name: str, data: Dict[str, object], directory: Optional[PathLike] = None
) -> Path:
    """Write ``data`` under the versioned envelope; returns the path.

    The write is atomic (staging file + ``os.replace``) so a concurrent
    reader — or a benchmark run killed mid-write — never sees a torn
    snapshot.
    """
    envelope = {
        "schema": SNAPSHOT_SCHEMA,
        "schema_version": SNAPSHOT_SCHEMA_VERSION,
        "name": name,
        "created_unix": time.time(),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "data": data,
    }
    target = snapshot_path(name, directory)
    target.parent.mkdir(parents=True, exist_ok=True)
    staging = target.with_name(target.name + f".{os.getpid()}.tmp")
    staging.write_text(
        json.dumps(envelope, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    os.replace(staging, target)
    return target


def load_snapshot(
    name_or_path: PathLike, directory: Optional[PathLike] = None
) -> Dict[str, object]:
    """Load and validate a snapshot; returns the full envelope.

    Accepts either a bare snapshot name (resolved like
    :func:`snapshot_path`) or a path to the JSON file itself.  Raises
    :class:`ConfigurationError` when the file is not an
    ``rfic-bench`` snapshot or its ``schema_version`` is newer than this
    code understands.
    """
    candidate = Path(name_or_path)
    path = (
        candidate
        if candidate.suffix == ".json" or candidate.exists()
        else snapshot_path(str(name_or_path), directory)
    )
    try:
        envelope = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise ConfigurationError(f"no benchmark snapshot at {path}") from None
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"corrupt benchmark snapshot {path}: {exc}") from None
    if not isinstance(envelope, dict) or envelope.get("schema") != SNAPSHOT_SCHEMA:
        raise ConfigurationError(f"{path} is not an {SNAPSHOT_SCHEMA!r} snapshot")
    version = envelope.get("schema_version")
    if not isinstance(version, int) or version > SNAPSHOT_SCHEMA_VERSION:
        raise ConfigurationError(
            f"{path} has schema_version {version!r}; this code understands "
            f"<= {SNAPSHOT_SCHEMA_VERSION}"
        )
    return envelope
