"""Schema-versioned benchmark snapshots (the ``BENCH_*.json`` files).

Every benchmark in this repo — the service load harness, the model-build
microbenchmarks, the batch-runner benchmarks — persists its results
through this module, so the repo accumulates a *benchmark trajectory*:
stable, diffable JSON files committed alongside the code they measure.
A perf claim in a PR description is checkable by diffing the snapshot it
committed against the previous one.

Envelope (``schema_version`` 1)::

    {
      "schema": "rfic-bench",
      "schema_version": 1,
      "name": "service_load",
      "created_unix": 1721998800.5,
      "python": "3.11.9",
      "platform": "Linux-...",
      "host": "ci-runner-3",
      "repro_version": "1.0.0",
      "data": { ... benchmark-specific payload ... }
    }

``host`` and ``repro_version`` are provenance, added within schema
version 1: absent in old files (readers get ``None`` via ``.get``), never
validated, only *reported* — ``bench diff`` warns when the two sides of a
comparison came from different machines, because timing classes are only
honest within one.

Only the envelope is versioned here; each benchmark owns its ``data``
layout.  Files land in the repository root by default (``BENCH_<name>.json``)
so they are committed and diffed like any other artifact; set
:data:`BENCH_DIR_ENV` to redirect them (CI uploads them as artifacts from
a scratch directory).
"""

from __future__ import annotations

import json
import os
import platform
import socket
import time
from pathlib import Path
from typing import Dict, Optional, Union

from repro import __version__ as _REPRO_VERSION
from repro.errors import ConfigurationError

__all__ = [
    "BENCH_DIR_ENV",
    "CorruptSnapshotError",
    "SNAPSHOT_SCHEMA",
    "SNAPSHOT_SCHEMA_VERSION",
    "load_snapshot",
    "snapshot_path",
    "write_snapshot",
]

SNAPSHOT_SCHEMA = "rfic-bench"
SNAPSHOT_SCHEMA_VERSION = 1

#: Environment override for where ``BENCH_*.json`` files are written.
BENCH_DIR_ENV = "RFIC_BENCH_DIR"

PathLike = Union[str, Path]


class CorruptSnapshotError(ConfigurationError):
    """A snapshot file exists but does not parse (torn/truncated write).

    Subclasses :class:`ConfigurationError` so existing handlers keep
    working, but is distinct so callers (``bench diff``, CI gates) can
    tell "the baseline is damaged — regenerate or restore it" apart from
    "you pointed me at the wrong file".
    """


def bench_dir(explicit: Optional[PathLike] = None) -> Path:
    """Resolve the snapshot directory: explicit arg > env > cwd."""
    if explicit is not None:
        return Path(explicit)
    env = os.environ.get(BENCH_DIR_ENV)
    return Path(env) if env else Path.cwd()


def snapshot_path(name: str, directory: Optional[PathLike] = None) -> Path:
    """Where the snapshot ``name`` lives: ``<dir>/BENCH_<name>.json``."""
    if not name or any(ch in name for ch in "/\\"):
        raise ConfigurationError(f"bad snapshot name {name!r}")
    return bench_dir(directory) / f"BENCH_{name}.json"


def write_snapshot(
    name: str, data: Dict[str, object], directory: Optional[PathLike] = None
) -> Path:
    """Write ``data`` under the versioned envelope; returns the path.

    The write is atomic (staging file + ``os.replace``) so a concurrent
    reader — or a benchmark run killed mid-write — never sees a torn
    snapshot.
    """
    envelope = {
        "schema": SNAPSHOT_SCHEMA,
        "schema_version": SNAPSHOT_SCHEMA_VERSION,
        "name": name,
        "created_unix": time.time(),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "host": socket.gethostname(),
        "repro_version": _REPRO_VERSION,
        "data": data,
    }
    target = snapshot_path(name, directory)
    target.parent.mkdir(parents=True, exist_ok=True)
    staging = target.with_name(target.name + f".{os.getpid()}.tmp")
    staging.write_text(
        json.dumps(envelope, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    os.replace(staging, target)
    return target


def load_snapshot(
    name_or_path: PathLike, directory: Optional[PathLike] = None
) -> Dict[str, object]:
    """Load and validate a snapshot; returns the full envelope.

    Accepts either a bare snapshot name (resolved like
    :func:`snapshot_path`) or a path to the JSON file itself.  Raises
    :class:`ConfigurationError` when the file is not an
    ``rfic-bench`` snapshot or its ``schema_version`` is newer than this
    code understands.
    """
    candidate = Path(name_or_path)
    path = (
        candidate
        if candidate.suffix == ".json" or candidate.exists()
        else snapshot_path(str(name_or_path), directory)
    )
    try:
        envelope = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise ConfigurationError(f"no benchmark snapshot at {path}") from None
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        # A torn/truncated file is a *recoverable* state, not a config
        # mistake: the writer is atomic, so this means the file was
        # damaged after the fact (bad checkout, disk trouble, manual
        # edit).  Say exactly what to do about it.
        raise CorruptSnapshotError(
            f"corrupt benchmark snapshot {path}: {exc} — the file is torn "
            "or truncated; restore it (git checkout -- <file>) or "
            "regenerate it with the producing benchmark"
        ) from None
    if not isinstance(envelope, dict) or envelope.get("schema") != SNAPSHOT_SCHEMA:
        raise ConfigurationError(f"{path} is not an {SNAPSHOT_SCHEMA!r} snapshot")
    version = envelope.get("schema_version")
    if not isinstance(version, int) or version > SNAPSHOT_SCHEMA_VERSION:
        raise ConfigurationError(
            f"{path} has schema_version {version!r}; this code understands "
            f"<= {SNAPSHOT_SCHEMA_VERSION}"
        )
    return envelope
