"""Synthetic-load generation for the layout service.

The load harness answers the question the ROADMAP's north star poses:
*does the daemon survive heavy traffic, and how fast is it?*  It boots a
real :class:`~repro.service.daemon.LayoutService` on an ephemeral port,
drives it with concurrent seeded submitters mixing cold solves, cache
hits, attaches and background floods while SSE watchers stream events,
and reconciles the client-observed dispositions against the server's
``/stats`` counters — exactly, because the counters are now lock-
protected.  Results persist as schema-versioned ``BENCH_*.json``
snapshots so every future PR diffs against a recorded baseline.

Layers
------
:mod:`repro.loadgen.workload`
    Deterministic, seeded workload plans (:class:`WorkloadSpec`).
:mod:`repro.loadgen.metrics`
    Percentiles, latency summaries, queue-depth sampling.
:mod:`repro.loadgen.snapshot`
    The ``BENCH_*.json`` envelope: write/load/compare.
:mod:`repro.loadgen.harness`
    :func:`run_load_test` — boot, drive, measure, reconcile.
:mod:`repro.loadgen.compare`
    :func:`compare_snapshots` — the regression gate over two snapshots.
"""

from repro.loadgen.compare import (
    DiffEntry,
    DiffReport,
    Thresholds,
    compare_snapshots,
    diff_snapshot_files,
)
from repro.loadgen.harness import LoadReport, LoadTestConfig, run_load_test
from repro.loadgen.metrics import DepthSampler, percentile, summarize
from repro.loadgen.snapshot import (
    BENCH_DIR_ENV,
    CorruptSnapshotError,
    SNAPSHOT_SCHEMA,
    SNAPSHOT_SCHEMA_VERSION,
    load_snapshot,
    snapshot_path,
    write_snapshot,
)
from repro.loadgen.workload import PlannedSubmission, WorkloadSpec

__all__ = [
    "BENCH_DIR_ENV",
    "CorruptSnapshotError",
    "DepthSampler",
    "DiffEntry",
    "DiffReport",
    "LoadReport",
    "LoadTestConfig",
    "PlannedSubmission",
    "SNAPSHOT_SCHEMA",
    "SNAPSHOT_SCHEMA_VERSION",
    "Thresholds",
    "WorkloadSpec",
    "compare_snapshots",
    "diff_snapshot_files",
    "load_snapshot",
    "percentile",
    "run_load_test",
    "snapshot_path",
    "summarize",
    "write_snapshot",
]
