"""Deterministic, seeded workload plans for the load harness.

A :class:`WorkloadSpec` describes the *shape* of a load run — how many
submissions, how many of them are distinct cold solves versus revisits of
an already-submitted hash, the priority-class mix, how many logical
clients the traffic claims to come from — and :meth:`WorkloadSpec.build`
expands it into a concrete, fully deterministic list of
:class:`PlannedSubmission`.  Same spec + same seed → byte-identical plan,
which is what lets the smoke tier assert *exact* counter reconciliation
instead of tolerances.

Jobs are tiny manual-flow solves (~0.25 s each): the cheapest work the
service can actually run end-to-end, so a multi-hundred-job run fits in
CI seconds.  Distinct cold jobs are minted by salting the job's ``tag``
(``tag`` is part of the PR 3 content hash); revisits resubmit an earlier
tag and therefore land as *attached* (still in flight) or *cached*
(already settled) depending entirely on runtime timing — the plan does
not pretend to know which.
"""

from __future__ import annotations

import random
from dataclasses import asdict, dataclass
from typing import Dict, List

from repro.circuit import LayoutArea, MicrostripNet, Netlist, Terminal
from repro.circuit import make_rf_pad, make_transistor
from repro.errors import ConfigurationError
from repro.runner.jobs import LayoutJob
from repro.service.documents import PRIORITY_CLASSES, job_to_document
from repro.tech import CMOS90

__all__ = ["PlannedSubmission", "WorkloadSpec", "tiny_workload_netlist"]


def tiny_workload_netlist() -> Netlist:
    """The smallest real circuit: two pads, one transistor, two nets.

    Mirrors the test-suite's tiny netlist so a manual-flow solve costs a
    fraction of a second; the workload salts the job ``tag``, never the
    netlist, so every planned job shares this one object.
    """
    devices = [make_rf_pad("P_IN"), make_rf_pad("P_OUT"), make_transistor("M1")]
    nets = [
        MicrostripNet(
            "ms_in", Terminal("P_IN", "SIG"), Terminal("M1", "G"), target_length=250.0
        ),
        MicrostripNet(
            "ms_out", Terminal("M1", "D"), Terminal("P_OUT", "SIG"), target_length=300.0
        ),
    ]
    return Netlist(
        "loadgen-tiny",
        devices,
        nets,
        LayoutArea(400.0, 300.0),
        technology=CMOS90,
        operating_frequency_ghz=94.0,
    )


@dataclass(frozen=True)
class PlannedSubmission:
    """One submission the harness will POST, in plan order."""

    index: int
    key: str  #: the job's content hash (known ahead of time)
    document: Dict[str, object]
    priority: str
    client: str
    #: ``"first"`` — the plan's first occurrence of this hash (a cold
    #: solve, unless an earlier revisit raced ahead of it at runtime);
    #: ``"revisit"`` — a repeat that should attach or hit the cache.
    kind: str


@dataclass(frozen=True)
class WorkloadSpec:
    """Shape of a synthetic load run (see module docstring).

    ``unique_jobs`` distinct hashes are spread over ``jobs`` submissions;
    the surplus ``jobs - unique_jobs`` submissions revisit earlier hashes
    and exercise the attach/cache paths.  Priorities: each submission is
    ``interactive`` with probability ``interactive_fraction``,
    ``background`` with ``background_fraction``, else ``batch``.
    """

    jobs: int = 200
    unique_jobs: int = 40
    submitters: int = 8
    watchers: int = 20
    interactive_fraction: float = 0.2
    background_fraction: float = 0.3
    clients: int = 4
    seed: int = 0
    tag_prefix: str = "loadgen"
    #: Extra revisits submitted *after* the main wave settles — each one
    #: is a guaranteed cache hit (``cached`` disposition), because during
    #: the main wave revisits mostly attach (submission outruns solving).
    cached_wave: int = 0

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ConfigurationError("a workload needs at least one job")
        if self.cached_wave < 0:
            raise ConfigurationError("cached_wave must be >= 0")
        if not 1 <= self.unique_jobs <= self.jobs:
            raise ConfigurationError(
                f"unique_jobs must be in [1, jobs]; got {self.unique_jobs} "
                f"with jobs={self.jobs}"
            )
        if self.submitters < 1 or self.clients < 1:
            raise ConfigurationError("submitters and clients must be >= 1")
        if self.watchers < 0:
            raise ConfigurationError("watchers must be >= 0")
        fractions = self.interactive_fraction + self.background_fraction
        if (
            min(self.interactive_fraction, self.background_fraction) < 0
            or fractions > 1.0
        ):
            raise ConfigurationError(
                "interactive_fraction and background_fraction must be "
                "non-negative and sum to <= 1"
            )

    def as_dict(self) -> Dict[str, object]:
        return asdict(self)

    def build(self) -> List[PlannedSubmission]:
        """Expand into the concrete submission plan (deterministic)."""
        rng = random.Random(self.seed)
        netlist = tiny_workload_netlist()
        pool: List[tuple] = []  # (key, document) per unique hash
        for i in range(self.unique_jobs):
            job = LayoutJob(
                flow="manual",
                netlist=netlist,
                label=f"{self.tag_prefix}-{self.seed}-{i}",
                tag=f"{self.tag_prefix}/{self.seed}/{i}",
            )
            pool.append((job.content_hash, job_to_document(job)))
        # Every unique hash appears at least once; the surplus revisits a
        # uniformly random earlier mint.  Shuffling the whole list means a
        # "revisit" can land before its "first" — kinds are therefore
        # assigned *after* the shuffle, from actual plan order.
        picks = list(range(self.unique_jobs))
        picks += [rng.randrange(self.unique_jobs) for _ in range(self.jobs - self.unique_jobs)]
        rng.shuffle(picks)
        interactive, background = self.interactive_fraction, self.background_fraction
        seen: set = set()
        plan: List[PlannedSubmission] = []
        for index, pick in enumerate(picks):
            key, document = pool[pick]
            roll = rng.random()
            if roll < interactive:
                priority = "interactive"
            elif roll < interactive + background:
                priority = "background"
            else:
                priority = "batch"
            assert priority in PRIORITY_CLASSES
            plan.append(
                PlannedSubmission(
                    index=index,
                    key=key,
                    document=document,
                    priority=priority,
                    client=f"load-client-{rng.randrange(self.clients)}",
                    kind="revisit" if key in seen else "first",
                )
            )
            seen.add(key)
        return plan
