"""Boot a real daemon, drive a seeded workload, measure, reconcile.

:func:`run_load_test` is the whole harness: it assembles a
:class:`~repro.service.daemon.LayoutService` on an ephemeral port
(inline execution — solves run in the dispatcher threads, so a tiny
manual-flow workload finishes in CI seconds), starts the SSE watcher
pool, fires the planned submissions from N concurrent submitter threads,
samples queue depth throughout, waits for settlement, and reconciles the
client-observed dispositions against the server's ``/stats`` counters.

Reconciliation is *exact*, not approximate.  Each admission takes
exactly one path, and each path bumps exactly one server counter:

* ``queued``/``requeued`` dispositions become exactly one settlement —
  a solve, a run-time cache serve, or a failure;
* a ``cached`` disposition bumps ``served_from_cache`` at admission;
* an ``attached`` disposition bumps ``attached``;
* a 429 bumps ``admission.rejected`` or ``admission.shed``.

So ``solved + served_from_cache + failures == queued + requeued +
cached`` and ``attached == attached`` must hold to the unit.  Before the
scheduler's counters moved under a lock these identities drifted under
load — the load harness is the regression test for that fix.

The submitter clients run with ``RetryPolicy(attempts=1)``: a 429 is a
*measurement* here (the shed rate), not a transient to paper over.
"""

from __future__ import annotations

import collections
import queue as queue_module
import threading
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.loadgen.metrics import DepthSampler, summarize
from repro.loadgen.workload import PlannedSubmission, WorkloadSpec
from repro.obs.metrics import histogram_quantile, parse_prometheus
from repro.service.client import RetryPolicy, ServiceClient, ServiceError
from repro.service.client import ServiceUnavailableError
from repro.service.daemon import LayoutService

__all__ = ["LoadReport", "LoadTestConfig", "run_load_test"]

PathLike = Union[str, Path]

#: Dispositions under which the record exists server-side (watchable).
_ADMITTED = ("queued", "requeued", "attached", "cached", "done")


@dataclass(frozen=True)
class LoadTestConfig:
    """Daemon + harness knobs for one load run."""

    concurrency: int = 2  #: dispatcher threads (inline execution)
    job_timeout: Optional[float] = 60.0
    fsync: bool = False  #: journal fsync off — measuring scheduling, not disks
    max_queue_depth: int = 0  #: 0 = unbounded (no sheds unless set)
    class_limits: Optional[dict] = None
    background_shed_ratio: float = 0.5
    poison_threshold: int = 3
    sample_interval: float = 0.25  #: queue-depth sampling period
    settle_timeout: float = 300.0  #: hard wall for the whole settle wait
    submit_timeout: float = 30.0  #: per-request HTTP timeout for submitters
    host: str = "127.0.0.1"

    def as_dict(self) -> Dict[str, object]:
        return asdict(self)


@dataclass
class LoadReport:
    """Everything one load run measured (see :meth:`to_snapshot_data`)."""

    spec: WorkloadSpec
    config: LoadTestConfig
    wall_s: float
    submit_wall_s: float
    dispositions: Dict[str, int]
    rejected_429: int
    submit_errors: List[str]
    admission_latencies_s: List[float] = field(default_factory=list)
    settle_latencies_s: List[float] = field(default_factory=list)
    depth_samples: List[Tuple[float, Dict[str, int]]] = field(default_factory=list)
    sse_events: int = 0
    sse_replayed: int = 0
    sse_live_lags_s: List[float] = field(default_factory=list)
    watchers_started: int = 0
    watchers_stalled: int = 0
    lost_jobs: List[str] = field(default_factory=list)
    server_stats: Dict[str, object] = field(default_factory=dict)
    jobs_listing: Dict[str, object] = field(default_factory=dict)
    #: Final ``GET /metrics`` Prometheus exposition (empty if the scrape
    #: failed — which fails the metrics reconciliation checks).
    metrics_text: str = ""
    #: Error from the mid-run ``/metrics`` scrape, or ``None`` if it was
    #: parse-clean while the daemon was still settling work.
    metrics_midrun_error: Optional[str] = None
    #: ``GET /jobs/{hash}/trace`` of one solved job (span-tree sample).
    trace_sample: Dict[str, object] = field(default_factory=dict)

    # -------------------------------------------------------------- #

    @property
    def submitted(self) -> int:
        return sum(self.dispositions.values()) + self.rejected_429 + len(
            self.submit_errors
        )

    def reconcile(self) -> Dict[str, Dict[str, object]]:
        """The exact client-vs-server counter identities (see module doc)."""
        stats = self.server_stats
        admission = stats.get("admission", {})
        tally = self.dispositions
        checks = {
            "attached": {
                "client": tally.get("attached", 0),
                "server": stats.get("attached"),
            },
            "settled": {
                "client": tally.get("queued", 0)
                + tally.get("requeued", 0)
                + tally.get("cached", 0),
                "server": (
                    (stats.get("solved") or 0)
                    + (stats.get("served_from_cache") or 0)
                    + (stats.get("failures") or 0)
                ),
            },
            "rejected": {
                "client": self.rejected_429,
                "server": (admission.get("rejected") or 0)
                + (admission.get("shed") or 0),
            },
            "submitted": {
                "client": self.submitted,
                "server": self.spec.jobs + self.spec.cached_wave,
            },
            "lost_jobs": {"client": len(self.lost_jobs), "server": 0},
            "submit_errors": {"client": len(self.submit_errors), "server": 0},
        }
        checks.update(self._metrics_checks(stats))
        for check in checks.values():
            check.setdefault("ok", check["client"] == check["server"])
        return checks

    def _histogram(
        self, name: str, labels: Optional[Dict[str, str]] = None
    ) -> Optional[Dict[str, object]]:
        """Cumulative buckets / count / sum of one server-side histogram,
        recovered from the scraped ``/metrics`` exposition."""
        if not self.metrics_text:
            return None
        try:
            families = parse_prometheus(self.metrics_text)
        except ValueError:
            return None
        family = families.get(name)
        if not family:
            return None
        wanted = labels or {}
        buckets: List[List[float]] = []
        count = 0
        total = 0.0
        for sample in family["samples"]:
            sample_labels = dict(sample["labels"])
            le = sample_labels.pop("le", None)
            if sample_labels != wanted:
                continue
            if sample["name"].endswith("_bucket") and le is not None:
                bound = float("inf") if le == "+Inf" else float(le)
                buckets.append([bound, sample["value"]])
            elif sample["name"].endswith("_sum"):
                total = float(sample["value"])
            elif sample["name"].endswith("_count"):
                count = int(sample["value"])
        buckets.sort(key=lambda pair: pair[0])
        return {"buckets": buckets, "count": count, "sum": total}

    def _metrics_checks(
        self, stats: Dict[str, object]
    ) -> Dict[str, Dict[str, object]]:
        """Server-histogram reconciliation (tolerance, not unit-exact).

        * every settlement (and admission-time cache serve) lands exactly
          one histogram observation,
        * the per-stage decomposition (``queue_wait + solve + overhead``)
          sums back to the end-to-end latency histogram,
        * client-observed settle percentiles fall inside the server
          histogram's quantile bucket bounds,
        * the mid-run scrape was parse-clean.
        """
        checks: Dict[str, Dict[str, object]] = {
            "metrics_midrun_scrape": {
                "client": self.metrics_midrun_error or "parse-clean",
                "server": "parse-clean",
            }
        }
        latency = self._histogram("rfic_job_latency_seconds")
        cache_serve = self._histogram("rfic_cache_serve_seconds")
        if latency is None or cache_serve is None:
            checks["metrics_latency_count"] = {
                "client": "no /metrics exposition captured",
                "server": None,
                "ok": False,
            }
            return checks
        settled_server = (
            (stats.get("solved") or 0)
            + (stats.get("served_from_cache") or 0)
            + (stats.get("failures") or 0)
        )
        checks["metrics_latency_count"] = {
            "client": latency["count"] + cache_serve["count"],
            "server": settled_server,
        }
        stage_sum = 0.0
        for stage in ("queue_wait", "solve", "overhead"):
            hist = self._histogram(
                "rfic_job_stage_seconds", labels={"stage": stage}
            )
            stage_sum += hist["sum"] if hist else 0.0
        tolerance = max(0.05, 0.02 * latency["sum"])
        checks["metrics_stage_attribution"] = {
            "client": round(stage_sum, 3),
            "server": round(latency["sum"], 3),
            "ok": abs(stage_sum - latency["sum"]) <= tolerance,
        }
        summary = summarize(self.settle_latencies_s)
        for quantile, label in ((0.5, "p50"), (0.95, "p95")):
            observed = summary.get(label)
            if not summary.get("count") or observed is None:
                continue
            # Slack of ±5 percentile points absorbs client-side percentile
            # interpolation and the failure observations the server
            # histogram carries but the client settle list does not.
            low = histogram_quantile(
                latency["buckets"], latency["count"], max(0.0, quantile - 0.05)
            )
            high = histogram_quantile(
                latency["buckets"], latency["count"], min(1.0, quantile + 0.05)
            )
            if low is None or high is None:
                continue
            lower, upper = low[0], high[1]
            checks[f"metrics_settle_{label}_bounds"] = {
                "client": round(observed, 6),
                "server": [round(lower, 6), upper if upper != float("inf") else "+Inf"],
                "ok": lower - 1e-9 <= observed <= upper + 1e-9,
            }
        return checks

    @property
    def ok(self) -> bool:
        return all(check["ok"] for check in self.reconcile().values())

    def to_snapshot_data(self) -> Dict[str, object]:
        """The ``data`` payload of ``BENCH_service_load.json``."""
        stats = self.server_stats
        solved = stats.get("solved") or 0
        settled = solved + (stats.get("failures") or 0)
        depth_timeline = [
            [round(t, 3), sample.get("queued", 0) + sample.get("running", 0)]
            for t, sample in self.depth_samples
        ]
        return {
            "spec": self.spec.as_dict(),
            "config": self.config.as_dict(),
            "wall_s": round(self.wall_s, 3),
            "submit_wall_s": round(self.submit_wall_s, 3),
            "throughput": {
                "submissions_per_s": round(
                    self.submitted / self.submit_wall_s, 2
                )
                if self.submit_wall_s > 0
                else None,
                "settled_jobs_per_s": round(settled / self.wall_s, 2)
                if self.wall_s > 0
                else None,
                "solved_per_dispatcher_per_s": round(
                    solved / self.wall_s / max(1, self.config.concurrency), 3
                )
                if self.wall_s > 0
                else None,
            },
            "admission_latency_s": summarize(self.admission_latencies_s),
            "settle_latency_s": summarize(self.settle_latencies_s),
            "sse": {
                "watchers": self.watchers_started,
                "watchers_stalled": self.watchers_stalled,
                "events": self.sse_events,
                "replayed_events": self.sse_replayed,
                "live_lag_s": summarize(self.sse_live_lags_s),
            },
            "queue_depth": {
                "samples": depth_timeline,
                "peak": max((d for _, d in depth_timeline), default=0),
            },
            "dispositions": dict(self.dispositions),
            "rejected_429": self.rejected_429,
            "shed_rate": round(self.rejected_429 / self.spec.jobs, 4),
            "submit_errors": list(self.submit_errors),
            "lost_jobs": list(self.lost_jobs),
            "server_stats": self.server_stats,
            "jobs_listing": self.jobs_listing,
            "metrics_midrun_error": self.metrics_midrun_error,
            "trace_sample": self.trace_sample,
            "reconciliation": self.reconcile(),
            "ok": self.ok,
        }


# ------------------------------------------------------------------ #
# worker threads
# ------------------------------------------------------------------ #


class _SharedTally:
    """Submitter-side tallies, admitted-key registry, and watcher wakeups."""

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.cond = threading.Condition(self.lock)
        self.dispositions: collections.Counter = collections.Counter()
        self.rejected_429 = 0
        self.errors: List[str] = []
        self.admission_latencies: List[float] = []
        self.admitted: set = set()
        self.done_submitting = False

    def record(self, disposition: str, key: str, latency: float) -> None:
        with self.cond:
            self.dispositions[disposition] += 1
            self.admission_latencies.append(latency)
            if disposition in _ADMITTED:
                self.admitted.add(key)
                self.cond.notify_all()

    def record_429(self, latency: float) -> None:
        with self.lock:
            self.rejected_429 += 1
            self.admission_latencies.append(latency)

    def record_error(self, message: str) -> None:
        with self.lock:
            self.errors.append(message)

    def finish(self) -> None:
        with self.cond:
            self.done_submitting = True
            self.cond.notify_all()

    def wait_for_key(self, key: str, timeout: float) -> bool:
        """Block until ``key`` is admitted; False if submitting ended without it."""
        deadline = time.monotonic() + timeout
        with self.cond:
            while key not in self.admitted:
                if self.done_submitting or time.monotonic() >= deadline:
                    return key in self.admitted
                self.cond.wait(timeout=0.25)
            return True


def _submitter(
    base_url: str,
    plan_queue: "queue_module.SimpleQueue[Optional[PlannedSubmission]]",
    tally: _SharedTally,
    timeout: float,
) -> None:
    client = ServiceClient(
        base_url, timeout=timeout, retry=RetryPolicy(attempts=1), retry_seed=0
    )
    while True:
        item = plan_queue.get()
        if item is None:  # sentinel: plan exhausted
            return
        for attempt in range(1, 4):
            t0 = time.perf_counter()
            try:
                response = client.submit_document(
                    item.document, priority=item.priority, client=item.client
                )
            except ServiceUnavailableError as exc:
                if not exc.network:
                    # A real admission refusal (429): a *measurement* —
                    # the shed rate — so never retried.
                    tally.record_429(time.perf_counter() - t0)
                    break
                # A dropped connection under load is transient and the
                # submission is idempotent; retry rather than polluting
                # the 429 tally with socket noise.
                if attempt >= 3:
                    tally.record_error(f"job {item.key[:12]}: {exc}")
                    break
                time.sleep(0.05 * attempt)
            except ServiceError as exc:
                tally.record_error(f"job {item.key[:12]}: {exc}")
                break
            else:
                latency = time.perf_counter() - t0
                disposition = str(response.get("disposition", "unknown"))
                tally.record(
                    disposition, str(response.get("key", item.key)), latency
                )
                break


class _Watcher(threading.Thread):
    """One SSE stream: waits for its key to exist, then consumes events.

    Events published after the stream connected are *live* — their bus
    timestamp postdates the connect time, so ``recv - ts`` is genuine
    delivery lag.  History replayed on connect is counted separately
    (its lag measures how late the watcher connected, not the bus).
    """

    def __init__(
        self, base_url: str, key: str, tally: _SharedTally, timeout: float
    ) -> None:
        super().__init__(name=f"loadgen-watch-{key[:8]}", daemon=True)
        self.base_url = base_url
        self.key = key
        self.tally = tally
        self.timeout = timeout
        self.events = 0
        self.replayed = 0
        self.live_lags: List[float] = []
        self.started_stream = False

    def run(self) -> None:
        if not self.tally.wait_for_key(self.key, timeout=self.timeout):
            return
        client = ServiceClient(self.base_url, timeout=self.timeout, retry_seed=0)
        connected = time.time()
        self.started_stream = True
        try:
            for event in client.iter_events(self.key, timeout=self.timeout):
                now = time.time()
                self.events += 1
                ts = float(event.get("ts") or 0.0)
                if ts >= connected:
                    self.live_lags.append(max(0.0, now - ts))
                else:
                    self.replayed += 1
        except ServiceError:
            # Stream cut short (daemon shutting down at the end of the
            # run); the watcher's partial counts still stand.
            pass


# ------------------------------------------------------------------ #
# the harness
# ------------------------------------------------------------------ #


def run_load_test(
    spec: WorkloadSpec,
    data_dir: PathLike,
    cache_dir: Optional[PathLike] = None,
    config: Optional[LoadTestConfig] = None,
) -> LoadReport:
    """Run one full load test (see module docstring); returns the report."""
    config = config or LoadTestConfig()
    plan = spec.build()
    service = LayoutService(
        data_dir=data_dir,
        cache_dir=cache_dir,
        concurrency=config.concurrency,
        inline=True,
        job_timeout=config.job_timeout,
        fsync=config.fsync,
        max_queue_depth=config.max_queue_depth,
        class_limits=config.class_limits,
        background_shed_ratio=config.background_shed_ratio,
        poison_threshold=config.poison_threshold,
    )
    service.start()
    service.bind(host=config.host, port=0)
    http_thread = threading.Thread(
        target=service.serve_forever, name="loadgen-http", daemon=True
    )
    http_thread.start()
    base_url = f"http://{config.host}:{service.port}"

    tally = _SharedTally()
    sampler = DepthSampler(service.queue.counts, interval=config.sample_interval)

    # Watchers are assigned round-robin over the distinct hashes, in plan
    # order, so the watcher population is as deterministic as the plan.
    unique_keys: List[str] = []
    seen: set = set()
    for item in plan:
        if item.key not in seen:
            seen.add(item.key)
            unique_keys.append(item.key)
    watchers = [
        _Watcher(
            base_url,
            unique_keys[i % len(unique_keys)],
            tally,
            timeout=config.settle_timeout,
        )
        for i in range(spec.watchers)
    ]

    plan_queue: "queue_module.SimpleQueue[Optional[PlannedSubmission]]" = (
        queue_module.SimpleQueue()
    )
    for item in plan:
        plan_queue.put(item)
    for _ in range(spec.submitters):
        plan_queue.put(None)
    submitters = [
        threading.Thread(
            target=_submitter,
            args=(base_url, plan_queue, tally, config.submit_timeout),
            name=f"loadgen-submit-{i}",
            daemon=True,
        )
        for i in range(spec.submitters)
    ]

    try:
        sampler.start()
        for watcher in watchers:
            watcher.start()
        t_start = time.monotonic()
        for thread in submitters:
            thread.start()
        for thread in submitters:
            thread.join()
        submit_wall = time.monotonic() - t_start
        tally.finish()

        # Mid-run scrape: the Prometheus exposition must be parse-clean
        # while the daemon is still settling work, not only at rest.
        probe = ServiceClient(base_url, timeout=config.submit_timeout, retry_seed=0)
        metrics_midrun_error: Optional[str] = None
        try:
            parse_prometheus(probe.metrics_text())
        except (ServiceError, ValueError) as exc:
            metrics_midrun_error = f"{type(exc).__name__}: {exc}"

        # Settlement: every admitted hash must reach a terminal state.
        deadline = time.monotonic() + config.settle_timeout
        lost: List[str] = []
        while time.monotonic() < deadline:
            counts = service.queue.counts()
            if counts["queued"] + counts["running"] == 0:
                break
            time.sleep(0.05)
        for key in sorted(tally.admitted):
            record = service.queue.get(key)
            if record is None or not record.terminal:
                lost.append(key[:12])

        if spec.cached_wave > 0 and not lost:
            # Second wave: revisit settled hashes — every submission must
            # come back ``cached`` (or ``requeued`` if its cache entry
            # vanished, which reconciliation would surface).
            documents = {item.key: item.document for item in plan}
            wave_queue: "queue_module.SimpleQueue[Optional[PlannedSubmission]]" = (
                queue_module.SimpleQueue()
            )
            for i in range(spec.cached_wave):
                key = unique_keys[i % len(unique_keys)]
                wave_queue.put(
                    PlannedSubmission(
                        index=len(plan) + i,
                        key=key,
                        document=documents[key],
                        priority="batch",
                        client=f"load-client-{i % spec.clients}",
                        kind="revisit",
                    )
                )
            for _ in range(spec.submitters):
                wave_queue.put(None)
            wave_threads = [
                threading.Thread(
                    target=_submitter,
                    args=(base_url, wave_queue, tally, config.submit_timeout),
                    name=f"loadgen-wave-{i}",
                    daemon=True,
                )
                for i in range(spec.submitters)
            ]
            for thread in wave_threads:
                thread.start()
            for thread in wave_threads:
                thread.join()
        wall = time.monotonic() - t_start

        settle_latencies = []
        for key in unique_keys:
            record = service.queue.get(key)
            if record is not None and record.terminal and record.settled_unix:
                settle_latencies.append(
                    max(0.0, record.settled_unix - record.submitted_unix)
                )

        for watcher in watchers:
            watcher.join(timeout=10.0)

        server_stats = probe.stats()
        # Final scrape feeds the histogram reconciliation checks; an
        # unparsable exposition leaves metrics_text empty, failing them.
        metrics_text = ""
        try:
            metrics_text = probe.metrics_text()
            parse_prometheus(metrics_text)
        except (ServiceError, ValueError) as exc:
            metrics_text = ""
            if metrics_midrun_error is None:
                metrics_midrun_error = (
                    f"final scrape: {type(exc).__name__}: {exc}"
                )
        # Sample one solved job's span tree (the end-to-end trace check).
        trace_sample: Dict[str, object] = {}
        for key in unique_keys:
            sampled = service.queue.get(key)
            if (
                sampled is not None
                and sampled.state == "done"
                and sampled.started_unix is not None
            ):
                try:
                    trace_sample = probe.trace(key)
                except ServiceError:
                    pass
                break
        # Exercise the bounded /jobs listing the way a dashboard would.
        listing = probe.jobs_page(state="done", limit=25)
        jobs_listing = {
            "state": "done",
            "limit": 25,
            "returned": len(listing.get("jobs", [])),
            "total": listing.get("total"),
        }
    finally:
        depth_samples = sampler.stop()
        service.shutdown()
        http_thread.join(timeout=10.0)

    report = LoadReport(
        spec=spec,
        config=config,
        wall_s=wall,
        submit_wall_s=submit_wall,
        dispositions=dict(tally.dispositions),
        rejected_429=tally.rejected_429,
        submit_errors=list(tally.errors),
        admission_latencies_s=list(tally.admission_latencies),
        settle_latencies_s=settle_latencies,
        depth_samples=depth_samples,
        sse_events=sum(w.events for w in watchers),
        sse_replayed=sum(w.replayed for w in watchers),
        sse_live_lags_s=[lag for w in watchers for lag in w.live_lags],
        watchers_started=sum(1 for w in watchers if w.started_stream),
        watchers_stalled=sum(1 for w in watchers if w.is_alive()),
        lost_jobs=lost,
        server_stats=server_stats,
        jobs_listing=jobs_listing,
        metrics_text=metrics_text,
        metrics_midrun_error=metrics_midrun_error,
        trace_sample=trace_sample,
    )
    return report
