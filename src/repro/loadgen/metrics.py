"""Measurement primitives of the load harness.

Percentile math is the linear-interpolation ("exclusive of none") variant
used by numpy's default — exact on the known-input tests and independent
of any third-party package.  :class:`DepthSampler` is a daemon thread that
polls a callable (the queue's per-state counts) on a fixed interval and
keeps the timeline, so a load report can show queue depth over time
without instrumenting the scheduler itself.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

__all__ = ["DepthSampler", "percentile", "summarize"]


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0–100) with linear interpolation.

    Matches ``numpy.percentile``'s default method: the sorted sample is
    treated as fractional ranks ``0 .. n-1`` and ``q`` maps linearly onto
    them.  Raises ``ValueError`` on an empty sample or out-of-range ``q``.
    """
    if not values:
        raise ValueError("percentile() of an empty sample")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile q must be in [0, 100]; got {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (q / 100.0) * (len(ordered) - 1)
    lower = int(rank)
    upper = min(lower + 1, len(ordered) - 1)
    fraction = rank - lower
    return float(ordered[lower] + (ordered[upper] - ordered[lower]) * fraction)


def summarize(values: Sequence[float]) -> Dict[str, object]:
    """Count / mean / min / max / p50 / p95 / p99 of a latency sample.

    An empty sample summarises to ``{"count": 0}`` with every statistic
    ``None`` — snapshots stay schema-stable even when a path saw no
    traffic.
    """
    if not values:
        return {
            "count": 0,
            "mean": None,
            "min": None,
            "max": None,
            "p50": None,
            "p95": None,
            "p99": None,
        }
    return {
        "count": len(values),
        "mean": sum(values) / len(values),
        "min": min(values),
        "max": max(values),
        "p50": percentile(values, 50.0),
        "p95": percentile(values, 95.0),
        "p99": percentile(values, 99.0),
    }


class DepthSampler:
    """Poll ``probe()`` every ``interval`` seconds on a daemon thread.

    Samples are ``(t_offset_s, probe_result)`` tuples with ``t_offset_s``
    relative to :meth:`start`.  The sampler takes one final sample on
    :meth:`stop` so the timeline always covers the full run.
    """

    def __init__(
        self, probe: Callable[[], Dict[str, int]], interval: float = 0.25
    ) -> None:
        self.probe = probe
        self.interval = max(0.01, interval)
        self.samples: List[Tuple[float, Dict[str, int]]] = []
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._t0 = 0.0

    def _sample_once(self) -> None:
        try:
            value = self.probe()
        except Exception:  # noqa: BLE001 - a dying probe must not kill the run
            return
        self.samples.append((time.monotonic() - self._t0, value))

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self._sample_once()

    def start(self) -> "DepthSampler":
        self._t0 = time.monotonic()
        self._sample_once()
        self._thread = threading.Thread(
            target=self._run, name="loadgen-depth-sampler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> List[Tuple[float, Dict[str, int]]]:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self._sample_once()
        return self.samples

    def peak(self, field: str) -> int:
        """The maximum observed value of one probed field (0 if never seen)."""
        return max((sample.get(field, 0) for _, sample in self.samples), default=0)
