"""Durable job queue: an append-only JSON-lines journal with atomic rotation.

Every state transition of every submitted job is one line appended to
``<data_dir>/journal.jsonl``:

* ``{"op": "submit", "record": {...}}`` — a new job (full record, its
  submission document included),
* ``{"op": "start", "key": ..., "ts": ...}`` — dispatch began,
* ``{"op": "settle", "key": ..., "state": ..., ...}`` — terminal state,
* ``{"op": "record", "record": {...}}`` — compaction snapshot line.

On startup the journal is replayed in order; jobs that were ``queued`` or
``running`` when the daemon died come back as ``queued`` (a solve that
never settled is simply re-run — it is deterministic, and if its worker
already reached the result cache before the crash, the re-dispatch settles
from the cache instead of re-solving).  **Settlement is exactly-once per
content hash**: a ``settle`` for an already-terminal record is ignored,
both live and during replay.

The journal only ever grows by appends; once it exceeds
``max_journal_bytes`` it is *rotated*: the live records are written as
snapshot lines to a staging file which then atomically replaces the
journal (``os.replace``), mirroring the result cache's staging-rename
discipline — a reader sees either the old journal or the new one, never a
half-written file.  A torn trailing line (the process died mid-append) is
tolerated and dropped on replay.
"""

from __future__ import annotations

import json
import os
import threading
import time
import uuid
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.errors import ConfigurationError
from repro.service.documents import (
    DEFAULT_CLIENT,
    job_from_document,
    validate_priority,
)

PathLike = Union[str, Path]

JOURNAL_FILE = "journal.jsonl"

#: Journal size (bytes) above which an append triggers compaction.
DEFAULT_MAX_JOURNAL_BYTES = 4 * 1024 * 1024

#: States a job record moves through.  ``done`` covers both "solved" and
#: "served from cache" — consumers that care read ``summary["served"]``.
JOB_STATES = ("queued", "running", "done", "failed", "timeout", "cancelled")
TERMINAL_STATES = ("done", "failed", "timeout", "cancelled")


@dataclass
class JobRecord:
    """One submitted job: its document, identity and lifecycle state."""

    key: str  #: PR 3 content hash — the settlement / cache identity.
    document: Dict[str, object]
    label: str
    priority: str
    client: str = DEFAULT_CLIENT
    state: str = "queued"
    seq: int = 0  #: admission order (FIFO tie-break within a class)
    submitted_unix: float = 0.0
    started_unix: Optional[float] = None
    settled_unix: Optional[float] = None
    runtime: float = 0.0
    error: Optional[str] = None
    summary: Optional[Dict[str, object]] = None
    attach_count: int = 0  #: duplicate submissions that joined this record

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    @property
    def active(self) -> bool:
        return self.state in ("queued", "running")

    def to_dict(self) -> Dict[str, object]:
        return {
            "key": self.key,
            "document": self.document,
            "label": self.label,
            "priority": self.priority,
            "client": self.client,
            "state": self.state,
            "seq": self.seq,
            "submitted_unix": self.submitted_unix,
            "started_unix": self.started_unix,
            "settled_unix": self.settled_unix,
            "runtime": self.runtime,
            "error": self.error,
            "summary": self.summary,
            "attach_count": self.attach_count,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "JobRecord":
        return cls(
            key=str(data["key"]),
            document=dict(data["document"]),
            label=str(data.get("label", "")),
            priority=validate_priority(data.get("priority")),
            client=str(data.get("client", DEFAULT_CLIENT)),
            state=str(data.get("state", "queued")),
            seq=int(data.get("seq", 0)),
            submitted_unix=float(data.get("submitted_unix", 0.0)),
            started_unix=data.get("started_unix"),
            settled_unix=data.get("settled_unix"),
            runtime=float(data.get("runtime", 0.0)),
            error=data.get("error"),
            summary=data.get("summary"),
            attach_count=int(data.get("attach_count", 0)),
        )

    def status_dict(self) -> Dict[str, object]:
        """The public (API) view of this record — no job document."""
        data = self.to_dict()
        document = data.pop("document")
        data["flow"] = document.get("flow", "pilp")
        return data


class JobQueue:
    """Journal-backed queue of :class:`JobRecord` (see module docstring).

    All methods are thread-safe; the scheduler calls them from its
    admission path and from every dispatcher thread.
    """

    def __init__(
        self,
        data_dir: PathLike,
        max_journal_bytes: int = DEFAULT_MAX_JOURNAL_BYTES,
        fsync: bool = True,
    ) -> None:
        self.data_dir = Path(data_dir)
        self.journal_path = self.data_dir / JOURNAL_FILE
        self.max_journal_bytes = max_journal_bytes
        self.fsync = fsync
        self._lock = threading.RLock()
        self._records: Dict[str, JobRecord] = {}
        #: Keys currently in state "queued" — the dispatchers poll this, so
        #: it must stay O(pending), not O(all records ever submitted).
        self._pending: Dict[str, JobRecord] = {}
        self._seq = 0
        self._dropped_lines = 0
        self.data_dir.mkdir(parents=True, exist_ok=True)
        self._replay()

    # ------------------------------------------------------------------ #
    # journal I/O
    # ------------------------------------------------------------------ #

    def _append(self, entry: Dict[str, object]) -> None:
        line = json.dumps(entry, sort_keys=True, separators=(",", ":"))
        with self.journal_path.open("a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()
            if self.fsync:
                os.fsync(handle.fileno())
        if self.journal_path.stat().st_size > self.max_journal_bytes:
            self.compact()

    def _replay(self) -> None:
        """Rebuild in-memory state from the journal (startup recovery)."""
        if not self.journal_path.is_file():
            return
        with self.journal_path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except json.JSONDecodeError:
                    # Torn append (crash mid-write).  The transition it
                    # described never happened as far as durability is
                    # concerned; drop it and keep replaying.
                    self._dropped_lines += 1
                    continue
                self._apply(entry)
        # Jobs in flight when the previous daemon died never settled:
        # requeue them (their solve is deterministic and cache-settled,
        # so re-dispatch is safe and usually a cache hit).
        for record in self._records.values():
            if record.state == "running":
                record.state = "queued"
                record.started_unix = None
        self._pending = {
            key: record
            for key, record in self._records.items()
            if record.state == "queued"
        }

    def _apply(self, entry: Dict[str, object]) -> None:
        op = entry.get("op")
        if op in ("submit", "record"):
            try:
                record = JobRecord.from_dict(entry["record"])
            except (KeyError, TypeError, ValueError, ConfigurationError):
                self._dropped_lines += 1
                return
            existing = self._records.get(record.key)
            if op == "record" or existing is None:
                self._records[record.key] = record
            elif existing.terminal and existing.state != "done":
                # Resubmission of a failed/timed-out/cancelled job: install
                # the journaled record wholesale — it carries the
                # resubmission's priority/client/document, exactly like the
                # live submit() path replaced the record.
                self._records[record.key] = record
            else:
                existing.attach_count += 1
            self._seq = max(self._seq, record.seq + 1)
        elif op == "start":
            record = self._records.get(entry.get("key"))
            if record is not None and not record.terminal:
                record.state = "running"
                record.started_unix = entry.get("ts")
        elif op == "settle":
            record = self._records.get(entry.get("key"))
            if record is None or record.terminal:
                return  # exactly-once: later settles for the key are no-ops
            state = entry.get("state")
            if state not in TERMINAL_STATES:
                self._dropped_lines += 1
                return
            record.state = state
            record.settled_unix = entry.get("ts")
            record.runtime = float(entry.get("runtime", 0.0))
            record.error = entry.get("error")
            record.summary = entry.get("summary")
        else:
            self._dropped_lines += 1

    def compact(self) -> None:
        """Rewrite the journal as one snapshot line per live record.

        Staging-file + ``os.replace``: atomic with respect to both crashes
        and concurrent readers of the journal file.
        """
        with self._lock:
            staging = self.data_dir / f".journal-{os.getpid()}-{uuid.uuid4().hex[:8]}.tmp"
            with staging.open("w", encoding="utf-8") as handle:
                for record in sorted(self._records.values(), key=lambda r: r.seq):
                    handle.write(
                        json.dumps(
                            {"op": "record", "record": record.to_dict()},
                            sort_keys=True,
                            separators=(",", ":"),
                        )
                        + "\n"
                    )
                handle.flush()
                if self.fsync:
                    os.fsync(handle.fileno())
            os.replace(staging, self.journal_path)

    # ------------------------------------------------------------------ #
    # queue operations
    # ------------------------------------------------------------------ #

    def submit(
        self,
        document: Dict[str, object],
        priority: Optional[str] = None,
        client: str = DEFAULT_CLIENT,
        label: Optional[str] = None,
    ) -> Tuple[JobRecord, str]:
        """Admit one job document.  Returns ``(record, disposition)``.

        Dispositions: ``"queued"`` (new work), ``"attached"`` (an identical
        job is already queued/running — the submission joins it),
        ``"done"`` (already settled successfully), ``"requeued"`` (an
        earlier attempt failed; this submission retries it).
        """
        priority = validate_priority(priority)
        job = job_from_document(document)  # validates; computes the hash
        key = job.content_hash
        with self._lock:
            existing = self._records.get(key)
            if existing is not None:
                if existing.active:
                    existing.attach_count += 1
                    self._append({"op": "submit", "record": existing.to_dict()})
                    return existing, "attached"
                if existing.state == "done":
                    return existing, "done"
                disposition = "requeued"
            else:
                disposition = "queued"
            record = JobRecord(
                key=key,
                document=dict(document),
                label=label or job.describe(),
                priority=priority,
                client=client,
                state="queued",
                seq=self._seq,
                submitted_unix=time.time(),
            )
            self._seq += 1
            self._records[key] = record
            self._pending[key] = record
            self._append({"op": "submit", "record": record.to_dict()})
            return record, disposition

    def requeue(self, key: str) -> JobRecord:
        """Force a known record back to ``queued`` (even a ``done`` one).

        This is the escape hatch for a settled job whose cache entry has
        vanished (pruned or wiped cache): the journal still says ``done``
        but the layout is gone, so the work must be admitted again.  The
        transition is journaled as a snapshot line — on replay it
        *replaces* the record, which is exactly the semantics a forced
        requeue needs (a plain ``submit`` op would replay as an attach).
        """
        with self._lock:
            record = self._records[key]
            if record.state == "queued":
                return record
            record.state = "queued"
            record.error = None
            record.summary = None
            record.started_unix = None
            record.settled_unix = None
            record.runtime = 0.0
            record.submitted_unix = time.time()
            record.seq = self._seq
            self._seq += 1
            self._pending[key] = record
            self._append({"op": "record", "record": record.to_dict()})
            return record

    def mark_running(self, key: str) -> None:
        with self._lock:
            record = self._records[key]
            record.state = "running"
            record.started_unix = time.time()
            self._pending.pop(key, None)
            self._append({"op": "start", "key": key, "ts": record.started_unix})

    def settle(
        self,
        key: str,
        state: str,
        summary: Optional[Dict[str, object]] = None,
        error: Optional[str] = None,
        runtime: float = 0.0,
    ) -> bool:
        """Record a terminal state.  Returns False if already settled."""
        if state not in TERMINAL_STATES:
            raise ConfigurationError(f"not a terminal state: {state!r}")
        with self._lock:
            record = self._records.get(key)
            if record is None or record.terminal:
                return False
            record.state = state
            record.settled_unix = time.time()
            record.summary = summary
            record.error = error
            record.runtime = runtime
            self._pending.pop(key, None)
            self._append(
                {
                    "op": "settle",
                    "key": key,
                    "state": state,
                    "ts": record.settled_unix,
                    "summary": summary,
                    "error": error,
                    "runtime": runtime,
                }
            )
            return True

    # ------------------------------------------------------------------ #
    # inspection
    # ------------------------------------------------------------------ #

    def get(self, key: str) -> Optional[JobRecord]:
        with self._lock:
            return self._records.get(key)

    def find(self, key_or_prefix: str) -> Optional[JobRecord]:
        """Exact-key lookup, falling back to a *unique* hash prefix.

        The CLI and the progress events print 12-character key prefixes;
        this is what lets ``rfic-layout status <prefix>`` and the
        ``/jobs/{hash}`` routes accept them.  Prefixes shorter than 8
        characters or matching more than one record return ``None``.
        """
        with self._lock:
            record = self._records.get(key_or_prefix)
            if record is not None or len(key_or_prefix) < 8:
                return record
            matches = [
                record
                for key, record in self._records.items()
                if key.startswith(key_or_prefix)
            ]
            return matches[0] if len(matches) == 1 else None

    def records(self) -> List[JobRecord]:
        with self._lock:
            return sorted(self._records.values(), key=lambda record: record.seq)

    def queued(self) -> List[JobRecord]:
        with self._lock:
            return sorted(self._pending.values(), key=lambda record: record.seq)

    def counts(self) -> Dict[str, int]:
        """Number of records per state (all states present, zeros kept)."""
        with self._lock:
            counts = {state: 0 for state in JOB_STATES}
            for record in self._records.values():
                counts[record.state] = counts.get(record.state, 0) + 1
            return counts

    def depth(self) -> int:
        """Jobs waiting for a dispatcher."""
        return self.counts()["queued"]

    @property
    def dropped_lines(self) -> int:
        """Journal lines discarded during replay (torn/foreign writes)."""
        return self._dropped_lines
