"""Durable job queue: an append-only JSON-lines journal with atomic rotation.

Every state transition of every submitted job is one line appended to
``<data_dir>/journal.jsonl``:

* ``{"op": "submit", "record": {...}}`` — a new job (full record, its
  submission document included),
* ``{"op": "start", "key": ..., "ts": ...}`` — dispatch began,
* ``{"op": "settle", "key": ..., "state": ..., ...}`` — terminal state,
* ``{"op": "record", "record": {...}}`` — compaction snapshot line.

On startup the journal is replayed in order; jobs that were ``queued`` or
``running`` when the daemon died come back as ``queued`` (a solve that
never settled is simply re-run — it is deterministic, and if its worker
already reached the result cache before the crash, the re-dispatch settles
from the cache instead of re-solving; if the worker only got as far as a
per-phase *checkpoint*, the re-dispatch resumes from it — the pool probes
the cache's checkpoint store before every progressive solve, so a
crash-replayed job pays only the phases it had not yet finished).  **Settlement is exactly-once per
content hash**: a ``settle`` for an already-terminal record is ignored,
both live and during replay.

The journal only ever grows by appends; once it exceeds
``max_journal_bytes`` it is *rotated*: the live records are written as
snapshot lines to a staging file which then atomically replaces the
journal (``os.replace``), mirroring the result cache's staging-rename
discipline — a reader sees either the old journal or the new one, never a
half-written file.  A torn trailing line (the process died mid-append) is
tolerated and dropped on replay.

**Write failures degrade, never crash.**  An append or rotation that
fails on disk (ENOSPC, EIO) puts the queue into *degraded* mode: the
in-memory state keeps advancing (jobs still dispatch and settle), the
failure is counted and surfaced through :attr:`JobQueue.degraded` /
``GET /healthz``, and the next successful append clears the flag.  What
is lost while degraded is durability only — a crash during that window
replays the journal as of the last successful write, and the re-queued
jobs re-settle from the deterministic solves / the result cache.
"""

from __future__ import annotations

import json
import os
import threading
import time
import uuid
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.errors import ConfigurationError
from repro.faults import FAULTS
from repro.service.documents import (
    DEFAULT_CLIENT,
    job_from_document,
    validate_priority,
)

PathLike = Union[str, Path]

JOURNAL_FILE = "journal.jsonl"

#: Journal size (bytes) above which an append triggers compaction.
DEFAULT_MAX_JOURNAL_BYTES = 4 * 1024 * 1024

#: States a job record moves through.  ``done`` covers both "solved" and
#: "served from cache" — consumers that care read ``summary["served"]``.
JOB_STATES = ("queued", "running", "done", "failed", "timeout", "cancelled")
TERMINAL_STATES = ("done", "failed", "timeout", "cancelled")


@dataclass
class JobRecord:
    """One submitted job: its document, identity and lifecycle state."""

    key: str  #: PR 3 content hash — the settlement / cache identity.
    document: Dict[str, object]
    label: str
    priority: str
    client: str = DEFAULT_CLIENT
    state: str = "queued"
    seq: int = 0  #: admission order (FIFO tie-break within a class)
    submitted_unix: float = 0.0
    started_unix: Optional[float] = None
    settled_unix: Optional[float] = None
    runtime: float = 0.0
    error: Optional[str] = None
    summary: Optional[Dict[str, object]] = None
    attach_count: int = 0  #: duplicate submissions that joined this record
    attempts: int = 0  #: dispatch attempts (drives the poison quarantine)
    trace_id: str = ""  #: request trace ID — survives replay with the record

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    @property
    def active(self) -> bool:
        return self.state in ("queued", "running")

    def to_dict(self) -> Dict[str, object]:
        return {
            "key": self.key,
            "document": self.document,
            "label": self.label,
            "priority": self.priority,
            "client": self.client,
            "state": self.state,
            "seq": self.seq,
            "submitted_unix": self.submitted_unix,
            "started_unix": self.started_unix,
            "settled_unix": self.settled_unix,
            "runtime": self.runtime,
            "error": self.error,
            "summary": self.summary,
            "attach_count": self.attach_count,
            "attempts": self.attempts,
            "trace_id": self.trace_id,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "JobRecord":
        return cls(
            key=str(data["key"]),
            document=dict(data["document"]),
            label=str(data.get("label", "")),
            priority=validate_priority(data.get("priority")),
            client=str(data.get("client", DEFAULT_CLIENT)),
            state=str(data.get("state", "queued")),
            seq=int(data.get("seq", 0)),
            submitted_unix=float(data.get("submitted_unix", 0.0)),
            started_unix=data.get("started_unix"),
            settled_unix=data.get("settled_unix"),
            runtime=float(data.get("runtime", 0.0)),
            error=data.get("error"),
            summary=data.get("summary"),
            attach_count=int(data.get("attach_count", 0)),
            attempts=int(data.get("attempts", 0)),
            trace_id=str(data.get("trace_id", "")),
        )

    def status_dict(self) -> Dict[str, object]:
        """The public (API) view of this record — no job document."""
        data = self.to_dict()
        document = data.pop("document")
        data["flow"] = document.get("flow", "pilp")
        return data


class JobQueue:
    """Journal-backed queue of :class:`JobRecord` (see module docstring).

    All methods are thread-safe; the scheduler calls them from its
    admission path and from every dispatcher thread.
    """

    def __init__(
        self,
        data_dir: PathLike,
        max_journal_bytes: int = DEFAULT_MAX_JOURNAL_BYTES,
        fsync: bool = True,
    ) -> None:
        self.data_dir = Path(data_dir)
        self.journal_path = self.data_dir / JOURNAL_FILE
        self.max_journal_bytes = max_journal_bytes
        self.fsync = fsync
        self._lock = threading.RLock()
        self._records: Dict[str, JobRecord] = {}
        #: Keys currently in state "queued" — the dispatchers poll this, so
        #: it must stay O(pending), not O(all records ever submitted).
        self._pending: Dict[str, JobRecord] = {}
        #: Records per state, maintained on every transition.  Admission
        #: probes and /readyz consult these on every request, so they must
        #: stay O(1), not a scan of every record ever submitted.
        self._counts: Dict[str, int] = {state: 0 for state in JOB_STATES}
        self._seq = 0
        self._dropped_lines = 0
        self._write_errors = 0
        #: Reason the queue is in degraded (durability-less) mode, or None.
        self._degraded: Optional[str] = None
        self.data_dir.mkdir(parents=True, exist_ok=True)
        self._sweep_staging()
        self._replay()

    # ------------------------------------------------------------------ #
    # journal I/O
    # ------------------------------------------------------------------ #

    def _sweep_staging(self) -> None:
        """Remove rotation staging files a crashed predecessor left behind.

        ``os.replace`` is atomic, so a leftover ``.journal-*.tmp`` means the
        rotation never happened — the journal itself is intact and the
        staging snapshot is garbage.
        """
        for leftover in self.data_dir.glob(".journal-*.tmp"):
            try:
                leftover.unlink()
            except OSError:
                continue

    def _append(self, entry: Dict[str, object]) -> None:
        line = json.dumps(entry, sort_keys=True, separators=(",", ":"))
        torn = FAULTS.hit("journal.append.torn")
        if torn is not None:
            # A mid-append death: half the line reaches disk, no newline.
            with self.journal_path.open("a", encoding="utf-8") as handle:
                handle.write(line[: max(1, len(line) // 2)])
                handle.flush()
                os.fsync(handle.fileno())
            if torn.action == "crash":
                os._exit(torn.exit_code)
            return
        try:
            FAULTS.act("journal.append")
            with self.journal_path.open("a", encoding="utf-8") as handle:
                handle.write(line + "\n")
                handle.flush()
                if self.fsync:
                    os.fsync(handle.fileno())
        except OSError as exc:
            # Disk trouble (ENOSPC, EIO): keep serving from memory, flag
            # the lost durability, and let the next good append clear it.
            self._write_errors += 1
            self._degraded = f"journal append failed: {exc}"
            return
        self._degraded = None
        if self.journal_path.stat().st_size > self.max_journal_bytes:
            self.compact()

    def _replay(self) -> None:
        """Rebuild in-memory state from the journal (startup recovery)."""
        if not self.journal_path.is_file():
            return
        # A predecessor that died mid-append left a partial final line with
        # no newline.  Terminate it now, or this epoch's first append would
        # glue itself onto the fragment and corrupt a *good* record.
        with self.journal_path.open("rb") as handle:
            handle.seek(0, os.SEEK_END)
            size = handle.tell()
            if size > 0:
                handle.seek(size - 1)
                ends_clean = handle.read(1) == b"\n"
            else:
                ends_clean = True
        if not ends_clean:
            with self.journal_path.open("a", encoding="utf-8") as handle:
                handle.write("\n")
        with self.journal_path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except json.JSONDecodeError:
                    # Torn append (crash mid-write).  The transition it
                    # described never happened as far as durability is
                    # concerned; drop it and keep replaying.
                    self._dropped_lines += 1
                    continue
                self._apply(entry)
        # Jobs in flight when the previous daemon died never settled:
        # requeue them (their solve is deterministic and cache-settled,
        # so re-dispatch is safe and usually a cache hit — or a checkpoint
        # resume when the dead worker left per-phase state behind).
        for record in self._records.values():
            if record.state == "running":
                record.state = "queued"
                record.started_unix = None
        self._pending = {
            key: record
            for key, record in self._records.items()
            if record.state == "queued"
        }
        # Replay applied raw journal ops; rebuild the per-state tallies once
        # from the final records (the live paths maintain them incrementally).
        self._counts = {state: 0 for state in JOB_STATES}
        for record in self._records.values():
            self._counts[record.state] += 1

    def _apply(self, entry: Dict[str, object]) -> None:
        op = entry.get("op")
        if op in ("submit", "record"):
            try:
                record = JobRecord.from_dict(entry["record"])
            except (KeyError, TypeError, ValueError, ConfigurationError):
                self._dropped_lines += 1
                return
            existing = self._records.get(record.key)
            if op == "record" or existing is None:
                self._records[record.key] = record
            elif existing.terminal and existing.state != "done":
                # Resubmission of a failed/timed-out/cancelled job: install
                # the journaled record wholesale — it carries the
                # resubmission's priority/client/document, exactly like the
                # live submit() path replaced the record.
                self._records[record.key] = record
            else:
                existing.attach_count += 1
            self._seq = max(self._seq, record.seq + 1)
        elif op == "start":
            record = self._records.get(entry.get("key"))
            if record is not None and not record.terminal:
                record.state = "running"
                record.started_unix = entry.get("ts")
                record.attempts += 1
        elif op == "settle":
            record = self._records.get(entry.get("key"))
            if record is None or record.terminal:
                return  # exactly-once: later settles for the key are no-ops
            state = entry.get("state")
            if state not in TERMINAL_STATES:
                self._dropped_lines += 1
                return
            record.state = state
            record.settled_unix = entry.get("ts")
            record.runtime = float(entry.get("runtime", 0.0))
            record.error = entry.get("error")
            record.summary = entry.get("summary")
        else:
            self._dropped_lines += 1

    def compact(self) -> None:
        """Rewrite the journal as one snapshot line per live record.

        Staging-file + ``os.replace``: atomic with respect to both crashes
        and concurrent readers of the journal file.
        """
        with self._lock:
            staging = self.data_dir / f".journal-{os.getpid()}-{uuid.uuid4().hex[:8]}.tmp"
            try:
                with staging.open("w", encoding="utf-8") as handle:
                    for record in sorted(self._records.values(), key=lambda r: r.seq):
                        handle.write(
                            json.dumps(
                                {"op": "record", "record": record.to_dict()},
                                sort_keys=True,
                                separators=(",", ":"),
                            )
                            + "\n"
                        )
                    handle.flush()
                    if self.fsync:
                        os.fsync(handle.fileno())
                FAULTS.act("journal.rotate")
                os.replace(staging, self.journal_path)
            except OSError as exc:
                # Failed rotation leaves the (oversized but valid) journal
                # in place; degrade rather than crash, like _append.
                self._write_errors += 1
                self._degraded = f"journal rotation failed: {exc}"
                try:
                    staging.unlink()
                except OSError:
                    pass

    # ------------------------------------------------------------------ #
    # queue operations
    # ------------------------------------------------------------------ #

    def submit(
        self,
        document: Dict[str, object],
        priority: Optional[str] = None,
        client: str = DEFAULT_CLIENT,
        label: Optional[str] = None,
        trace_id: str = "",
    ) -> Tuple[JobRecord, str]:
        """Admit one job document.  Returns ``(record, disposition)``.

        Dispositions: ``"queued"`` (new work), ``"attached"`` (an identical
        job is already queued/running — the submission joins it),
        ``"done"`` (already settled successfully), ``"requeued"`` (an
        earlier attempt failed; this submission retries it).

        A ``requeued`` record inherits the failed attempt's ``attempts``
        count: the poison-quarantine budget is *per content hash*, and a
        job that reliably kills its workers must not win a fresh budget
        simply by being resubmitted.
        """
        priority = validate_priority(priority)
        job = job_from_document(document)  # validates; computes the hash
        key = job.content_hash
        with self._lock:
            existing = self._records.get(key)
            attempts = 0
            if existing is not None:
                if existing.active:
                    existing.attach_count += 1
                    self._append({"op": "submit", "record": existing.to_dict()})
                    return existing, "attached"
                if existing.state == "done":
                    return existing, "done"
                disposition = "requeued"
                attempts = existing.attempts
                self._counts[existing.state] -= 1
            else:
                disposition = "queued"
            record = JobRecord(
                key=key,
                document=dict(document),
                label=label or job.describe(),
                priority=priority,
                client=client,
                state="queued",
                seq=self._seq,
                submitted_unix=time.time(),
                attempts=attempts,
                trace_id=trace_id,
            )
            self._seq += 1
            self._records[key] = record
            self._pending[key] = record
            self._counts["queued"] += 1
            self._append({"op": "submit", "record": record.to_dict()})
            return record, disposition

    def requeue(self, key: str, trace_id: Optional[str] = None) -> JobRecord:
        """Force a known record back to ``queued`` (even a ``done`` one).

        This is the escape hatch for a settled job whose cache entry has
        vanished (pruned or wiped cache): the journal still says ``done``
        but the layout is gone, so the work must be admitted again.  The
        transition is journaled as a snapshot line — on replay it
        *replaces* the record, which is exactly the semantics a forced
        requeue needs (a plain ``submit`` op would replay as an attach).
        """
        with self._lock:
            record = self._records[key]
            if trace_id:
                record.trace_id = trace_id
            if record.state == "queued":
                return record
            self._counts[record.state] -= 1
            self._counts["queued"] += 1
            record.state = "queued"
            record.error = None
            record.summary = None
            record.started_unix = None
            record.settled_unix = None
            record.runtime = 0.0
            record.submitted_unix = time.time()
            record.seq = self._seq
            self._seq += 1
            self._pending[key] = record
            self._append({"op": "record", "record": record.to_dict()})
            return record

    def mark_running(self, key: str) -> None:
        with self._lock:
            record = self._records[key]
            self._counts[record.state] -= 1
            self._counts["running"] += 1
            record.state = "running"
            record.started_unix = time.time()
            record.attempts += 1
            self._pending.pop(key, None)
            self._append({"op": "start", "key": key, "ts": record.started_unix})

    def settle(
        self,
        key: str,
        state: str,
        summary: Optional[Dict[str, object]] = None,
        error: Optional[str] = None,
        runtime: float = 0.0,
    ) -> bool:
        """Record a terminal state.  Returns False if already settled."""
        if state not in TERMINAL_STATES:
            raise ConfigurationError(f"not a terminal state: {state!r}")
        with self._lock:
            record = self._records.get(key)
            if record is None or record.terminal:
                return False
            self._counts[record.state] -= 1
            self._counts[state] += 1
            record.state = state
            record.settled_unix = time.time()
            record.summary = summary
            record.error = error
            record.runtime = runtime
            self._pending.pop(key, None)
            self._append(
                {
                    "op": "settle",
                    "key": key,
                    "state": state,
                    "ts": record.settled_unix,
                    "summary": summary,
                    "error": error,
                    "runtime": runtime,
                }
            )
            return True

    # ------------------------------------------------------------------ #
    # inspection
    # ------------------------------------------------------------------ #

    def get(self, key: str) -> Optional[JobRecord]:
        with self._lock:
            return self._records.get(key)

    def find(self, key_or_prefix: str) -> Optional[JobRecord]:
        """Exact-key lookup, falling back to a *unique* hash prefix.

        The CLI and the progress events print 12-character key prefixes;
        this is what lets ``rfic-layout status <prefix>`` and the
        ``/jobs/{hash}`` routes accept them.  Prefixes shorter than 8
        characters or matching more than one record return ``None``.
        """
        with self._lock:
            record = self._records.get(key_or_prefix)
            if record is not None or len(key_or_prefix) < 8:
                return record
            matches = [
                record
                for key, record in self._records.items()
                if key.startswith(key_or_prefix)
            ]
            return matches[0] if len(matches) == 1 else None

    def records(self) -> List[JobRecord]:
        with self._lock:
            return sorted(self._records.values(), key=lambda record: record.seq)

    def queued(self) -> List[JobRecord]:
        with self._lock:
            return sorted(self._pending.values(), key=lambda record: record.seq)

    def counts(self) -> Dict[str, int]:
        """Number of records per state (all states present, zeros kept).

        O(states), not O(records): the tallies are maintained on every
        transition, so admission probes and ``/readyz`` stay cheap no
        matter how many settled records the journal has accumulated.
        """
        with self._lock:
            return dict(self._counts)

    def depth(self) -> int:
        """Jobs waiting for a dispatcher (O(1))."""
        with self._lock:
            return self._counts["queued"]

    def select(
        self, state: Optional[str] = None, limit: Optional[int] = None
    ) -> Tuple[List[JobRecord], int]:
        """Records filtered by state, bounded to the *newest* ``limit``.

        Returns ``(records, total)`` where ``total`` counts every match
        and ``records`` holds at most ``limit`` of them (the highest-seq
        matches, in journal order) — what a bounded ``GET /jobs`` serves
        after a long run has accumulated tens of thousands of settled
        records.  ``limit=None`` or ``limit<=0`` means unbounded.
        """
        if state is not None and state not in JOB_STATES:
            raise ConfigurationError(
                f"unknown job state {state!r}; available: {JOB_STATES}"
            )
        with self._lock:
            if state is None:
                matches = list(self._records.values())
                total = len(matches)
            else:
                matches = [r for r in self._records.values() if r.state == state]
                total = len(matches)
            matches.sort(key=lambda record: record.seq)
            if limit is not None and limit > 0 and total > limit:
                matches = matches[-limit:]
            return matches, total

    def pending_counts(self) -> Dict[str, int]:
        """Queued jobs per priority class (admission-control input)."""
        with self._lock:
            counts: Dict[str, int] = {}
            for record in self._pending.values():
                counts[record.priority] = counts.get(record.priority, 0) + 1
            return counts

    @property
    def dropped_lines(self) -> int:
        """Journal lines discarded during replay (torn/foreign writes)."""
        return self._dropped_lines

    @property
    def write_errors(self) -> int:
        """Journal writes (appends or rotations) that failed on disk."""
        return self._write_errors

    @property
    def degraded(self) -> Optional[str]:
        """Why durability is currently degraded, or ``None`` if healthy."""
        return self._degraded
