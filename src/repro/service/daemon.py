"""Assembly of the full layout service: queue + scheduler + HTTP server.

:class:`LayoutService` is what ``rfic-layout serve`` runs and what the
end-to-end tests boot: it owns a data directory (journal + result cache),
wires the durable :class:`JobQueue` into a :class:`LayoutScheduler`, and
serves the HTTP API.  Everything under ``data_dir`` is restart-safe:

* ``journal.jsonl`` — the durable queue (replayed on startup),
* ``cache/`` — the PR 3 content-addressed result cache (settlement
  ground truth: a settled hash is served from here, never re-solved).
"""

from __future__ import annotations

import os
import threading
from pathlib import Path
from typing import Optional, Union

from repro.obs.logging import LOG
from repro.obs.slo import SLOConfig
from repro.runner.cache import ResultCache
from repro.service.http import LayoutHTTPServer, make_server
from repro.service.queue import JobQueue
from repro.service.scheduler import LayoutScheduler

PathLike = Union[str, Path]

DEFAULT_DATA_DIR = ".rfic-service"


class LayoutService:
    """One daemon instance (see module docstring)."""

    def __init__(
        self,
        data_dir: PathLike = DEFAULT_DATA_DIR,
        cache_dir: Optional[PathLike] = None,
        concurrency: int = 1,
        pool_workers: int = 1,
        inline: bool = False,
        job_timeout: Optional[float] = None,
        fsync: bool = True,
        max_queue_depth: int = 0,
        class_limits: Optional[dict] = None,
        background_shed_ratio: float = 0.5,
        poison_threshold: int = 3,
        slo: Optional[SLOConfig] = None,
    ) -> None:
        self.data_dir = Path(data_dir)
        self.cache = ResultCache(cache_dir if cache_dir is not None else self.data_dir / "cache")
        self.queue = JobQueue(self.data_dir, fsync=fsync)
        self.scheduler = LayoutScheduler(
            queue=self.queue,
            cache=self.cache,
            concurrency=concurrency,
            pool_workers=0 if inline else pool_workers,
            job_timeout=job_timeout,
            max_queue_depth=max_queue_depth,
            class_limits=class_limits,
            background_shed_ratio=background_shed_ratio,
            poison_threshold=poison_threshold,
            slo=slo,
        )
        self.server: Optional[LayoutHTTPServer] = None
        self._server_lock = threading.Lock()

    # ------------------------------------------------------------------ #

    def start(self) -> None:
        """Start dispatching (journal-replayed jobs begin immediately)."""
        LOG.log(
            "daemon.start",
            data_dir=str(self.data_dir),
            replayed=self.scheduler._replayed,
            dispatchers=self.scheduler.concurrency,
            pool_workers=self.scheduler.runner.workers,
        )
        self.scheduler.start()

    def bind(
        self, host: str = "127.0.0.1", port: int = 0, quiet: bool = True
    ) -> LayoutHTTPServer:
        """Bind the HTTP server (``port=0`` = ephemeral) without serving."""
        self.server = make_server(self.scheduler, host, port, quiet=quiet)
        return self.server

    @property
    def port(self) -> int:
        if self.server is None:
            raise RuntimeError("service is not bound; call bind() first")
        return self.server.server_address[1]

    def write_port_file(self, path: PathLike) -> None:
        """Publish the bound port atomically (watchers never read a torn file)."""
        target = Path(path)
        staging = target.with_name(target.name + f".{os.getpid()}.tmp")
        staging.write_text(f"{self.port}\n", encoding="utf-8")
        os.replace(staging, target)

    def serve_forever(self) -> None:
        """Block serving HTTP (bind first); returns after :meth:`shutdown`."""
        if self.server is None:
            raise RuntimeError("service is not bound; call bind() first")
        self.server.serve_forever()

    def _close_server(self) -> None:
        """Stop and close the HTTP server exactly once (race-safe).

        A SIGTERM drain thread and an explicit :meth:`shutdown` may run
        concurrently; whoever claims the server under the lock closes it,
        the other finds ``None`` and does nothing.
        """
        with self._server_lock:
            server, self.server = self.server, None
        if server is not None:
            server.shutdown()
            server.server_close()

    def shutdown(self) -> None:
        """Stop the HTTP server and the dispatchers (running jobs settle)."""
        self._close_server()
        self.scheduler.stop()

    def drain(self, timeout: float = 30.0) -> None:
        """Graceful shutdown (the SIGTERM path).

        Admission stops first (submissions get 503, ``/readyz`` flips),
        the scheduler drains — running jobs finish or are requeued, the
        journal is compacted, SSE streams get a ``shutdown`` event — and
        only then does the HTTP server stop, so in-flight status queries
        and event streams end cleanly rather than on a dead socket.

        A requeued multi-phase solve is not lost work: its worker
        checkpointed every completed phase through the result cache, so
        the next epoch resumes it at the first unfinished phase.
        """
        LOG.log("daemon.drain", timeout_s=timeout)
        self.scheduler.drain(timeout=timeout)
        self._close_server()
        LOG.log("daemon.stopped")
