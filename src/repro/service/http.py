"""HTTP front end of the layout service (stdlib ``http.server`` only).

Endpoints
---------
``POST /jobs``
    Submit a job document or a ``{"sweep": ...}`` grid (see
    :mod:`repro.service.documents`).  Optional top-level ``"priority"``
    (``interactive``/``batch``/``background``) and ``"client"`` fields
    feed admission.  Response: the submitted record(s) with their
    dispositions; ``202`` when new work was queued, ``200`` otherwise.
``GET /jobs``
    Known records (journal order).  ``?state=<state>`` filters by job
    state; ``?limit=<n>`` bounds the response to the *newest* n matches
    (default 500 — after a long load run the full record list is
    unbounded; ``limit=0`` asks for everything).  The response carries
    ``total`` (matching records before the bound) so a truncated listing
    is detectable.
``GET /jobs/{hash}``
    One record: state, timings, metrics summary, error.
``GET /jobs/{hash}/layout.json`` / ``GET /jobs/{hash}/layout.svg``
    The settled layout, straight from the result cache / rendered through
    the SVG exporter.
``GET /jobs/{hash}/events``
    Server-Sent Events: the job's retained history is replayed, then live
    events stream until a terminal event (``done``/``failed``/``timeout``/
    ``cancelled``) or a drain's ``shutdown`` event closes the stream.
    Each event carries an ``id:`` line (its bus ``seq``); a reconnecting
    client passes ``?after=<seq>`` (or the standard ``Last-Event-ID``
    header) to skip the history it has already seen.  Only the *replay* is
    filtered — live events always flow, because ``seq`` restarts each
    daemon epoch.  Event schema: see :mod:`repro.service.scheduler`.
``GET /jobs/{hash}/trace``
    The job's span tree: admission, queue wait, dispatch, worker fork,
    per-solve-phase, DRC and cache-put spans with wall-clock start stamps
    and durations.  Jobs from previous daemon epochs get a tree
    synthesized from journal timestamps, every span marked ``truncated``.
``GET /stats``
    Queue depth and per-state counts, scheduler counters, admission /
    supervision counters, cache hit/miss statistics, journal health.
    Derived from the same registry snapshot as ``GET /metrics``.
``GET /metrics``
    Prometheus text exposition (version 0.0.4) of the metrics registry:
    job/admission counters, queue gauges and latency/stage histograms,
    plus the ``rfic_slo_*`` gauges when objectives are configured.
``GET /slo``
    Rolling-window objective verdicts (availability ratio, error-budget
    burn rate, windowed p95 bounds) derived from the same registry
    snapshot as ``/stats``/``/metrics``; ``{"configured": false}`` when
    no objectives are set.
``GET /cache/integrity``
    Read-only cache verification (``ResultCache.verify``): every entry's
    artifact digests are re-checked and every stored checkpoint is
    parsed, but nothing is quarantined or deleted.  ``200`` with the
    report when the cache is clean, ``503`` when corruption is present —
    repair with ``rfic-layout cache scrub``.
``GET /healthz``
    Liveness: always ``200``; the body carries degradation flags
    (journal/cache write failures) and supervision counters.
``GET /readyz``
    Readiness: ``200`` when accepting work, ``503`` while draining or
    hard-saturated.

Overload responses: a submission the scheduler refuses for capacity gets
``429`` with a ``Retry-After`` header (seconds, from the runtime EMA);
one refused because the daemon is draining gets ``503``.  A request
whose propagated ``X-Deadline-S`` budget is already spent gets ``504``
without doing any work.

The server is a :class:`ThreadingHTTPServer`: one thread per request, so
any number of SSE streams can idle while submissions keep flowing.
"""

from __future__ import annotations

import json
import threading
import urllib.parse
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError, ReproError
from repro.layout.export_json import load_layout
from repro.layout.export_svg import layout_to_svg
from repro.obs.metrics import render_prometheus
from repro.obs.trace import TRACE_HEADER
from repro.service.documents import DEFAULT_CLIENT, expand_submission
from repro.service.queue import JobRecord
from repro.service.scheduler import (
    TERMINAL_EVENT_KINDS,
    LayoutScheduler,
    QueueSaturated,
    ServiceDraining,
)

#: Seconds between SSE keep-alive comments while a job is idle.
_SSE_HEARTBEAT = 5.0

#: Event kinds that end an SSE stream: per-job terminals plus the drain
#: broadcast.
_STREAM_END_KINDS = TERMINAL_EVENT_KINDS + ("shutdown",)

#: Records returned by ``GET /jobs`` when the client gives no ``limit``.
#: The journal is append-only, so after a long load run the unbounded
#: listing would serialize every record ever settled.
DEFAULT_JOBS_LIMIT = 500


class LayoutHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the scheduler for its handlers."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address, scheduler: LayoutScheduler, quiet: bool = True):
        super().__init__(address, _Handler)
        self.scheduler = scheduler
        self.quiet = quiet


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server: LayoutHTTPServer

    # ------------------------------------------------------------------ #
    # plumbing
    # ------------------------------------------------------------------ #

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if not self.server.quiet:
            super().log_message(format, *args)

    def _send_json(
        self,
        payload: object,
        status: int = 200,
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        body = json.dumps(payload, indent=2, sort_keys=True).encode("utf-8") + b"\n"
        self.send_response(status)
        self.send_header("Content-Type", "application/json; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_bytes(self, body: bytes, content_type: str) -> None:
        self.send_response(200)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, status: int, message: str) -> None:
        self._send_json({"error": message}, status=status)

    @property
    def scheduler(self) -> LayoutScheduler:
        return self.server.scheduler

    # ------------------------------------------------------------------ #
    # routing
    # ------------------------------------------------------------------ #

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        try:
            raw_path, _, query = self.path.partition("?")
            path = raw_path.rstrip("/") or "/"
            if path == "/stats":
                self._send_json(self.scheduler.stats())
            elif path == "/slo":
                self._send_json(self.scheduler.slo_document())
            elif path == "/metrics":
                text = render_prometheus(self.scheduler.metrics_snapshot())
                self._send_bytes(
                    text.encode("utf-8"),
                    "text/plain; version=0.0.4; charset=utf-8",
                )
            elif path == "/":
                self._send_json({"service": "rfic-layout", "ok": True})
            elif path == "/healthz":
                # Liveness: a degraded daemon is still alive — the status
                # code never changes, only the body.
                self._send_json(dict(self.scheduler.health(), service="rfic-layout"))
            elif path == "/readyz":
                health = self.scheduler.health()
                ready = not self.scheduler.draining and not self.scheduler.saturated()
                self._send_json(
                    dict(health, ready=ready), status=200 if ready else 503
                )
            elif path == "/cache/integrity":
                # Read-only verification sweep: digests checked, nothing
                # quarantined or removed.  ``200`` when clean, ``503`` when
                # corruption is present (a monitoring-friendly signal; run
                # ``rfic-layout cache scrub`` to repair).
                report = self.scheduler.cache.verify()
                self._send_json(report, status=200 if report["clean"] else 503)
            elif path == "/jobs":
                self._get_jobs(query)
            elif path.startswith("/jobs/"):
                self._get_job(path[len("/jobs/") :], query)
            else:
                self._send_error_json(404, f"no such resource: {path}")
        except (BrokenPipeError, ConnectionResetError):  # client went away
            pass
        except Exception as exc:  # noqa: BLE001 - request boundary
            self._safe_error(exc)

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        try:
            path = self.path.split("?", 1)[0].rstrip("/")
            if path != "/jobs":
                self._send_error_json(404, f"no such resource: {path}")
                return
            self._post_jobs()
        except (BrokenPipeError, ConnectionResetError):
            pass
        except Exception as exc:  # noqa: BLE001 - request boundary
            self._safe_error(exc)

    def _safe_error(self, exc: Exception) -> None:
        try:
            self._send_error_json(500, f"{type(exc).__name__}: {exc}")
        except Exception:  # headers already sent (e.g. mid-SSE)
            pass

    # ------------------------------------------------------------------ #
    # handlers
    # ------------------------------------------------------------------ #

    def _get_jobs(self, query: str) -> None:
        params = urllib.parse.parse_qs(query)
        state = params.get("state", [None])[0]
        raw_limit = params.get("limit", [None])[0]
        limit = DEFAULT_JOBS_LIMIT
        if raw_limit is not None:
            try:
                limit = int(raw_limit)
            except ValueError:
                self._send_error_json(400, f"bad limit: {raw_limit!r}")
                return
        try:
            records, total = self.scheduler.queue.select(state=state, limit=limit)
        except ConfigurationError as exc:
            self._send_error_json(400, str(exc))
            return
        self._send_json(
            {
                "jobs": [r.status_dict() for r in records],
                "total": total,
                "state": state,
                "limit": limit,
            }
        )

    def _post_jobs(self) -> None:
        deadline = self.headers.get("X-Deadline-S")
        if deadline is not None:
            try:
                if float(deadline) <= 0:
                    self._send_error_json(
                        504, "client deadline already exhausted; not admitting"
                    )
                    return
            except ValueError:
                self._send_error_json(400, f"bad X-Deadline-S: {deadline!r}")
                return
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            self._send_error_json(400, "missing request body")
            return
        try:
            submission = json.loads(self.rfile.read(length).decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            self._send_error_json(400, f"bad JSON body: {exc}")
            return
        if not isinstance(submission, dict):
            self._send_error_json(400, "submission must be a JSON object")
            return
        priority = submission.pop("priority", None)
        client = str(submission.pop("client", DEFAULT_CLIENT))
        trace_header = self.headers.get(TRACE_HEADER)
        results: List[Tuple[JobRecord, str]] = []
        saturated: Optional[QueueSaturated] = None
        try:
            documents = expand_submission(submission)
            for index, document in enumerate(documents):
                # A sweep shares the caller's trace ID as a prefix; each
                # expanded job still gets a distinct ID so its spans don't
                # interleave with its siblings'.
                trace_id = trace_header
                if trace_header and index:
                    trace_id = f"{trace_header}-{index}"
                try:
                    results.append(
                        self.scheduler.submit(
                            document,
                            priority=priority,
                            client=client,
                            trace_id=trace_id,
                        )
                    )
                except QueueSaturated as exc:
                    # Sweeps admit what fits; the remainder is reported so
                    # the client can resubmit it after Retry-After.
                    saturated = exc
                    break
        except ServiceDraining as exc:
            self._send_json({"error": str(exc), "draining": True}, status=503)
            return
        except (ConfigurationError, ReproError, KeyError, ValueError) as exc:
            self._send_error_json(400, str(exc))
            return
        rows = [
            dict(record.status_dict(), disposition=disposition)
            for record, disposition in results
        ]
        if saturated is not None:
            retry_after = f"{saturated.retry_after:.0f}"
            self._send_json(
                {
                    "error": str(saturated),
                    "shed": saturated.shed,
                    "retry_after_s": saturated.retry_after,
                    "admitted": len(rows),
                    "jobs": rows,
                },
                status=429,
                headers={"Retry-After": retry_after},
            )
            return
        queued_any = any(d in ("queued", "requeued") for _, d in results)
        status = 202 if queued_any else 200
        if "sweep" in submission or len(rows) != 1:
            self._send_json({"jobs": rows}, status=status)
        else:
            self._send_json(rows[0], status=status)

    def _get_job(self, rest: str, query: str = "") -> None:
        parts = rest.split("/")
        # Accept the full content hash or the unique prefix the CLI prints.
        record = self.scheduler.queue.find(parts[0])
        if record is None:
            self._send_error_json(404, f"unknown job {parts[0]!r}")
            return
        key = record.key
        if len(parts) == 1:
            self._send_json(record.status_dict())
        elif parts[1:] == ["events"]:
            self._stream_events(key, after=self._resume_cursor(query))
        elif parts[1:] == ["trace"]:
            self._send_json(self.scheduler.trace_document(record))
        elif parts[1:] == ["layout.json"]:
            entry = self._entry_or_404(key, record.state)
            if entry is not None:
                self._send_bytes(
                    entry.layout_path.read_bytes(), "application/json; charset=utf-8"
                )
        elif parts[1:] == ["layout.svg"]:
            entry = self._entry_or_404(key, record.state)
            if entry is not None:
                layout = load_layout(entry.layout_path)
                svg = layout_to_svg(layout, title=f"{record.label} [{key[:12]}]")
                self._send_bytes(svg.encode("utf-8"), "image/svg+xml; charset=utf-8")
        else:
            self._send_error_json(404, f"no such resource: /jobs/{rest}")

    def _entry_or_404(self, key: str, state: str):
        entry = self.scheduler.cache.peek_key(key)
        if entry is None:
            self._send_error_json(
                404 if state == "done" else 409,
                f"job {key[:12]} has no stored layout (state: {state})",
            )
            return None
        return entry

    def _resume_cursor(self, query: str) -> int:
        """The reconnect cursor: ``?after=seq`` wins over ``Last-Event-ID``."""
        params = urllib.parse.parse_qs(query)
        raw = (params.get("after") or [None])[0]
        if raw is None:
            raw = self.headers.get("Last-Event-ID")
        try:
            return max(0, int(raw)) if raw is not None else 0
        except ValueError:
            return 0

    def _stream_events(self, key: str, after: int = 0) -> None:
        subscription = self.scheduler.bus.subscribe(key, replay=True, after=after)
        self.close_connection = True
        try:
            self.send_response(200)
            self.send_header("Content-Type", "text/event-stream; charset=utf-8")
            self.send_header("Cache-Control", "no-cache")
            self.send_header("Connection", "close")
            self.end_headers()
            record = self.scheduler.queue.get(key)
            already_settled = record is not None and record.terminal
            while True:
                # A job that settled in a previous daemon epoch (or whose
                # history was evicted) will never publish again: drain the
                # replayed history quickly, then synthesize its terminal
                # event from the journaled record and close the stream.
                event = subscription.get(
                    timeout=0.2 if already_settled else _SSE_HEARTBEAT
                )
                if event is None:
                    if already_settled:
                        self._write_sse(_synthetic_terminal_event(key, record))
                        break
                    self.wfile.write(b": keep-alive\n\n")
                    self.wfile.flush()
                    continue
                self._write_sse(event)
                if event["kind"] in _STREAM_END_KINDS:
                    break
        finally:
            subscription.close()

    def _write_sse(self, event: Dict[str, object]) -> None:
        payload = json.dumps(event, sort_keys=True)
        self.wfile.write(
            f"id: {event['seq']}\nevent: {event['kind']}\ndata: {payload}\n\n".encode(
                "utf-8"
            )
        )
        self.wfile.flush()


def _synthetic_terminal_event(key: str, record: JobRecord) -> Dict[str, object]:
    """A terminal SSE event reconstructed from a journaled record.

    ``seq`` 0 marks it as synthesized (live bus events start at 1).
    """
    return {
        "seq": 0,
        "ts": record.settled_unix or 0.0,
        "kind": record.state,  # terminal states are terminal kinds
        "key": key,
        "label": record.label,
        "state": record.state,
        "detail": record.error or "",
        "runtime": round(record.runtime, 3),
        "trace": record.trace_id,
    }


def make_server(
    scheduler: LayoutScheduler,
    host: str = "127.0.0.1",
    port: int = 0,
    quiet: bool = True,
) -> LayoutHTTPServer:
    """Bind (but do not start) the service's HTTP server.

    ``port=0`` binds an ephemeral port; read the actual one from
    ``server.server_address``.
    """
    return LayoutHTTPServer((host, port), scheduler, quiet=quiet)


def serve_in_thread(
    scheduler: LayoutScheduler,
    host: str = "127.0.0.1",
    port: int = 0,
    quiet: bool = True,
) -> Tuple[LayoutHTTPServer, threading.Thread]:
    """Bind and serve on a background thread (used by tests and clients)."""
    server = make_server(scheduler, host, port, quiet=quiet)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return server, thread
