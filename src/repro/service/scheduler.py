"""Admission and dispatch: priorities, fairness, dedup, cache short-circuit.

:class:`LayoutScheduler` sits between the durable :class:`JobQueue` and the
PR 3 :class:`~repro.runner.pool.BatchRunner`:

* **Admission** (:meth:`submit`) computes the job's content hash, then
  short-circuits against the result cache (an already-solved job settles
  as ``done`` without touching the pool) and dedups in flight (a second
  submission of an identical job *attaches* to the running one instead of
  re-solving — both submitters observe the same record and event stream).
* **Dispatch** runs on ``concurrency`` threads sharing one re-entrant
  runner.  The next job is chosen by priority class first
  (``interactive`` < ``batch`` < ``background``), then per-client
  fairness (the least-recently-served client goes first, so one client
  flooding the queue cannot starve the others), then FIFO.
* **Settlement** is exactly-once per content hash, journaled through the
  queue; every transition is published on the :class:`EventBus` that feeds
  the HTTP API's Server-Sent Events.

Event schema (also the SSE ``data:`` payload)::

    {"seq": 17, "ts": 1721998800.5, "kind": "running", "key": "ab12...",
     "label": "buffer60:manual", "state": "running", "detail": "",
     "runtime": 0.0, "trace": "9f2c40d1a7b3e806"}

The ``trace`` field is additive: it carries the job's request trace ID
("" for epoch-level events such as ``shutdown``).  ``progress`` events
additionally carry ``elapsed_s`` — seconds since the job entered
``running`` — so watchers can detect stalled solves without polling.
Their ``detail`` is the pool event kind, suffixed with the pool's own
detail when it has one: a solve continuing from a stored checkpoint
emits ``"resumed:<phase>"`` (e.g. ``"resumed:phase2"``) before its first
``started`` progress.

``kind`` is one of ``queued | running | progress | done | failed |
timeout | cancelled``; the last four are terminal and close any SSE
stream subscribed to that job.  A draining daemon additionally emits a
keyless ``shutdown`` event to every open stream.

Robustness layer (PR 6)
-----------------------
* **Backpressure**: a bounded queue (``max_queue_depth``, optional
  per-priority-class limits) rejects fresh work with
  :class:`QueueSaturated` — surfaced as HTTP 429 with a ``Retry-After``
  computed from the recent runtime EMA.  Past ``background_shed_ratio``
  of capacity, ``background``-class submissions are shed early so bulk
  traffic cannot crowd out interactive users.
* **Supervision**: dispatcher threads run under a supervisor that
  restarts them on any escaped exception (counted in
  ``dispatcher_restarts``).  A job whose worker crashes is retried, and
  quarantined as ``failed`` with a ``poisoned:`` error prefix once it
  has burned ``poison_threshold`` attempts.
* **Drain**: :meth:`LayoutScheduler.drain` stops admission, lets running
  jobs finish (requeueing any leftovers), compacts the journal, and
  broadcasts ``shutdown`` so SSE streams close cleanly.
"""

from __future__ import annotations

import math
import queue as queue_module
import threading
import time
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import ReproError
from repro.faults import FAULTS
from repro.obs.logging import LOG
from repro.obs.metrics import DEFAULT_LATENCY_BUCKETS, MetricsRegistry
from repro.obs.slo import SLOConfig, SLOMonitor, SLOPoint
from repro.obs.trace import CLOCK, Span, TraceStore, mint_trace_id
from repro.runner.cache import ResultCache
from repro.runner.jobs import LayoutJob
from repro.runner.pool import BatchRunner, JobOutcome, ProgressEvent
from repro.service.documents import (
    job_from_document,
    priority_rank,
    validate_priority,
)
from repro.service.queue import JOB_STATES, JobQueue, JobRecord


class QueueSaturated(ReproError):
    """Admission refused: the queue is at capacity (HTTP 429)."""

    def __init__(self, message: str, retry_after: float = 1.0, shed: bool = False):
        super().__init__(message)
        self.retry_after = max(1.0, retry_after)
        self.shed = shed  #: True when rejected by background load shedding


class ServiceDraining(ReproError):
    """Admission refused: the daemon is shutting down (HTTP 503)."""

#: Event kinds that close an SSE stream (canonical definition; the HTTP
#: layer re-exports it).
TERMINAL_EVENT_KINDS = ("done", "failed", "timeout", "cancelled")

#: Terminal event kinds, by outcome status.
_TERMINAL_KINDS = {
    "completed": "done",
    "cached": "done",
    "failed": "failed",
    "timeout": "timeout",
    "cancelled": "cancelled",
}

#: How many events are retained per job for SSE replay.
_HISTORY_LIMIT = 512

#: How many jobs keep a replayable history.  Beyond this, the oldest
#: *settled* keys are evicted — a late SSE subscriber to an evicted job
#: gets a terminal event synthesized from the journaled record instead,
#: so nothing observable is lost while daemon memory stays bounded.
_HISTORY_KEYS = 1024

#: Fairness bookkeeping cap: clients beyond this evict their oldest peers.
_CLIENT_LIMIT = 4096


class Subscription:
    """One event consumer: a bounded mailbox plus an unsubscribe handle."""

    def __init__(self, bus: "EventBus", key: Optional[str]) -> None:
        self._bus = bus
        self.key = key
        self.mailbox: "queue_module.Queue[Dict[str, object]]" = queue_module.Queue(
            maxsize=4096
        )

    def get(self, timeout: Optional[float] = None) -> Optional[Dict[str, object]]:
        """Next event, or ``None`` on timeout."""
        try:
            return self.mailbox.get(timeout=timeout)
        except queue_module.Empty:
            return None

    def close(self) -> None:
        self._bus.unsubscribe(self)


class EventBus:
    """Fan-out of job lifecycle events with per-job replayable history."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._seq = 0
        self._history: Dict[str, List[Dict[str, object]]] = {}
        #: Subscriptions indexed by job key, so publishing an event only
        #: walks that job's watchers — with thousands of SSE streams open,
        #: a flat subscriber list would serialize every dispatcher behind
        #: O(all subscribers) work per event.
        self._by_key: Dict[str, List[Subscription]] = {}
        #: Firehose subscriptions (``key=None``): they see every event.
        self._firehose: List[Subscription] = []

    @staticmethod
    def _deliver(subscription: Subscription, event: Dict[str, object]) -> None:
        try:
            subscription.mailbox.put_nowait(event)
        except queue_module.Full:  # slow consumer: drop, don't block
            pass

    def publish(
        self,
        kind: str,
        key: str,
        label: str = "",
        state: str = "",
        detail: str = "",
        runtime: float = 0.0,
        trace: str = "",
        elapsed_s: Optional[float] = None,
    ) -> Dict[str, object]:
        with self._lock:
            self._seq += 1
            event = {
                "seq": self._seq,
                "ts": time.time(),
                "kind": kind,
                "key": key,
                "label": label,
                "state": state,
                "detail": detail,
                "runtime": round(runtime, 3),
                "trace": trace,
            }
            if elapsed_s is not None:
                event["elapsed_s"] = round(elapsed_s, 3)
            history = self._history.setdefault(key, [])
            history.append(event)
            del history[:-_HISTORY_LIMIT]
            if len(self._history) > _HISTORY_KEYS:
                self._evict_settled_histories()
            for subscription in self._by_key.get(key, ()):
                self._deliver(subscription, event)
            for subscription in self._firehose:
                self._deliver(subscription, event)
            return event

    def subscribe(
        self, key: Optional[str] = None, replay: bool = True, after: int = 0
    ) -> Subscription:
        """Start consuming events (``key=None`` = all jobs).

        With ``replay`` the job's retained history is delivered first, so
        an SSE client that connects after settlement still sees the full
        ``queued → ... → done`` sequence.  Subscribing and replay happen
        under one lock, so no event can fall between history and live
        delivery.

        ``after`` filters the *history replay* to events with a greater
        ``seq`` — the resume cursor of a reconnecting SSE client.  Live
        events are never filtered: seq restarts at 1 each daemon epoch, so
        a stale cursor must not be allowed to swallow fresh events.
        """
        subscription = Subscription(self, key)
        with self._lock:
            if replay and key is not None:
                for event in self._history.get(key, []):
                    if int(event["seq"]) > after:
                        subscription.mailbox.put_nowait(event)
            if key is None:
                self._firehose.append(subscription)
            else:
                self._by_key.setdefault(key, []).append(subscription)
        return subscription

    def broadcast_shutdown(self, detail: str = "service draining") -> None:
        """Deliver a keyless ``shutdown`` event to every open subscription.

        SSE streams treat it as terminal, so a drain closes them with an
        explicit event instead of a silent TCP reset.  It is not recorded
        in any per-job history (it belongs to the epoch, not a job).
        """
        with self._lock:
            self._seq += 1
            event = {
                "seq": self._seq,
                "ts": time.time(),
                "kind": "shutdown",
                "key": "",
                "label": "",
                "state": "",
                "detail": detail,
                "runtime": 0.0,
                "trace": "",
            }
            for subscription in self._firehose:
                self._deliver(subscription, event)
            for watchers in self._by_key.values():
                for subscription in watchers:
                    self._deliver(subscription, event)

    def unsubscribe(self, subscription: Subscription) -> None:
        with self._lock:
            if subscription.key is None:
                try:
                    self._firehose.remove(subscription)
                except ValueError:
                    pass
                return
            watchers = self._by_key.get(subscription.key)
            if watchers is None:
                return
            try:
                watchers.remove(subscription)
            except ValueError:
                pass
            if not watchers:  # don't leak empty buckets for settled jobs
                del self._by_key[subscription.key]

    def _evict_settled_histories(self) -> None:
        """Drop the oldest settled jobs' histories (caller holds the lock).

        Only keys whose last event is terminal are evicted; active jobs
        keep their history no matter how many there are.
        """
        for stale in list(self._history):
            if len(self._history) <= _HISTORY_KEYS:
                break
            events = self._history[stale]
            if events and events[-1]["kind"] in TERMINAL_EVENT_KINDS:
                del self._history[stale]

    def history(self, key: str) -> List[Dict[str, object]]:
        with self._lock:
            return list(self._history.get(key, []))


class LayoutScheduler:
    """Dispatch queued layout jobs through a shared batch runner."""

    def __init__(
        self,
        queue: JobQueue,
        cache: ResultCache,
        runner: Optional[BatchRunner] = None,
        concurrency: int = 1,
        pool_workers: int = 1,
        job_timeout: Optional[float] = None,
        max_queue_depth: int = 0,
        class_limits: Optional[Dict[str, int]] = None,
        background_shed_ratio: float = 0.5,
        poison_threshold: int = 3,
        slo: Optional[SLOConfig] = None,
    ) -> None:
        if concurrency < 1:
            raise ValueError("concurrency must be >= 1")
        self.queue = queue
        self.cache = cache
        self.runner = runner or BatchRunner(
            cache_dir=cache, workers=pool_workers, job_timeout=job_timeout
        )
        self.concurrency = concurrency
        #: Queued-job ceiling; 0 disables global backpressure.
        self.max_queue_depth = max_queue_depth
        #: Optional per-priority-class queued-job ceilings.
        self.class_limits = dict(class_limits or {})
        #: Fraction of ``max_queue_depth`` past which ``background``-class
        #: submissions are shed before the queue is actually full.
        self.background_shed_ratio = background_shed_ratio
        #: Worker-crash attempts before a job is quarantined as poisoned.
        self.poison_threshold = max(1, poison_threshold)
        self.bus = EventBus()
        self.started_unix = time.time()
        self._lock = threading.Lock()
        self._wakeup = threading.Condition(self._lock)
        self._stop = threading.Event()
        self._threads: List[threading.Thread] = []
        self._dispatch_seq = 0
        self._last_served: Dict[str, int] = {}
        #: Guards the runtime EMA below.  It is mutated from every
        #: dispatcher thread; a bare read-modify-write would silently drop
        #: samples under load.  Always the innermost lock: never take
        #: ``self._lock`` or the queue lock while holding it.
        self._counters_lock = threading.Lock()
        self._draining = False
        self._runtime_ema = 0.0
        self._replayed = self.queue.depth()  # pending jobs inherited from the journal
        #: Metrics registry: the single source of truth for the stats
        #: counters.  ``/metrics`` and ``/stats`` are both derived from one
        #: ``snapshot()`` call, so they can never disagree mid-scrape.
        self.metrics = MetricsRegistry()
        #: Per-job span trees (``GET /jobs/{hash}/trace``).
        self.traces = TraceStore()
        self._counters = {
            attr: self.metrics.counter(name, help_text)
            for attr, name, help_text in (
                ("_solved", "rfic_jobs_solved_total",
                 "Jobs settled by an actual solve"),
                ("_served_from_cache", "rfic_jobs_served_from_cache_total",
                 "Jobs settled from the result cache"),
                ("_attached", "rfic_jobs_attached_total",
                 "Submissions that joined an in-flight identical job"),
                ("_failed", "rfic_jobs_failed_total",
                 "Jobs settled as failed/timeout/cancelled"),
                ("_admitted", "rfic_admission_admitted_total",
                 "Submissions answered successfully (queued, attached, or "
                 "served from cache) — the SLO availability numerator"),
                ("_rejected", "rfic_admission_rejected_total",
                 "Submissions refused by queue bounds"),
                ("_shed", "rfic_admission_shed_total",
                 "Background submissions shed under load"),
                ("_dispatcher_restarts", "rfic_dispatcher_restarts_total",
                 "Dispatcher loops restarted by the supervisor"),
                ("_poisoned", "rfic_jobs_poisoned_total",
                 "Jobs quarantined after exhausting the crash budget"),
                ("_crash_retries", "rfic_crash_retries_total",
                 "Worker crashes that earned the job a retry"),
                ("_checkpoint_writes", "rfic_checkpoint_writes_total",
                 "Per-phase solve checkpoints durably written by workers"),
                ("_resumes", "rfic_solve_resumes_total",
                 "Solves that resumed from a stored checkpoint instead of "
                 "starting cold"),
            )
        }
        self._latency_hist = self.metrics.histogram(
            "rfic_job_latency_seconds",
            "End-to-end latency of settled jobs (submission to settlement)",
            buckets=DEFAULT_LATENCY_BUCKETS,
        )
        self._cache_serve_hist = self.metrics.histogram(
            "rfic_cache_serve_seconds",
            "Admission duration of submissions answered from an already-"
            "settled record",
            buckets=DEFAULT_LATENCY_BUCKETS,
        )
        self._resume_saved_hist = self.metrics.histogram(
            "rfic_resume_budget_saved_seconds",
            "Solve budget not re-spent because a resumed job replayed "
            "checkpointed phases instead of recomputing them",
            buckets=DEFAULT_LATENCY_BUCKETS,
        )
        self._stage_hist = {
            stage: self.metrics.histogram(
                "rfic_job_stage_seconds",
                "Per-stage attribution of settled-job latency; for every "
                "settlement queue_wait + solve + overhead equals the "
                "end-to-end latency by construction",
                buckets=DEFAULT_LATENCY_BUCKETS,
                labels={"stage": stage},
            )
            for stage in ("queue_wait", "solve", "overhead")
        }
        #: SLO objectives (PR 9).  The monitor and its sampler thread
        #: exist only when an objective is actually configured — the
        #: default daemon pays nothing for this subsystem.
        self.slo_config = slo or SLOConfig()
        self._slo_monitor: Optional[SLOMonitor] = (
            SLOMonitor(self.slo_config) if self.slo_config.configured else None
        )
        self._slo_thread: Optional[threading.Thread] = None

    def _bump(self, counter: str, amount: int = 1) -> None:
        """Atomically increment one of the stats counters."""
        self._counters[counter].inc(amount)

    # The counters live in the metrics registry; these read-only views
    # keep the historical attribute names (tests and callers read them).
    @property
    def _solved(self) -> int:
        return int(self._counters["_solved"].value)

    @property
    def _served_from_cache(self) -> int:
        return int(self._counters["_served_from_cache"].value)

    @property
    def _attached(self) -> int:
        return int(self._counters["_attached"].value)

    @property
    def _failed(self) -> int:
        return int(self._counters["_failed"].value)

    @property
    def _admitted(self) -> int:
        return int(self._counters["_admitted"].value)

    @property
    def _rejected(self) -> int:
        return int(self._counters["_rejected"].value)

    @property
    def _shed(self) -> int:
        return int(self._counters["_shed"].value)

    @property
    def _dispatcher_restarts(self) -> int:
        return int(self._counters["_dispatcher_restarts"].value)

    @property
    def _poisoned(self) -> int:
        return int(self._counters["_poisoned"].value)

    @property
    def _crash_retries(self) -> int:
        return int(self._counters["_crash_retries"].value)

    @property
    def _checkpoint_writes(self) -> int:
        return int(self._counters["_checkpoint_writes"].value)

    @property
    def _resumes(self) -> int:
        return int(self._counters["_resumes"].value)

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def start(self) -> None:
        """Start the dispatcher threads (idempotent; restartable after stop)."""
        if self._threads:
            return
        self._stop.clear()
        for index in range(self.concurrency):
            thread = threading.Thread(
                target=self._dispatch_thread, name=f"dispatch-{index}", daemon=True
            )
            thread.start()
            self._threads.append(thread)
        if self._slo_monitor is not None and self._slo_thread is None:
            # Deliberately NOT in self._threads: health() counts
            # dispatchers_alive from that list, and the sampler is not a
            # dispatcher.
            self._slo_thread = threading.Thread(
                target=self._slo_sampler, name="slo-sampler", daemon=True
            )
            self._slo_thread.start()

    def stop(self, timeout: float = 10.0) -> None:
        """Stop dispatching.  Jobs already running finish and settle."""
        self._stop.set()
        with self._wakeup:
            self._wakeup.notify_all()
        for thread in self._threads:
            thread.join(timeout=timeout)
        self._threads = []
        if self._slo_thread is not None:
            self._slo_thread.join(timeout=timeout)
            self._slo_thread = None

    def begin_drain(self) -> None:
        """Stop admitting work; everything else keeps running."""
        self._draining = True

    def drain(self, timeout: float = 30.0) -> None:
        """Graceful shutdown: the SIGTERM contract.

        1. Stop admitting (new submissions get :class:`ServiceDraining`).
        2. Let running jobs finish within ``timeout``; queued jobs stay
           journaled as ``queued`` for the next epoch.
        3. Stop the dispatchers; any job still ``running`` after that
           (worker outlived the grace period) is requeued, so the journal
           never records an in-flight job as anything but resumable.
           A multi-phase solve cut off here has already checkpointed every
           phase it completed (workers write checkpoints at phase
           boundaries as they go), so the next epoch's re-dispatch resumes
           at the first unfinished phase instead of starting cold.
        4. Compact the journal (one snapshot line per record — the fastest
           possible replay for the next epoch).
        5. Broadcast ``shutdown`` so every SSE stream closes on an
           explicit terminal event.
        """
        self.begin_drain()
        deadline = time.time() + timeout
        while time.time() < deadline:
            if self.queue.counts()["running"] == 0:
                break
            time.sleep(0.05)
        threads = list(self._threads)
        self.stop(timeout=max(1.0, deadline - time.time()))
        # Only touch leftover "running" records once no dispatcher survives
        # to settle them out from under us.
        if not any(thread.is_alive() for thread in threads):
            for record in self.queue.records():
                if record.state == "running":
                    self.queue.requeue(record.key)
        self.queue.compact()
        self.bus.broadcast_shutdown()

    # ------------------------------------------------------------------ #
    # admission
    # ------------------------------------------------------------------ #

    def submit(
        self,
        document: Dict[str, object],
        priority: Optional[str] = None,
        client: str = "anonymous",
        trace_id: Optional[str] = None,
    ) -> Tuple[JobRecord, str]:
        """Admit one job document; returns ``(record, disposition)``.

        Dispositions: ``queued`` / ``requeued`` (will be dispatched),
        ``attached`` (joined an in-flight identical job), ``done``
        (already settled), ``cached`` (settled right now from the result
        cache without running — the short-circuit counts as a cache hit in
        ``GET /stats``).

        ``trace_id`` (from an ``X-Trace-Id`` header) correlates the
        submission across events, logs and the span tree; one is minted
        when the caller sends none.

        Raises :class:`ServiceDraining` while draining and
        :class:`QueueSaturated` when admitting this job would exceed the
        configured queue bounds.  Attaches and cache-served submissions
        are exempt from the capacity check — they add no queue entry, and
        refusing a free answer under overload would be perverse.
        """
        if self._draining:
            raise ServiceDraining("service is draining; not admitting jobs")
        admit_wall = CLOCK.time()
        admit_perf = CLOCK.perf()
        job = job_from_document(document)
        key = job.content_hash
        trace = trace_id or mint_trace_id()
        with self._lock:
            record, disposition = self._admit(
                job, document, key, priority, client, trace,
                admit_wall, admit_perf,
            )
        # Every disposition that reaches here answered the caller (429s
        # raised out of _admit): the SLO availability numerator.
        self._bump("_admitted")
        LOG.log(
            "job.submit",
            trace=record.trace_id or trace,
            key=key,
            disposition=disposition,
            client=client,
        )
        return record, disposition

    def _admit(
        self,
        job: LayoutJob,
        document: Dict[str, object],
        key: str,
        priority: Optional[str],
        client: str,
        trace: str,
        admit_wall: float,
        admit_perf: float,
    ) -> Tuple[JobRecord, str]:
        """The admission state machine (caller holds ``self._lock``)."""

        def admission_span(record_key: str, detail: str) -> None:
            self.traces.begin(record_key, trace, "")
            self.traces.span(
                record_key, "admission", admit_wall,
                CLOCK.perf() - admit_perf, detail=detail,
            )

        existing = self.queue.get(key)
        if existing is not None and existing.active:
            # The record can settle between the check above and the
            # queue's own locked submit (dispatchers settle under the
            # queue lock only), so honour whatever disposition the
            # queue actually took.
            record, disposition = self.queue.submit(
                document, priority, client, trace_id=trace
            )
            if disposition == "attached":
                self._bump("_attached")
            elif disposition in ("queued", "requeued"):
                admission_span(key, disposition)
                self.bus.publish(
                    "queued", key, record.label, "queued", trace=record.trace_id
                )
                self._wakeup.notify()
            return record, disposition
        if existing is not None and existing.state == "done":
            entry = self._cache_hit(job)
            if entry is not None:
                # Served from the already-settled record: no settlement
                # happens, so this lands in the cache-serve histogram,
                # keeping the latency histogram's count identity with the
                # settlement counters exact.
                self._bump("_served_from_cache")
                self._cache_serve_hist.observe(CLOCK.perf() - admit_perf)
                return existing, "cached"
            # Entry vanished (cache wiped/pruned): the journal says done
            # but the layout is gone — force the work back into the queue.
            self._check_capacity(existing.priority)
            record = self.queue.requeue(key, trace_id=trace)
            admission_span(key, "requeued")
            self.bus.publish(
                "queued", key, record.label, "queued", trace=record.trace_id
            )
            self._wakeup.notify()
            return record, "requeued"
        if self.cache.peek(job) is None:
            # Fresh work that will actually occupy a queue slot (a
            # cache hit settles instantly and is admission-exempt).
            self._check_capacity(validate_priority(priority))
        record, disposition = self.queue.submit(
            document, priority, client, trace_id=trace
        )
        if disposition == "done":
            return record, disposition
        entry = self._cache_hit(job)
        if entry is not None:
            # Solved in a previous epoch (or by a CLI batch sharing the
            # cache): settle instantly, never touching the pool.
            summary = dict(entry.summary)
            summary["served"] = "cache"
            self.queue.settle(
                key,
                "done",
                summary=summary,
                runtime=float(entry.summary.get("runtime_s", 0.0)),
            )
            self._bump("_served_from_cache")
            admission_span(key, "served from cache")
            settled = self.queue.get(key)
            total = 0.0
            if settled is not None and settled.settled_unix:
                total = max(
                    0.0, settled.settled_unix - settled.submitted_unix
                )
            self._observe_settled(key, total, queue_wait=0.0, solve=0.0)
            self.bus.publish(
                "queued", key, record.label, "queued", trace=record.trace_id
            )
            self.bus.publish(
                "done", key, record.label, "done",
                detail="served from cache", trace=record.trace_id,
            )
            return settled, "cached"
        admission_span(key, disposition)
        self.bus.publish(
            "queued", key, record.label, "queued", trace=record.trace_id
        )
        self._wakeup.notify()
        return record, disposition

    def _cache_hit(self, job: LayoutJob):
        """Cache lookup that counts a *hit* but never a miss.

        The pool performs its own counted lookup when the job is actually
        dispatched; counting the admission probe's miss as well would
        double-count every fresh submission in ``GET /stats``.
        """
        if self.cache.peek(job) is None:
            return None
        return self.cache.get(job)  # counts exactly one hit

    # ------------------------------------------------------------------ #
    # backpressure
    # ------------------------------------------------------------------ #

    def _check_capacity(self, priority: str) -> None:
        """Refuse admission when queue bounds would be exceeded.

        Checks, in order: the per-class limit, background load shedding
        (past ``background_shed_ratio`` of global capacity the lowest
        class yields its remaining headroom to the others), the global
        depth ceiling.  Raises :class:`QueueSaturated`; no-op when
        ``max_queue_depth`` is 0 and no class limit applies.
        """
        pending = self.queue.pending_counts()
        limit = self.class_limits.get(priority)
        if limit is not None and pending.get(priority, 0) >= limit:
            self._bump("_rejected")
            raise QueueSaturated(
                f"{priority} queue is full ({limit} jobs)",
                retry_after=self._retry_after_hint(pending.get(priority, 0)),
            )
        if self.max_queue_depth <= 0:
            return
        depth = sum(pending.values())
        if priority == "background":
            shed_at = self.background_shed_ratio * self.max_queue_depth
            if depth >= shed_at:
                self._bump("_shed")
                raise QueueSaturated(
                    f"shedding background work (queue depth {depth} >= "
                    f"{shed_at:.0f} of {self.max_queue_depth})",
                    retry_after=self._retry_after_hint(depth),
                    shed=True,
                )
        if depth >= self.max_queue_depth:
            self._bump("_rejected")
            raise QueueSaturated(
                f"queue is full ({depth}/{self.max_queue_depth} jobs)",
                retry_after=self._retry_after_hint(depth),
            )

    def _retry_after_hint(self, depth: int) -> float:
        """Seconds until a queue slot plausibly frees up.

        Estimated as (queued jobs / dispatcher count) service intervals of
        the recent runtime EMA, clamped to [1, 60] — a hint, not a
        promise, so the bound matters more than the precision.
        """
        with self._counters_lock:
            ema = self._runtime_ema
        interval = ema if ema > 0 else 1.0
        estimate = interval * max(1, depth) / max(1, self.concurrency)
        return min(60.0, max(1.0, estimate))

    # ------------------------------------------------------------------ #
    # dispatch
    # ------------------------------------------------------------------ #

    def _select_next(self) -> Optional[JobRecord]:
        """Pick and claim the next queued record (caller holds the lock).

        Ordering: best priority class first; within a class the client
        served longest ago wins (per-client fairness); FIFO breaks ties.
        """
        while True:
            candidates = self.queue.queued()
            if not candidates:
                return None
            record = min(
                candidates,
                key=lambda r: (
                    priority_rank(r.priority),
                    self._last_served.get(r.client, -1),
                    r.seq,
                ),
            )
            self._last_served[record.client] = self._dispatch_seq
            self._dispatch_seq += 1
            if len(self._last_served) > _CLIENT_LIMIT:
                for client in sorted(self._last_served, key=self._last_served.get)[
                    : len(self._last_served) - _CLIENT_LIMIT
                ]:
                    del self._last_served[client]
            if record.attempts >= self.poison_threshold:
                # A previous incarnation of this content hash already burned
                # the whole quarantine budget (attempts ride the ``requeued``
                # disposition): re-quarantine without spending another worker.
                self._quarantine_exhausted(record)
                continue
            self.queue.mark_running(record.key)
            return record

    def _quarantine_exhausted(self, record: JobRecord) -> None:
        error = (
            f"poisoned: quarantine budget exhausted "
            f"(attempts={record.attempts}/{self.poison_threshold})"
        )
        if self.queue.settle(record.key, "failed", error=error):
            self._bump("_poisoned")
            self._bump("_failed")
            total = 0.0
            if record.settled_unix:
                total = max(0.0, record.settled_unix - record.submitted_unix)
            # Never dispatched this time around: the whole latency is wait.
            self._observe_settled(record.key, total, queue_wait=total, solve=0.0)
            LOG.log(
                "job.quarantined",
                level="error",
                trace=record.trace_id,
                key=record.key,
                error=error,
            )
            self.bus.publish(
                "failed", record.key, record.label, "failed",
                detail=error, trace=record.trace_id,
            )

    def _dispatch_thread(self) -> None:
        """Supervisor shell around :meth:`_dispatch_loop`.

        Anything that escapes the loop (a bug outside the per-job error
        boundary, an injected ``scheduler.dispatch`` fault) is counted and
        the loop restarted — one bad iteration must not silently cost the
        daemon a dispatcher for the rest of its life.
        """
        while not self._stop.is_set():
            try:
                self._dispatch_loop()
            except BaseException:  # noqa: BLE001 - supervisor boundary
                self._bump("_dispatcher_restarts")
                continue
            return

    def _dispatch_loop(self) -> None:
        while not self._stop.is_set():
            # Outside the per-job boundary on purpose: a firing fault here
            # kills the loop and must be survived by _dispatch_thread.
            FAULTS.act("scheduler.dispatch")
            with self._wakeup:
                record = self._select_next()
                if record is None:
                    self._wakeup.wait(timeout=0.2)
                    continue
            dispatch_wall = CLOCK.time()
            dispatch_perf = CLOCK.perf()
            self._begin_dispatch_trace(record)
            self.bus.publish(
                "running", record.key, record.label, "running",
                trace=record.trace_id,
            )
            LOG.log(
                "job.dispatch", trace=record.trace_id, key=record.key,
                label=record.label, attempt=record.attempts,
            )
            try:
                job = job_from_document(record.document)
                job.trace_id = record.trace_id
                self.traces.span(
                    record.key, "dispatch", dispatch_wall,
                    CLOCK.perf() - dispatch_perf,
                )
                worker_wall = CLOCK.time()
                worker_perf = CLOCK.perf()
                outcome = self.runner.run_one(
                    job, progress=self._progress_forwarder(record)
                )
                worker_s = CLOCK.perf() - worker_perf
            except Exception as exc:  # noqa: BLE001 - dispatcher boundary
                self._settle_failure(record, f"{type(exc).__name__}: {exc}")
                continue
            self._record_worker_spans(record, outcome, worker_wall, worker_s)
            settle_wall = CLOCK.time()
            settle_perf = CLOCK.perf()
            self._settle_outcome(record, outcome)
            self.traces.span(
                record.key, "settle", settle_wall, CLOCK.perf() - settle_perf
            )

    def _begin_dispatch_trace(self, record: JobRecord) -> None:
        """Open (or re-join) the record's span tree at dispatch time.

        A record replayed from a previous epoch has no in-memory spans —
        its admission happened before this daemon was born.  Synthesize a
        zero-length ``admission`` span marked ``truncated`` so the tree
        shows the job's full shape instead of silently dropping the
        crashed epoch's stages.
        """
        trace = self.traces.begin(record.key, record.trace_id, record.label)
        if not any(span.name == "admission" for span in trace.spans):
            self.traces.span(
                record.key, "admission", record.submitted_unix, 0.0,
                detail="replayed from journal", truncated=True,
            )
        if record.started_unix is not None:
            queue_wait = max(0.0, record.started_unix - record.submitted_unix)
            self.traces.span(
                record.key, "queue_wait", record.submitted_unix, queue_wait
            )

    def _record_worker_spans(
        self,
        record: JobRecord,
        outcome: JobOutcome,
        worker_wall: float,
        worker_s: float,
    ) -> None:
        """Record the worker span and its children from the solve profile.

        Child start stamps are derived by stacking the profiled durations
        onto the worker's start — the worker process has no shared clock
        with the daemon, so only the durations are authoritative.
        """
        key = record.key
        profile = outcome.profile or {}
        detail = outcome.status
        resumed_from = profile.get("resumed_from_phase")
        if resumed_from:
            # Trace consumers read resumption straight off the worker span;
            # replayed phases below carry wall_s from the *original* run.
            detail = f"{detail} resumed_from_phase={resumed_from}"
        self.traces.span(
            key, "worker", worker_wall, worker_s,
            detail=detail,
        )
        cursor = worker_wall
        if outcome.status == "completed":
            # Fork + pipe + payload overhead: worker wall minus flow time.
            fork_s = max(0.0, worker_s - float(outcome.runtime))
            self.traces.span(
                key, "worker_fork", worker_wall, fork_s, parent="worker"
            )
            cursor += fork_s
        for phase in profile.get("phases", []):
            wall_s = float(phase.get("wall_s", 0.0))
            self.traces.span(
                key,
                f"solve.{phase.get('phase', '?')}",
                cursor,
                wall_s,
                parent="worker",
                detail=str(phase.get("solver_backend", "")),
            )
            cursor += wall_s
        for stage, name in (
            ("metrics_s", "metrics"),
            ("drc_s", "drc"),
            ("cache_put_s", "cache_put"),
        ):
            if stage in profile:
                seconds = float(profile[stage])
                self.traces.span(key, name, cursor, seconds, parent="worker")
                cursor += seconds

    def _progress_forwarder(
        self, record: JobRecord
    ) -> Callable[[ProgressEvent], None]:
        def forward(event: ProgressEvent) -> None:
            # Terminal pool events surface through settlement; re-publishing
            # them as "progress" would double-report the lifecycle.
            if event.kind in ("submitted", "cached", "completed", "failed", "timeout"):
                return
            elapsed = None
            if record.started_unix is not None:
                elapsed = max(0.0, CLOCK.time() - record.started_unix)
            detail = event.kind
            if event.detail:
                # e.g. "resumed:phase2" — the phase the worker continues from.
                detail = f"{event.kind}:{event.detail}"
            self.bus.publish(
                "progress",
                record.key,
                record.label,
                record.state,
                detail=detail,
                runtime=event.runtime,
                trace=record.trace_id,
                elapsed_s=elapsed,
            )

        return forward

    def _settle_outcome(self, record: JobRecord, outcome: JobOutcome) -> None:
        state = "done" if outcome.ok else _TERMINAL_KINDS.get(outcome.status, "failed")
        summary = dict(outcome.summary or {})
        error = outcome.error
        if outcome.ok:
            summary["served"] = "cache" if outcome.status == "cached" else "solve"
            if outcome.status == "cached":
                self._bump("_served_from_cache")
            else:
                self._bump("_solved")
                self._observe_runtime(outcome.runtime)
                self._observe_resume(record, outcome, summary)
        else:
            if self._is_worker_crash(outcome):
                fresh = self.queue.get(record.key)
                attempts = fresh.attempts if fresh is not None else record.attempts
                if attempts < self.poison_threshold:
                    # The crash may be environmental (OOM spike, injected
                    # fault): give the job another worker — but only
                    # poison_threshold of them in total.
                    self._bump("_crash_retries")
                    requeued = self.queue.requeue(record.key)
                    LOG.log(
                        "job.crash_retry",
                        level="warning",
                        trace=record.trace_id,
                        key=record.key,
                        attempt=attempts,
                        budget=self.poison_threshold,
                    )
                    self.bus.publish(
                        "queued",
                        record.key,
                        record.label,
                        "queued",
                        detail=(
                            f"retry {attempts}/{self.poison_threshold} "
                            f"after worker crash"
                        ),
                        trace=record.trace_id,
                    )
                    with self._wakeup:
                        self._wakeup.notify()
                    del requeued
                    return
                # This job reliably kills its workers: quarantine it so it
                # cannot eat the pool forever.
                self._bump("_poisoned")
                error = f"poisoned: {outcome.error} (attempts={attempts})"
            self._bump("_failed")
        settled = self.queue.settle(
            record.key,
            state,
            summary=summary or None,
            error=error,
            runtime=outcome.runtime,
        )
        # Observed with the same unconditionality as the counter bumps
        # above, so the latency histogram's count stays exactly equal to
        # solved + served_from_cache + failures (minus cache serves, which
        # have their own histogram).
        settled_at = record.settled_unix or CLOCK.time()
        total = max(0.0, settled_at - record.submitted_unix)
        queue_wait = 0.0
        if record.started_unix is not None:
            queue_wait = max(0.0, record.started_unix - record.submitted_unix)
        solve = outcome.runtime if outcome.status == "completed" else 0.0
        self._observe_settled(record.key, total, queue_wait, solve)
        LOG.log(
            "job.settled",
            level="info" if outcome.ok else "error",
            trace=record.trace_id,
            key=record.key,
            state=state,
            runtime_s=round(outcome.runtime, 3),
            error=error,
        )
        if settled:
            self.bus.publish(
                _TERMINAL_KINDS.get(outcome.status, "failed"),
                record.key,
                record.label,
                state,
                detail=error or "",
                runtime=outcome.runtime,
                trace=record.trace_id,
            )

    def _observe_resume(
        self,
        record: JobRecord,
        outcome: JobOutcome,
        summary: Dict[str, object],
    ) -> None:
        """Account a solved job's checkpoint activity at settlement.

        The worker's solve profile is the authoritative source: it counts
        checkpoints that actually landed (the durable write succeeded) and
        names the phase a resumed solve continued from, so the metrics
        cannot drift from what the worker really did.
        """
        profile = outcome.profile or {}
        writes = int(profile.get("checkpoint_writes", 0) or 0)
        if writes:
            self._bump("_checkpoint_writes", writes)
        resumed_from = profile.get("resumed_from_phase")
        if not resumed_from:
            return
        self._bump("_resumes")
        saved = float(profile.get("resume_saved_s", 0.0) or 0.0)
        self._resume_saved_hist.observe(max(0.0, saved))
        summary["resumed_from_phase"] = str(resumed_from)
        LOG.log(
            "job.resumed",
            level="info",
            trace=record.trace_id,
            key=record.key,
            resumed_from_phase=str(resumed_from),
            saved_s=round(saved, 3),
        )

    @staticmethod
    def _is_worker_crash(outcome: JobOutcome) -> bool:
        """Whether the outcome is a killed worker (retry-worthy).

        Only crashes qualify: an ordinary failure or a timeout is a
        deterministic property of the job and would just fail again.
        """
        return (
            outcome.status == "failed"
            and bool(outcome.error)
            and "worker crashed" in outcome.error
        )

    def _observe_runtime(self, runtime: float) -> None:
        """Feed the runtime EMA behind the ``Retry-After`` hint.

        Every dispatcher reports here; the read-modify-write of the EMA
        happens under the counters lock or concurrent settlements would
        silently drop samples.
        """
        if runtime <= 0:
            return
        with self._counters_lock:
            if self._runtime_ema <= 0:
                self._runtime_ema = runtime
            else:
                self._runtime_ema = 0.8 * self._runtime_ema + 0.2 * runtime

    def _observe_settled(
        self, key: str, total: float, queue_wait: float, solve: float
    ) -> None:
        """Feed one settlement into the latency + stage histograms.

        The stage values are clamped so that ``queue_wait + solve +
        overhead == total`` holds *by construction* for every observation
        — the reconciliation the load harness and CI assert on.  Also
        marks the job's span tree settled (evictable).
        """
        total = max(0.0, float(total))
        queue_wait = min(max(0.0, float(queue_wait)), total)
        solve = min(max(0.0, float(solve)), total - queue_wait)
        overhead = max(0.0, total - queue_wait - solve)
        self._latency_hist.observe(total)
        self._stage_hist["queue_wait"].observe(queue_wait)
        self._stage_hist["solve"].observe(solve)
        self._stage_hist["overhead"].observe(overhead)
        self.traces.settle(key)

    def _settle_failure(self, record: JobRecord, error: str) -> None:
        self._bump("_failed")
        settled = self.queue.settle(record.key, "failed", error=error)
        settled_at = record.settled_unix or CLOCK.time()
        total = max(0.0, settled_at - record.submitted_unix)
        queue_wait = 0.0
        if record.started_unix is not None:
            queue_wait = max(0.0, record.started_unix - record.submitted_unix)
        self._observe_settled(record.key, total, queue_wait, 0.0)
        LOG.log(
            "job.failed",
            level="error",
            trace=record.trace_id,
            key=record.key,
            error=error,
        )
        if settled:
            self.bus.publish(
                "failed", record.key, record.label, "failed",
                detail=error, trace=record.trace_id,
            )

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #

    @property
    def draining(self) -> bool:
        return self._draining

    def health(self) -> Dict[str, object]:
        """The ``GET /healthz`` document (also embedded in ``/stats``).

        ``status`` is ``ok`` unless durability is degraded (journal write
        failures sticking, cache unwritable) — degraded is still *alive*:
        liveness probes always get HTTP 200, only the body changes.
        """
        journal_degraded = self.queue.degraded
        cache_error = self.cache.last_put_error
        degraded = journal_degraded is not None or cache_error is not None
        restarts = self._dispatcher_restarts
        return {
            "status": "degraded" if degraded else "ok",
            "draining": self._draining,
            "journal_degraded": journal_degraded,
            "journal_write_errors": self.queue.write_errors,
            "cache_writable": cache_error is None,
            "cache_put_error": cache_error,
            "cache_put_errors": self.cache.stats.put_errors,
            "dispatchers_alive": sum(
                1 for thread in self._threads if thread.is_alive()
            ),
            "dispatcher_restarts": restarts,
        }

    def saturated(self) -> bool:
        """Whether a fresh batch-class submission would be refused now."""
        if self._draining:
            return True
        if self.max_queue_depth <= 0:
            return False
        return self.queue.depth() >= self.max_queue_depth

    def metrics_snapshot(self) -> Dict[str, Dict[str, object]]:
        """Refresh the gauges and return one coherent registry snapshot.

        This is the single source both ``GET /metrics`` and ``GET /stats``
        are rendered from, so the two endpoints can never disagree about a
        counter mid-scrape.
        """
        counts = self.queue.counts()
        pending = self.queue.pending_counts()
        cache = self.cache.stats
        m = self.metrics
        m.gauge("rfic_uptime_seconds", "Seconds since the scheduler started").set(
            time.time() - self.started_unix
        )
        m.gauge("rfic_queue_depth", "Jobs waiting for a dispatcher").set(
            counts["queued"]
        )
        m.gauge("rfic_jobs_running", "Jobs currently dispatched").set(
            counts["running"]
        )
        for state in JOB_STATES:
            m.gauge(
                "rfic_jobs_state", "Journal records per lifecycle state",
                labels={"state": state},
            ).set(counts.get(state, 0))
        for cls in ("interactive", "batch", "background"):
            m.gauge(
                "rfic_admission_pending", "Queued jobs per priority class",
                labels={"class": cls},
            ).set(pending.get(cls, 0))
        for name, value in (
            ("rfic_cache_hits", cache.hits),
            ("rfic_cache_misses", cache.misses),
            ("rfic_cache_stores", cache.stores),
            ("rfic_cache_put_errors", cache.put_errors),
            ("rfic_cache_quarantined", cache.quarantined),
            ("rfic_checkpoint_hits", cache.checkpoint_hits),
            ("rfic_checkpoint_corrupt", cache.checkpoint_corrupt),
        ):
            m.gauge(name, "Result-cache counter (scheduler's cache view)").set(
                value
            )
        m.gauge(
            "rfic_jobs_replayed", "Pending jobs inherited from the journal"
        ).set(self._replayed)
        m.gauge("rfic_dispatchers", "Configured dispatcher threads").set(
            self.concurrency
        )
        self._refresh_slo_gauges()
        return m.snapshot()

    # ------------------------------------------------------------------ #
    # SLO evaluation
    # ------------------------------------------------------------------ #

    def _slo_point(self) -> SLOPoint:
        """Current monotonic totals as one SLO sample."""
        latency = self._latency_hist.snapshot()
        return SLOPoint.capture(
            good_total=self._admitted,
            bad_total=self._rejected + self._shed,
            latency_buckets=latency["buckets"],  # type: ignore[arg-type]
            latency_count=int(latency["count"]),  # type: ignore[call-overload]
        )

    def _slo_sampler(self) -> None:
        """Sampler loop: one windowed baseline point per interval."""
        monitor = self._slo_monitor
        assert monitor is not None
        monitor.record(self._slo_point())
        while not self._stop.wait(self.slo_config.sample_interval_s):
            monitor.record(self._slo_point())

    def _refresh_slo_gauges(self) -> None:
        """Evaluate the objectives and publish them as ``rfic_slo_*``.

        Runs inside :meth:`metrics_snapshot` *before* the registry
        snapshot is taken, so ``/metrics``, ``/stats`` and ``/slo`` all
        read one coherent verdict — the one-snapshot invariant extends
        to the SLO layer.
        """
        monitor = self._slo_monitor
        if monitor is None:
            return
        doc = monitor.evaluate(self._slo_point())
        m = self.metrics

        def gauge(name: str, help_text: str, value: float) -> None:
            m.gauge(name, help_text).set(value)

        gauge("rfic_slo_ok", "1 when every configured objective is met",
              1.0 if doc["ok"] else 0.0)
        gauge("rfic_slo_window_seconds", "Configured SLO evaluation window",
              self.slo_config.window_s)
        gauge("rfic_slo_window_span_seconds",
              "Actual span covered by the retained samples",
              float(doc["window_span_s"]))  # type: ignore[arg-type]
        availability = doc.get("availability")
        if isinstance(availability, dict):
            gauge("rfic_slo_availability_objective",
                  "Target fraction of admissions that must succeed",
                  float(availability["objective"]))
            gauge("rfic_slo_availability_ratio",
                  "Windowed fraction of admissions that succeeded",
                  float(availability["ratio"]))
            gauge("rfic_slo_error_budget_burn_rate",
                  "Windowed bad fraction over the error budget; 1.0 burns "
                  "the budget exactly at the sustainable rate",
                  float(availability["burn_rate"]))
            gauge("rfic_slo_window_good",
                  "Successful admissions inside the window",
                  float(availability["good"]))
            gauge("rfic_slo_window_bad",
                  "429-class refusals inside the window",
                  float(availability["bad"]))
        latency = doc.get("latency")
        if isinstance(latency, dict):
            bounds = latency["p95_bounds_s"]
            gauge("rfic_slo_latency_target_s",
                  "Target upper bound for windowed p95 settle latency",
                  float(latency["target_p95_s"]))
            gauge("rfic_slo_latency_ok",
                  "1 unless the windowed p95 bucket wholly exceeds the "
                  "target", 1.0 if latency["ok"] else 0.0)
            gauge("rfic_slo_window_latency_count",
                  "Latency observations inside the window",
                  float(latency["count"]))
            gauge("rfic_slo_latency_p95_lower_s",
                  "Lower bound of the bucket holding the windowed p95",
                  float(bounds[0]) if bounds else 0.0)
            gauge("rfic_slo_latency_p95_s",
                  "Upper bound of the bucket holding the windowed p95 "
                  "(+Inf when p95 sits in the overflow bucket)",
                  float(bounds[1]) if bounds else 0.0)

    def _slo_from_snapshot(
        self, snapshot: Dict[str, Dict[str, object]]
    ) -> Dict[str, object]:
        """The ``GET /slo`` document, read back from ``rfic_slo_*`` gauges.

        Deriving from the snapshot (not from a fresh evaluation) is what
        makes ``/slo``, ``/stats`` and ``/metrics`` provably agree: all
        three are projections of the same registry snapshot.
        """
        if self._slo_monitor is None:
            return {"configured": False}

        def value(name: str) -> float:
            return self._snapshot_value(snapshot, name)

        doc: Dict[str, object] = {
            "configured": True,
            "window_s": value("rfic_slo_window_seconds"),
            "window_span_s": round(value("rfic_slo_window_span_seconds"), 3),
            "ok": value("rfic_slo_ok") >= 1.0,
        }
        if self.slo_config.availability_objective is not None:
            objective = value("rfic_slo_availability_objective")
            ratio = value("rfic_slo_availability_ratio")
            doc["availability"] = {
                "objective": objective,
                "ratio": ratio,
                "good": value("rfic_slo_window_good"),
                "bad": value("rfic_slo_window_bad"),
                "burn_rate": value("rfic_slo_error_budget_burn_rate"),
                "ok": ratio >= objective,
            }
        if self.slo_config.latency_p95_target_s is not None:
            count = int(value("rfic_slo_window_latency_count"))
            bounds: Optional[List[Optional[float]]] = None
            if count > 0:
                upper = value("rfic_slo_latency_p95_s")
                # inf is not valid JSON; an unbounded p95 bucket reads
                # as null upper bound in the document.
                bounds = [
                    value("rfic_slo_latency_p95_lower_s"),
                    upper if not math.isinf(upper) else None,
                ]
            doc["latency"] = {
                "target_p95_s": value("rfic_slo_latency_target_s"),
                "count": count,
                "p95_bounds_s": bounds,
                "ok": value("rfic_slo_latency_ok") >= 1.0,
            }
        return doc

    def slo_document(self) -> Dict[str, object]:
        """The ``GET /slo`` document (one registry snapshot)."""
        if self._slo_monitor is None:
            return {"configured": False}
        return self._slo_from_snapshot(self.metrics_snapshot())

    @staticmethod
    def _snapshot_value(
        snapshot: Dict[str, Dict[str, object]],
        name: str,
        labels: Optional[Dict[str, str]] = None,
    ) -> float:
        family = snapshot.get(name)
        if not family:
            return 0.0
        wanted = labels or {}
        for sample in family["samples"]:
            if sample.get("labels", {}) == wanted:
                return float(sample["value"])
        return 0.0

    @staticmethod
    def _snapshot_histogram(
        snapshot: Dict[str, Dict[str, object]],
        name: str,
        labels: Optional[Dict[str, str]] = None,
    ) -> Dict[str, object]:
        family = snapshot.get(name)
        wanted = labels or {}
        if family:
            for sample in family["samples"]:
                if sample.get("labels", {}) == wanted:
                    count = int(sample["count"])
                    total = float(sample["sum"])
                    return {
                        "count": count,
                        "sum_s": round(total, 6),
                        "mean_s": round(total / count, 6) if count else 0.0,
                    }
        return {"count": 0, "sum_s": 0.0, "mean_s": 0.0}

    def stats(self) -> Dict[str, object]:
        """The ``GET /stats`` document (one registry snapshot, see above)."""
        snapshot = self.metrics_snapshot()

        def counter(attr: str) -> int:
            name = {
                "_admitted": "rfic_admission_admitted_total",
                "_solved": "rfic_jobs_solved_total",
                "_served_from_cache": "rfic_jobs_served_from_cache_total",
                "_attached": "rfic_jobs_attached_total",
                "_failed": "rfic_jobs_failed_total",
                "_rejected": "rfic_admission_rejected_total",
                "_shed": "rfic_admission_shed_total",
                "_dispatcher_restarts": "rfic_dispatcher_restarts_total",
                "_crash_retries": "rfic_crash_retries_total",
                "_poisoned": "rfic_jobs_poisoned_total",
                "_checkpoint_writes": "rfic_checkpoint_writes_total",
                "_resumes": "rfic_solve_resumes_total",
            }[attr]
            return int(self._snapshot_value(snapshot, name))

        counts = {
            state: int(
                self._snapshot_value(
                    snapshot, "rfic_jobs_state", {"state": state}
                )
            )
            for state in JOB_STATES
        }
        pending = {}
        for cls in ("interactive", "batch", "background"):
            value = int(
                self._snapshot_value(
                    snapshot, "rfic_admission_pending", {"class": cls}
                )
            )
            if value:
                pending[cls] = value
        hits = int(self._snapshot_value(snapshot, "rfic_cache_hits"))
        misses = int(self._snapshot_value(snapshot, "rfic_cache_misses"))
        lookups = hits + misses
        cache = {
            "hits": hits,
            "misses": misses,
            "lookups": lookups,
            "stores": int(self._snapshot_value(snapshot, "rfic_cache_stores")),
            "put_errors": int(
                self._snapshot_value(snapshot, "rfic_cache_put_errors")
            ),
            "quarantined": int(
                self._snapshot_value(snapshot, "rfic_cache_quarantined")
            ),
            "hit_rate": round(hits / lookups, 3) if lookups else 0.0,
        }
        resumes = {
            "checkpoint_writes": counter("_checkpoint_writes"),
            "resumed": counter("_resumes"),
            "budget_saved_s": self._snapshot_histogram(
                snapshot, "rfic_resume_budget_saved_seconds"
            ),
        }
        return {
            "uptime_s": round(
                self._snapshot_value(snapshot, "rfic_uptime_seconds"), 1
            ),
            "queue_depth": counts["queued"],
            "running": counts["running"],
            "jobs": counts,
            "replayed_from_journal": self._replayed,
            "solved": counter("_solved"),
            "served_from_cache": counter("_served_from_cache"),
            "attached": counter("_attached"),
            "failures": counter("_failed"),
            "dispatchers": self.concurrency,
            "pool_workers": self.runner.workers,
            "cache": cache,
            "resumes": resumes,
            "journal_dropped_lines": self.queue.dropped_lines,
            "admission": {
                "max_queue_depth": self.max_queue_depth,
                "class_limits": dict(self.class_limits),
                "background_shed_ratio": self.background_shed_ratio,
                "pending_by_class": pending,
                "admitted": counter("_admitted"),
                "rejected": counter("_rejected"),
                "shed": counter("_shed"),
                "retry_after_hint_s": round(
                    self._retry_after_hint(counts["queued"]), 1
                ),
            },
            "supervision": {
                "dispatcher_restarts": counter("_dispatcher_restarts"),
                "crash_retries": counter("_crash_retries"),
                "poisoned": counter("_poisoned"),
                "poison_threshold": self.poison_threshold,
            },
            "metrics": {
                "job_latency_s": self._snapshot_histogram(
                    snapshot, "rfic_job_latency_seconds"
                ),
                "cache_serve_s": self._snapshot_histogram(
                    snapshot, "rfic_cache_serve_seconds"
                ),
                "stages_s": {
                    stage: self._snapshot_histogram(
                        snapshot, "rfic_job_stage_seconds", {"stage": stage}
                    )
                    for stage in ("queue_wait", "solve", "overhead")
                },
            },
            "slo": self._slo_from_snapshot(snapshot),
            "health": self.health(),
        }

    def trace_document(self, record: JobRecord) -> Dict[str, object]:
        """The ``GET /jobs/{hash}/trace`` document: the job's span tree.

        When the in-memory store has no spans (the job settled in a
        previous epoch), the tree is synthesized from the journaled
        timestamps, every span marked ``truncated`` — crashed-epoch
        history is degraded, never dropped.
        """
        trace = self.traces.get(record.key)
        if trace is not None and trace.spans:
            trace_id = trace.trace_id or record.trace_id
            spans = [span.to_dict() for span in trace.spans]
        else:
            trace_id = record.trace_id
            spans = []
            if record.started_unix is not None:
                queue_wait = max(
                    0.0, record.started_unix - record.submitted_unix
                )
                spans.append(Span(
                    "queue_wait", record.submitted_unix, queue_wait,
                    detail="synthesized from journal", truncated=True,
                ).to_dict())
                if record.runtime:
                    spans.append(Span(
                        "worker", record.started_unix, float(record.runtime),
                        detail="synthesized from journal", truncated=True,
                    ).to_dict())
            elif record.terminal:
                # Settled without ever dispatching (cache serve or
                # quarantine) in an epoch whose spans are gone.
                total = 0.0
                if record.settled_unix:
                    total = max(
                        0.0, record.settled_unix - record.submitted_unix
                    )
                spans.append(Span(
                    "admission", record.submitted_unix, total,
                    detail="synthesized from journal", truncated=True,
                ).to_dict())
        top_level = [span for span in spans if not span.get("parent")]
        total_s = None
        if record.settled_unix is not None:
            total_s = round(
                max(0.0, record.settled_unix - record.submitted_unix), 6
            )
        return {
            "key": record.key,
            "trace": trace_id,
            "label": record.label,
            "state": record.state,
            "submitted_unix": record.submitted_unix,
            "started_unix": record.started_unix,
            "settled_unix": record.settled_unix,
            "total_s": total_s,
            "span_sum_s": round(
                sum(float(span["duration_s"]) for span in top_level), 6
            ),
            "truncated": any(span.get("truncated") for span in spans),
            "spans": spans,
        }

    def resolve_job(self, key: str) -> Optional[LayoutJob]:
        """Rebuild the runnable job of a known record (for exports)."""
        record = self.queue.get(key)
        if record is None:
            return None
        return job_from_document(record.document)
