"""Admission and dispatch: priorities, fairness, dedup, cache short-circuit.

:class:`LayoutScheduler` sits between the durable :class:`JobQueue` and the
PR 3 :class:`~repro.runner.pool.BatchRunner`:

* **Admission** (:meth:`submit`) computes the job's content hash, then
  short-circuits against the result cache (an already-solved job settles
  as ``done`` without touching the pool) and dedups in flight (a second
  submission of an identical job *attaches* to the running one instead of
  re-solving — both submitters observe the same record and event stream).
* **Dispatch** runs on ``concurrency`` threads sharing one re-entrant
  runner.  The next job is chosen by priority class first
  (``interactive`` < ``batch`` < ``background``), then per-client
  fairness (the least-recently-served client goes first, so one client
  flooding the queue cannot starve the others), then FIFO.
* **Settlement** is exactly-once per content hash, journaled through the
  queue; every transition is published on the :class:`EventBus` that feeds
  the HTTP API's Server-Sent Events.

Event schema (also the SSE ``data:`` payload)::

    {"seq": 17, "ts": 1721998800.5, "kind": "running", "key": "ab12...",
     "label": "buffer60:manual", "state": "running", "detail": "",
     "runtime": 0.0}

``kind`` is one of ``queued | running | progress | done | failed |
timeout | cancelled``; the last four are terminal and close any SSE
stream subscribed to that job.  A draining daemon additionally emits a
keyless ``shutdown`` event to every open stream.

Robustness layer (PR 6)
-----------------------
* **Backpressure**: a bounded queue (``max_queue_depth``, optional
  per-priority-class limits) rejects fresh work with
  :class:`QueueSaturated` — surfaced as HTTP 429 with a ``Retry-After``
  computed from the recent runtime EMA.  Past ``background_shed_ratio``
  of capacity, ``background``-class submissions are shed early so bulk
  traffic cannot crowd out interactive users.
* **Supervision**: dispatcher threads run under a supervisor that
  restarts them on any escaped exception (counted in
  ``dispatcher_restarts``).  A job whose worker crashes is retried, and
  quarantined as ``failed`` with a ``poisoned:`` error prefix once it
  has burned ``poison_threshold`` attempts.
* **Drain**: :meth:`LayoutScheduler.drain` stops admission, lets running
  jobs finish (requeueing any leftovers), compacts the journal, and
  broadcasts ``shutdown`` so SSE streams close cleanly.
"""

from __future__ import annotations

import queue as queue_module
import threading
import time
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import ReproError
from repro.faults import FAULTS
from repro.runner.cache import ResultCache
from repro.runner.jobs import LayoutJob
from repro.runner.pool import BatchRunner, JobOutcome, ProgressEvent
from repro.service.documents import (
    job_from_document,
    priority_rank,
    validate_priority,
)
from repro.service.queue import JobQueue, JobRecord


class QueueSaturated(ReproError):
    """Admission refused: the queue is at capacity (HTTP 429)."""

    def __init__(self, message: str, retry_after: float = 1.0, shed: bool = False):
        super().__init__(message)
        self.retry_after = max(1.0, retry_after)
        self.shed = shed  #: True when rejected by background load shedding


class ServiceDraining(ReproError):
    """Admission refused: the daemon is shutting down (HTTP 503)."""

#: Event kinds that close an SSE stream (canonical definition; the HTTP
#: layer re-exports it).
TERMINAL_EVENT_KINDS = ("done", "failed", "timeout", "cancelled")

#: Terminal event kinds, by outcome status.
_TERMINAL_KINDS = {
    "completed": "done",
    "cached": "done",
    "failed": "failed",
    "timeout": "timeout",
    "cancelled": "cancelled",
}

#: How many events are retained per job for SSE replay.
_HISTORY_LIMIT = 512

#: How many jobs keep a replayable history.  Beyond this, the oldest
#: *settled* keys are evicted — a late SSE subscriber to an evicted job
#: gets a terminal event synthesized from the journaled record instead,
#: so nothing observable is lost while daemon memory stays bounded.
_HISTORY_KEYS = 1024

#: Fairness bookkeeping cap: clients beyond this evict their oldest peers.
_CLIENT_LIMIT = 4096


class Subscription:
    """One event consumer: a bounded mailbox plus an unsubscribe handle."""

    def __init__(self, bus: "EventBus", key: Optional[str]) -> None:
        self._bus = bus
        self.key = key
        self.mailbox: "queue_module.Queue[Dict[str, object]]" = queue_module.Queue(
            maxsize=4096
        )

    def get(self, timeout: Optional[float] = None) -> Optional[Dict[str, object]]:
        """Next event, or ``None`` on timeout."""
        try:
            return self.mailbox.get(timeout=timeout)
        except queue_module.Empty:
            return None

    def close(self) -> None:
        self._bus.unsubscribe(self)


class EventBus:
    """Fan-out of job lifecycle events with per-job replayable history."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._seq = 0
        self._history: Dict[str, List[Dict[str, object]]] = {}
        #: Subscriptions indexed by job key, so publishing an event only
        #: walks that job's watchers — with thousands of SSE streams open,
        #: a flat subscriber list would serialize every dispatcher behind
        #: O(all subscribers) work per event.
        self._by_key: Dict[str, List[Subscription]] = {}
        #: Firehose subscriptions (``key=None``): they see every event.
        self._firehose: List[Subscription] = []

    @staticmethod
    def _deliver(subscription: Subscription, event: Dict[str, object]) -> None:
        try:
            subscription.mailbox.put_nowait(event)
        except queue_module.Full:  # slow consumer: drop, don't block
            pass

    def publish(
        self,
        kind: str,
        key: str,
        label: str = "",
        state: str = "",
        detail: str = "",
        runtime: float = 0.0,
    ) -> Dict[str, object]:
        with self._lock:
            self._seq += 1
            event = {
                "seq": self._seq,
                "ts": time.time(),
                "kind": kind,
                "key": key,
                "label": label,
                "state": state,
                "detail": detail,
                "runtime": round(runtime, 3),
            }
            history = self._history.setdefault(key, [])
            history.append(event)
            del history[:-_HISTORY_LIMIT]
            if len(self._history) > _HISTORY_KEYS:
                self._evict_settled_histories()
            for subscription in self._by_key.get(key, ()):
                self._deliver(subscription, event)
            for subscription in self._firehose:
                self._deliver(subscription, event)
            return event

    def subscribe(
        self, key: Optional[str] = None, replay: bool = True, after: int = 0
    ) -> Subscription:
        """Start consuming events (``key=None`` = all jobs).

        With ``replay`` the job's retained history is delivered first, so
        an SSE client that connects after settlement still sees the full
        ``queued → ... → done`` sequence.  Subscribing and replay happen
        under one lock, so no event can fall between history and live
        delivery.

        ``after`` filters the *history replay* to events with a greater
        ``seq`` — the resume cursor of a reconnecting SSE client.  Live
        events are never filtered: seq restarts at 1 each daemon epoch, so
        a stale cursor must not be allowed to swallow fresh events.
        """
        subscription = Subscription(self, key)
        with self._lock:
            if replay and key is not None:
                for event in self._history.get(key, []):
                    if int(event["seq"]) > after:
                        subscription.mailbox.put_nowait(event)
            if key is None:
                self._firehose.append(subscription)
            else:
                self._by_key.setdefault(key, []).append(subscription)
        return subscription

    def broadcast_shutdown(self, detail: str = "service draining") -> None:
        """Deliver a keyless ``shutdown`` event to every open subscription.

        SSE streams treat it as terminal, so a drain closes them with an
        explicit event instead of a silent TCP reset.  It is not recorded
        in any per-job history (it belongs to the epoch, not a job).
        """
        with self._lock:
            self._seq += 1
            event = {
                "seq": self._seq,
                "ts": time.time(),
                "kind": "shutdown",
                "key": "",
                "label": "",
                "state": "",
                "detail": detail,
                "runtime": 0.0,
            }
            for subscription in self._firehose:
                self._deliver(subscription, event)
            for watchers in self._by_key.values():
                for subscription in watchers:
                    self._deliver(subscription, event)

    def unsubscribe(self, subscription: Subscription) -> None:
        with self._lock:
            if subscription.key is None:
                try:
                    self._firehose.remove(subscription)
                except ValueError:
                    pass
                return
            watchers = self._by_key.get(subscription.key)
            if watchers is None:
                return
            try:
                watchers.remove(subscription)
            except ValueError:
                pass
            if not watchers:  # don't leak empty buckets for settled jobs
                del self._by_key[subscription.key]

    def _evict_settled_histories(self) -> None:
        """Drop the oldest settled jobs' histories (caller holds the lock).

        Only keys whose last event is terminal are evicted; active jobs
        keep their history no matter how many there are.
        """
        for stale in list(self._history):
            if len(self._history) <= _HISTORY_KEYS:
                break
            events = self._history[stale]
            if events and events[-1]["kind"] in TERMINAL_EVENT_KINDS:
                del self._history[stale]

    def history(self, key: str) -> List[Dict[str, object]]:
        with self._lock:
            return list(self._history.get(key, []))


class LayoutScheduler:
    """Dispatch queued layout jobs through a shared batch runner."""

    def __init__(
        self,
        queue: JobQueue,
        cache: ResultCache,
        runner: Optional[BatchRunner] = None,
        concurrency: int = 1,
        pool_workers: int = 1,
        job_timeout: Optional[float] = None,
        max_queue_depth: int = 0,
        class_limits: Optional[Dict[str, int]] = None,
        background_shed_ratio: float = 0.5,
        poison_threshold: int = 3,
    ) -> None:
        if concurrency < 1:
            raise ValueError("concurrency must be >= 1")
        self.queue = queue
        self.cache = cache
        self.runner = runner or BatchRunner(
            cache_dir=cache, workers=pool_workers, job_timeout=job_timeout
        )
        self.concurrency = concurrency
        #: Queued-job ceiling; 0 disables global backpressure.
        self.max_queue_depth = max_queue_depth
        #: Optional per-priority-class queued-job ceilings.
        self.class_limits = dict(class_limits or {})
        #: Fraction of ``max_queue_depth`` past which ``background``-class
        #: submissions are shed before the queue is actually full.
        self.background_shed_ratio = background_shed_ratio
        #: Worker-crash attempts before a job is quarantined as poisoned.
        self.poison_threshold = max(1, poison_threshold)
        self.bus = EventBus()
        self.started_unix = time.time()
        self._lock = threading.Lock()
        self._wakeup = threading.Condition(self._lock)
        self._stop = threading.Event()
        self._threads: List[threading.Thread] = []
        self._dispatch_seq = 0
        self._last_served: Dict[str, int] = {}
        #: Guards the stats counters and the runtime EMA below.  They are
        #: mutated from every dispatcher thread *and* from HTTP admission
        #: threads; bare ``+= 1`` read-modify-writes would silently drop
        #: increments under load and make ``/stats`` drift.  Always the
        #: innermost lock: never take ``self._lock`` or the queue lock
        #: while holding it.
        self._counters_lock = threading.Lock()
        self._solved = 0
        self._served_from_cache = 0
        self._attached = 0
        self._failed = 0
        self._draining = False
        self._dispatcher_restarts = 0
        self._poisoned = 0
        self._crash_retries = 0
        self._shed = 0
        self._rejected = 0
        self._runtime_ema = 0.0
        self._replayed = self.queue.depth()  # pending jobs inherited from the journal

    def _bump(self, counter: str, amount: int = 1) -> None:
        """Atomically increment one of the stats counters."""
        with self._counters_lock:
            setattr(self, counter, getattr(self, counter) + amount)

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def start(self) -> None:
        """Start the dispatcher threads (idempotent; restartable after stop)."""
        if self._threads:
            return
        self._stop.clear()
        for index in range(self.concurrency):
            thread = threading.Thread(
                target=self._dispatch_thread, name=f"dispatch-{index}", daemon=True
            )
            thread.start()
            self._threads.append(thread)

    def stop(self, timeout: float = 10.0) -> None:
        """Stop dispatching.  Jobs already running finish and settle."""
        self._stop.set()
        with self._wakeup:
            self._wakeup.notify_all()
        for thread in self._threads:
            thread.join(timeout=timeout)
        self._threads = []

    def begin_drain(self) -> None:
        """Stop admitting work; everything else keeps running."""
        self._draining = True

    def drain(self, timeout: float = 30.0) -> None:
        """Graceful shutdown: the SIGTERM contract.

        1. Stop admitting (new submissions get :class:`ServiceDraining`).
        2. Let running jobs finish within ``timeout``; queued jobs stay
           journaled as ``queued`` for the next epoch.
        3. Stop the dispatchers; any job still ``running`` after that
           (worker outlived the grace period) is requeued, so the journal
           never records an in-flight job as anything but resumable.
        4. Compact the journal (one snapshot line per record — the fastest
           possible replay for the next epoch).
        5. Broadcast ``shutdown`` so every SSE stream closes on an
           explicit terminal event.
        """
        self.begin_drain()
        deadline = time.time() + timeout
        while time.time() < deadline:
            if self.queue.counts()["running"] == 0:
                break
            time.sleep(0.05)
        threads = list(self._threads)
        self.stop(timeout=max(1.0, deadline - time.time()))
        # Only touch leftover "running" records once no dispatcher survives
        # to settle them out from under us.
        if not any(thread.is_alive() for thread in threads):
            for record in self.queue.records():
                if record.state == "running":
                    self.queue.requeue(record.key)
        self.queue.compact()
        self.bus.broadcast_shutdown()

    # ------------------------------------------------------------------ #
    # admission
    # ------------------------------------------------------------------ #

    def submit(
        self,
        document: Dict[str, object],
        priority: Optional[str] = None,
        client: str = "anonymous",
    ) -> Tuple[JobRecord, str]:
        """Admit one job document; returns ``(record, disposition)``.

        Dispositions: ``queued`` / ``requeued`` (will be dispatched),
        ``attached`` (joined an in-flight identical job), ``done``
        (already settled), ``cached`` (settled right now from the result
        cache without running — the short-circuit counts as a cache hit in
        ``GET /stats``).

        Raises :class:`ServiceDraining` while draining and
        :class:`QueueSaturated` when admitting this job would exceed the
        configured queue bounds.  Attaches and cache-served submissions
        are exempt from the capacity check — they add no queue entry, and
        refusing a free answer under overload would be perverse.
        """
        if self._draining:
            raise ServiceDraining("service is draining; not admitting jobs")
        job = job_from_document(document)
        key = job.content_hash
        with self._lock:
            existing = self.queue.get(key)
            if existing is not None and existing.active:
                # The record can settle between the check above and the
                # queue's own locked submit (dispatchers settle under the
                # queue lock only), so honour whatever disposition the
                # queue actually took.
                record, disposition = self.queue.submit(document, priority, client)
                if disposition == "attached":
                    self._bump("_attached")
                elif disposition in ("queued", "requeued"):
                    self.bus.publish("queued", key, record.label, "queued")
                    self._wakeup.notify()
                return record, disposition
            if existing is not None and existing.state == "done":
                entry = self._cache_hit(job)
                if entry is not None:
                    self._bump("_served_from_cache")
                    return existing, "cached"
                # Entry vanished (cache wiped/pruned): the journal says done
                # but the layout is gone — force the work back into the queue.
                self._check_capacity(existing.priority)
                record = self.queue.requeue(key)
                self.bus.publish("queued", key, record.label, "queued")
                self._wakeup.notify()
                return record, "requeued"
            if self.cache.peek(job) is None:
                # Fresh work that will actually occupy a queue slot (a
                # cache hit settles instantly and is admission-exempt).
                self._check_capacity(validate_priority(priority))
            record, disposition = self.queue.submit(document, priority, client)
            if disposition == "done":
                return record, disposition
            entry = self._cache_hit(job)
            if entry is not None:
                # Solved in a previous epoch (or by a CLI batch sharing the
                # cache): settle instantly, never touching the pool.
                summary = dict(entry.summary)
                summary["served"] = "cache"
                self.queue.settle(
                    key,
                    "done",
                    summary=summary,
                    runtime=float(entry.summary.get("runtime_s", 0.0)),
                )
                self._bump("_served_from_cache")
                self.bus.publish("queued", key, record.label, "queued")
                self.bus.publish(
                    "done", key, record.label, "done", detail="served from cache"
                )
                return self.queue.get(key), "cached"
            self.bus.publish("queued", key, record.label, "queued")
            self._wakeup.notify()
            return record, disposition

    def _cache_hit(self, job: LayoutJob):
        """Cache lookup that counts a *hit* but never a miss.

        The pool performs its own counted lookup when the job is actually
        dispatched; counting the admission probe's miss as well would
        double-count every fresh submission in ``GET /stats``.
        """
        if self.cache.peek(job) is None:
            return None
        return self.cache.get(job)  # counts exactly one hit

    # ------------------------------------------------------------------ #
    # backpressure
    # ------------------------------------------------------------------ #

    def _check_capacity(self, priority: str) -> None:
        """Refuse admission when queue bounds would be exceeded.

        Checks, in order: the per-class limit, background load shedding
        (past ``background_shed_ratio`` of global capacity the lowest
        class yields its remaining headroom to the others), the global
        depth ceiling.  Raises :class:`QueueSaturated`; no-op when
        ``max_queue_depth`` is 0 and no class limit applies.
        """
        pending = self.queue.pending_counts()
        limit = self.class_limits.get(priority)
        if limit is not None and pending.get(priority, 0) >= limit:
            self._bump("_rejected")
            raise QueueSaturated(
                f"{priority} queue is full ({limit} jobs)",
                retry_after=self._retry_after_hint(pending.get(priority, 0)),
            )
        if self.max_queue_depth <= 0:
            return
        depth = sum(pending.values())
        if priority == "background":
            shed_at = self.background_shed_ratio * self.max_queue_depth
            if depth >= shed_at:
                self._bump("_shed")
                raise QueueSaturated(
                    f"shedding background work (queue depth {depth} >= "
                    f"{shed_at:.0f} of {self.max_queue_depth})",
                    retry_after=self._retry_after_hint(depth),
                    shed=True,
                )
        if depth >= self.max_queue_depth:
            self._bump("_rejected")
            raise QueueSaturated(
                f"queue is full ({depth}/{self.max_queue_depth} jobs)",
                retry_after=self._retry_after_hint(depth),
            )

    def _retry_after_hint(self, depth: int) -> float:
        """Seconds until a queue slot plausibly frees up.

        Estimated as (queued jobs / dispatcher count) service intervals of
        the recent runtime EMA, clamped to [1, 60] — a hint, not a
        promise, so the bound matters more than the precision.
        """
        with self._counters_lock:
            ema = self._runtime_ema
        interval = ema if ema > 0 else 1.0
        estimate = interval * max(1, depth) / max(1, self.concurrency)
        return min(60.0, max(1.0, estimate))

    # ------------------------------------------------------------------ #
    # dispatch
    # ------------------------------------------------------------------ #

    def _select_next(self) -> Optional[JobRecord]:
        """Pick and claim the next queued record (caller holds the lock).

        Ordering: best priority class first; within a class the client
        served longest ago wins (per-client fairness); FIFO breaks ties.
        """
        while True:
            candidates = self.queue.queued()
            if not candidates:
                return None
            record = min(
                candidates,
                key=lambda r: (
                    priority_rank(r.priority),
                    self._last_served.get(r.client, -1),
                    r.seq,
                ),
            )
            self._last_served[record.client] = self._dispatch_seq
            self._dispatch_seq += 1
            if len(self._last_served) > _CLIENT_LIMIT:
                for client in sorted(self._last_served, key=self._last_served.get)[
                    : len(self._last_served) - _CLIENT_LIMIT
                ]:
                    del self._last_served[client]
            if record.attempts >= self.poison_threshold:
                # A previous incarnation of this content hash already burned
                # the whole quarantine budget (attempts ride the ``requeued``
                # disposition): re-quarantine without spending another worker.
                self._quarantine_exhausted(record)
                continue
            self.queue.mark_running(record.key)
            return record

    def _quarantine_exhausted(self, record: JobRecord) -> None:
        error = (
            f"poisoned: quarantine budget exhausted "
            f"(attempts={record.attempts}/{self.poison_threshold})"
        )
        if self.queue.settle(record.key, "failed", error=error):
            self._bump("_poisoned")
            self._bump("_failed")
            self.bus.publish("failed", record.key, record.label, "failed", detail=error)

    def _dispatch_thread(self) -> None:
        """Supervisor shell around :meth:`_dispatch_loop`.

        Anything that escapes the loop (a bug outside the per-job error
        boundary, an injected ``scheduler.dispatch`` fault) is counted and
        the loop restarted — one bad iteration must not silently cost the
        daemon a dispatcher for the rest of its life.
        """
        while not self._stop.is_set():
            try:
                self._dispatch_loop()
            except BaseException:  # noqa: BLE001 - supervisor boundary
                self._bump("_dispatcher_restarts")
                continue
            return

    def _dispatch_loop(self) -> None:
        while not self._stop.is_set():
            # Outside the per-job boundary on purpose: a firing fault here
            # kills the loop and must be survived by _dispatch_thread.
            FAULTS.act("scheduler.dispatch")
            with self._wakeup:
                record = self._select_next()
                if record is None:
                    self._wakeup.wait(timeout=0.2)
                    continue
            self.bus.publish("running", record.key, record.label, "running")
            try:
                job = job_from_document(record.document)
                outcome = self.runner.run_one(
                    job, progress=self._progress_forwarder(record)
                )
            except Exception as exc:  # noqa: BLE001 - dispatcher boundary
                self._settle_failure(record, f"{type(exc).__name__}: {exc}")
                continue
            self._settle_outcome(record, outcome)

    def _progress_forwarder(
        self, record: JobRecord
    ) -> Callable[[ProgressEvent], None]:
        def forward(event: ProgressEvent) -> None:
            # Terminal pool events surface through settlement; re-publishing
            # them as "progress" would double-report the lifecycle.
            if event.kind in ("submitted", "cached", "completed", "failed", "timeout"):
                return
            self.bus.publish(
                "progress",
                record.key,
                record.label,
                record.state,
                detail=event.kind,
                runtime=event.runtime,
            )

        return forward

    def _settle_outcome(self, record: JobRecord, outcome: JobOutcome) -> None:
        state = "done" if outcome.ok else _TERMINAL_KINDS.get(outcome.status, "failed")
        summary = dict(outcome.summary or {})
        error = outcome.error
        if outcome.ok:
            summary["served"] = "cache" if outcome.status == "cached" else "solve"
            if outcome.status == "cached":
                self._bump("_served_from_cache")
            else:
                self._bump("_solved")
                self._observe_runtime(outcome.runtime)
        else:
            if self._is_worker_crash(outcome):
                fresh = self.queue.get(record.key)
                attempts = fresh.attempts if fresh is not None else record.attempts
                if attempts < self.poison_threshold:
                    # The crash may be environmental (OOM spike, injected
                    # fault): give the job another worker — but only
                    # poison_threshold of them in total.
                    self._bump("_crash_retries")
                    requeued = self.queue.requeue(record.key)
                    self.bus.publish(
                        "queued",
                        record.key,
                        record.label,
                        "queued",
                        detail=(
                            f"retry {attempts}/{self.poison_threshold} "
                            f"after worker crash"
                        ),
                    )
                    with self._wakeup:
                        self._wakeup.notify()
                    del requeued
                    return
                # This job reliably kills its workers: quarantine it so it
                # cannot eat the pool forever.
                self._bump("_poisoned")
                error = f"poisoned: {outcome.error} (attempts={attempts})"
            self._bump("_failed")
        settled = self.queue.settle(
            record.key,
            state,
            summary=summary or None,
            error=error,
            runtime=outcome.runtime,
        )
        if settled:
            self.bus.publish(
                _TERMINAL_KINDS.get(outcome.status, "failed"),
                record.key,
                record.label,
                state,
                detail=error or "",
                runtime=outcome.runtime,
            )

    @staticmethod
    def _is_worker_crash(outcome: JobOutcome) -> bool:
        """Whether the outcome is a killed worker (retry-worthy).

        Only crashes qualify: an ordinary failure or a timeout is a
        deterministic property of the job and would just fail again.
        """
        return (
            outcome.status == "failed"
            and bool(outcome.error)
            and "worker crashed" in outcome.error
        )

    def _observe_runtime(self, runtime: float) -> None:
        """Feed the runtime EMA behind the ``Retry-After`` hint.

        Every dispatcher reports here; the read-modify-write of the EMA
        happens under the counters lock or concurrent settlements would
        silently drop samples.
        """
        if runtime <= 0:
            return
        with self._counters_lock:
            if self._runtime_ema <= 0:
                self._runtime_ema = runtime
            else:
                self._runtime_ema = 0.8 * self._runtime_ema + 0.2 * runtime

    def _settle_failure(self, record: JobRecord, error: str) -> None:
        self._bump("_failed")
        if self.queue.settle(record.key, "failed", error=error):
            self.bus.publish("failed", record.key, record.label, "failed", detail=error)

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #

    @property
    def draining(self) -> bool:
        return self._draining

    def health(self) -> Dict[str, object]:
        """The ``GET /healthz`` document (also embedded in ``/stats``).

        ``status`` is ``ok`` unless durability is degraded (journal write
        failures sticking, cache unwritable) — degraded is still *alive*:
        liveness probes always get HTTP 200, only the body changes.
        """
        journal_degraded = self.queue.degraded
        cache_error = self.cache.last_put_error
        degraded = journal_degraded is not None or cache_error is not None
        with self._counters_lock:
            restarts = self._dispatcher_restarts
        return {
            "status": "degraded" if degraded else "ok",
            "draining": self._draining,
            "journal_degraded": journal_degraded,
            "journal_write_errors": self.queue.write_errors,
            "cache_writable": cache_error is None,
            "cache_put_error": cache_error,
            "cache_put_errors": self.cache.stats.put_errors,
            "dispatchers_alive": sum(
                1 for thread in self._threads if thread.is_alive()
            ),
            "dispatcher_restarts": restarts,
        }

    def saturated(self) -> bool:
        """Whether a fresh batch-class submission would be refused now."""
        if self._draining:
            return True
        if self.max_queue_depth <= 0:
            return False
        return self.queue.depth() >= self.max_queue_depth

    def stats(self) -> Dict[str, object]:
        """The ``GET /stats`` document."""
        counts = self.queue.counts()
        pending = self.queue.pending_counts()
        with self._counters_lock:  # one coherent snapshot of the counters
            snapshot = {
                "solved": self._solved,
                "served_from_cache": self._served_from_cache,
                "attached": self._attached,
                "failures": self._failed,
                "rejected": self._rejected,
                "shed": self._shed,
                "dispatcher_restarts": self._dispatcher_restarts,
                "crash_retries": self._crash_retries,
                "poisoned": self._poisoned,
            }
        return {
            "uptime_s": round(time.time() - self.started_unix, 1),
            "queue_depth": counts["queued"],
            "running": counts["running"],
            "jobs": counts,
            "replayed_from_journal": self._replayed,
            "solved": snapshot["solved"],
            "served_from_cache": snapshot["served_from_cache"],
            "attached": snapshot["attached"],
            "failures": snapshot["failures"],
            "dispatchers": self.concurrency,
            "pool_workers": self.runner.workers,
            "cache": self.cache.stats.as_dict(),
            "journal_dropped_lines": self.queue.dropped_lines,
            "admission": {
                "max_queue_depth": self.max_queue_depth,
                "class_limits": dict(self.class_limits),
                "background_shed_ratio": self.background_shed_ratio,
                "pending_by_class": pending,
                "rejected": snapshot["rejected"],
                "shed": snapshot["shed"],
                "retry_after_hint_s": round(
                    self._retry_after_hint(counts["queued"]), 1
                ),
            },
            "supervision": {
                "dispatcher_restarts": snapshot["dispatcher_restarts"],
                "crash_retries": snapshot["crash_retries"],
                "poisoned": snapshot["poisoned"],
                "poison_threshold": self.poison_threshold,
            },
            "health": self.health(),
        }

    def resolve_job(self, key: str) -> Optional[LayoutJob]:
        """Rebuild the runnable job of a known record (for exports)."""
        record = self.queue.get(key)
        if record is None:
            return None
        return job_from_document(record.document)
