"""Wire representation of layout jobs (and sweeps) for the service.

The HTTP API, the durable journal and the Python client all exchange jobs
as plain JSON documents.  A job document is the *submission* form of a
:class:`~repro.runner.jobs.LayoutJob`:

.. code-block:: json

    {
      "flow": "pilp",
      "netlist": { ... canonical netlist document ... },
      "config": { ... asdict(PILPConfig) ... },
      "label": "buffer60:pilp",
      "tag": ""
    }

with ``"generator": {"circuit": ..., "variant": ..., "area": [w, h],
"seed": ...}`` as the lazy alternative to an inline ``"netlist"``.  The
document deliberately carries exactly the fields that participate in the
PR 3 content hash (plus the cosmetic ``label``/``variant``), so a job that
round-trips through a document — over HTTP, or through the journal and a
daemon restart — hashes identically to the original and therefore settles
against the same cache entry.

A *sweep* document wraps a :class:`~repro.runner.sweep.SweepSpec` grid
instead and expands server-side into one job document per grid point.
"""

from __future__ import annotations

from dataclasses import asdict
from typing import Dict, List, Mapping, Optional, Sequence

from repro.circuit.loader import netlist_from_dict, netlist_to_dict
from repro.core.config import ObjectiveWeights, PhaseSettings, PILPConfig
from repro.errors import ConfigurationError
from repro.runner.jobs import GeneratorSpec, JOB_FLOWS, LayoutJob
from repro.runner.sweep import SweepSpec, generate_sweep

#: Admission priority classes, best first.  ``interactive`` jobs preempt
#: the ``batch`` backlog at dispatch time (never mid-solve); ``background``
#: jobs only run when nothing better is queued.
PRIORITY_CLASSES = ("interactive", "batch", "background")

DEFAULT_PRIORITY = "batch"
DEFAULT_CLIENT = "anonymous"


def config_to_dict(config: PILPConfig) -> Dict[str, object]:
    """JSON-able form of a :class:`PILPConfig` (plain ``asdict``)."""
    return asdict(config)


def config_from_dict(data: Optional[Mapping[str, object]]) -> PILPConfig:
    """Rebuild a :class:`PILPConfig` from its ``asdict`` document.

    An empty / missing document means the default configuration.  Unknown
    fields raise :class:`ConfigurationError` (they would silently change
    the content hash's meaning if ignored).
    """
    if not data:
        return PILPConfig()
    payload = dict(data)
    kwargs: Dict[str, object] = {}
    try:
        weights = payload.pop("weights", None)
        if weights is not None:
            kwargs["weights"] = ObjectiveWeights(**dict(weights))
        for name in ("phase1", "phase2", "phase3", "exact"):
            phase = payload.pop(name, None)
            if phase is not None:
                kwargs[name] = PhaseSettings(**dict(phase))
        kwargs.update(payload)
        return PILPConfig(**kwargs)
    except TypeError as exc:
        raise ConfigurationError(f"bad config document: {exc}") from None


def _generator_to_dict(generator: GeneratorSpec) -> Dict[str, object]:
    return {
        "circuit": generator.circuit,
        "variant": generator.variant,
        "area": list(generator.area) if generator.area is not None else None,
        "seed": generator.seed,
    }


def _generator_from_dict(data: Mapping[str, object]) -> GeneratorSpec:
    if "circuit" not in data:
        raise ConfigurationError("generator document needs a 'circuit' name")
    area = data.get("area")
    return GeneratorSpec(
        circuit=str(data["circuit"]),
        variant=data.get("variant"),
        area=tuple(float(value) for value in area) if area is not None else None,
        seed=int(data["seed"]) if data.get("seed") is not None else None,
    )


def job_to_document(job: LayoutJob) -> Dict[str, object]:
    """The JSON submission document of a job.

    Generator jobs stay lazy (the tiny recipe travels, not the netlist);
    explicit netlists are embedded as their canonical document.  Rebuilding
    the job with :func:`job_from_document` yields the same content hash.
    """
    document: Dict[str, object] = {
        "flow": job.flow,
        "config": config_to_dict(job.config),
        "label": job.label,
        "variant": job.variant,
        "tag": job.tag,
    }
    if job.generator is not None:
        document["generator"] = _generator_to_dict(job.generator)
    else:
        document["netlist"] = netlist_to_dict(job.netlist)
    return document


def job_from_document(document: Mapping[str, object]) -> LayoutJob:
    """Rebuild a runnable :class:`LayoutJob` from a submission document."""
    if not isinstance(document, Mapping):
        raise ConfigurationError("job document must be a JSON object")
    flow = str(document.get("flow", "pilp"))
    if flow not in JOB_FLOWS:
        raise ConfigurationError(f"unknown job flow {flow!r}; available: {JOB_FLOWS}")
    netlist_doc = document.get("netlist")
    generator_doc = document.get("generator")
    if (netlist_doc is None) == (generator_doc is None):
        raise ConfigurationError(
            "a job document needs exactly one of 'netlist' or 'generator'"
        )
    return LayoutJob(
        flow=flow,
        netlist=netlist_from_dict(netlist_doc) if netlist_doc is not None else None,
        generator=_generator_from_dict(generator_doc)
        if generator_doc is not None
        else None,
        config=config_from_dict(document.get("config")),
        label=document.get("label"),
        variant=str(document.get("variant", "")),
        tag=str(document.get("tag", "")),
    )


def sweep_from_document(document: Mapping[str, object]) -> SweepSpec:
    """Rebuild a :class:`SweepSpec` from the ``"sweep"`` sub-document."""
    known = (
        "frequencies_ghz",
        "stage_counts",
        "area_scales",
        "seeds",
        "extra_branches",
        "stage_width",
        "base_height",
    )
    unknown = set(document) - set(known)
    if unknown:
        raise ConfigurationError(f"unknown sweep fields: {sorted(unknown)}")
    kwargs = {name: document[name] for name in known if name in document}
    for name in ("frequencies_ghz", "stage_counts", "area_scales", "seeds"):
        if name in kwargs:
            kwargs[name] = tuple(kwargs[name])
    try:
        return SweepSpec(**kwargs)
    except TypeError as exc:
        raise ConfigurationError(f"bad sweep document: {exc}") from None


def expand_submission(document: Mapping[str, object]) -> List[Dict[str, object]]:
    """Expand one ``POST /jobs`` body into job documents.

    A plain job document expands to itself; a document with a ``"sweep"``
    key expands the grid server-side (sharing the submission's ``flow`` /
    ``config``), mirroring what ``rfic-layout batch --sweep-*`` does
    locally.
    """
    if not isinstance(document, Mapping):
        raise ConfigurationError("submission must be a JSON object")
    if "sweep" not in document:
        return [dict(document)]
    sweep = sweep_from_document(document["sweep"])
    config = config_from_dict(document.get("config"))
    flow = str(document.get("flow", "pilp"))
    return [job_to_document(job) for job in generate_sweep(sweep, config=config, flow=flow)]


def validate_priority(priority: Optional[str]) -> str:
    """Normalise/validate a submission's priority class."""
    if priority is None:
        return DEFAULT_PRIORITY
    if priority not in PRIORITY_CLASSES:
        raise ConfigurationError(
            f"unknown priority {priority!r}; available: {PRIORITY_CLASSES}"
        )
    return priority


def priority_rank(priority: str) -> int:
    """Dispatch rank of a priority class (lower dispatches first)."""
    return PRIORITY_CLASSES.index(priority)
