"""repro.service — the persistent layout-generation service.

The service turns the PR 3 batch runner into an always-on daemon
(``rfic-layout serve``): jobs are submitted over HTTP as JSON documents,
journaled to disk so they survive crashes and restarts, deduplicated
against in-flight work and the content-addressed result cache, dispatched
through the shared worker pool with priority classes and per-client
fairness, and observable live via Server-Sent Events.

Layering (each module only depends on the ones above it):

* :mod:`repro.service.documents` — wire format: job/sweep documents that
  hash identically to the :class:`~repro.runner.jobs.LayoutJob` they
  describe.
* :mod:`repro.service.queue` — durability: the append-only JSON-lines
  journal with atomic rotation and exactly-once settlement.
* :mod:`repro.service.scheduler` — policy: admission, cache
  short-circuiting, fairness, dispatch over the re-entrant
  :class:`~repro.runner.pool.BatchRunner`, the event bus.
* :mod:`repro.service.http` — transport: the stdlib HTTP/SSE API.
* :mod:`repro.service.client` / :mod:`repro.service.daemon` — consumers:
  the Python client + :class:`RemoteRunner` adapter, and the assembled
  daemon the CLI boots.

Invariants (documented in ROADMAP.md): the journal is append-only between
rotations and rotation is staging-rename atomic; settlement is
exactly-once, keyed by the PR 3 content hash; a settled hash is served
from the result cache, never re-solved.
"""

from repro.service.client import (
    CircuitOpenError,
    RemoteRunner,
    RetryPolicy,
    ServiceClient,
    ServiceError,
    ServiceUnavailableError,
)
from repro.service.daemon import DEFAULT_DATA_DIR, LayoutService
from repro.service.documents import (
    DEFAULT_PRIORITY,
    PRIORITY_CLASSES,
    config_from_dict,
    config_to_dict,
    expand_submission,
    job_from_document,
    job_to_document,
    sweep_from_document,
)
from repro.service.http import (
    LayoutHTTPServer,
    TERMINAL_EVENT_KINDS,
    make_server,
    serve_in_thread,
)
from repro.service.queue import (
    JOB_STATES,
    JobQueue,
    JobRecord,
    TERMINAL_STATES,
)
from repro.service.scheduler import (
    EventBus,
    LayoutScheduler,
    QueueSaturated,
    ServiceDraining,
    Subscription,
)

__all__ = [
    "CircuitOpenError",
    "DEFAULT_DATA_DIR",
    "DEFAULT_PRIORITY",
    "EventBus",
    "JOB_STATES",
    "JobQueue",
    "JobRecord",
    "LayoutHTTPServer",
    "LayoutScheduler",
    "LayoutService",
    "PRIORITY_CLASSES",
    "QueueSaturated",
    "RemoteRunner",
    "RetryPolicy",
    "ServiceClient",
    "ServiceDraining",
    "ServiceError",
    "ServiceUnavailableError",
    "Subscription",
    "TERMINAL_EVENT_KINDS",
    "TERMINAL_STATES",
    "config_from_dict",
    "config_to_dict",
    "expand_submission",
    "job_from_document",
    "job_to_document",
    "make_server",
    "serve_in_thread",
    "sweep_from_document",
]
