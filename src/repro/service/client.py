"""Python client of the layout service (stdlib ``urllib`` only).

:class:`ServiceClient` is the low-level HTTP wrapper — submit documents,
poll status, stream Server-Sent Events, fetch layouts.

Resilience (PR 6): every JSON request runs under a :class:`RetryPolicy`
(exponential backoff with deterministic jitter) because the API is safe
to retry — submission is content-hash idempotent, so re-POSTing a job
the server already admitted merely *attaches* to it.  ``429``/``503``
responses and unreachable-server errors are transient
(:class:`ServiceUnavailableError`, honouring ``Retry-After``); other
4xx/5xx fail immediately.  Repeated *network* failures trip a circuit
breaker that fails calls fast (:class:`CircuitOpenError`) until a probe
succeeds, and a caller-supplied deadline caps the whole retry dance and
is propagated to the server as ``X-Deadline-S``.  Dropped SSE streams
reconnect and resume from the last seen ``seq``.

:class:`RemoteRunner` adapts a client to the
:class:`~repro.runner.pool.BatchRunner` interface the experiment harnesses
consume (``run(jobs) -> List[JobOutcome]``), so ``rfic-layout table1
--service http://host:port`` regenerates the paper's table against a
remote daemon exactly the way ``--workers/--cache-dir`` runs it against a
local pool: submissions dedup against the service's queue, results come
back from its content-addressed cache.
"""

from __future__ import annotations

import http.client
import json
import random
import time
import urllib.error
import urllib.parse
import urllib.request
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence

from repro.errors import ReproError
from repro.obs.trace import TRACE_HEADER
from repro.runner.jobs import LayoutJob
from repro.runner.pool import JobOutcome
from repro.service.documents import job_to_document
from repro.service.queue import TERMINAL_STATES

#: SSE kinds after which the stream will never carry another event for
#: the job (mirrors the server's stream-ending set).
_STREAM_END_KINDS = ("done", "failed", "timeout", "cancelled", "shutdown")


class ServiceError(ReproError):
    """The service rejected a request or is unreachable."""


class ServiceUnavailableError(ServiceError):
    """A *transient* refusal: 429/503, or the server is unreachable.

    Retrying is appropriate; ``retry_after`` carries the server's hint
    (seconds) when it sent one, and ``network`` distinguishes a dead
    server (feeds the circuit breaker) from a live-but-saturated one
    (does not — a full queue is not an outage).
    """

    def __init__(
        self, message: str, retry_after: Optional[float] = None, network: bool = False
    ):
        super().__init__(message)
        self.retry_after = retry_after
        self.network = network


class CircuitOpenError(ServiceError):
    """Failing fast: the circuit breaker is open after repeated failures."""


@dataclass
class RetryPolicy:
    """Exponential backoff with jitter for idempotent requests."""

    attempts: int = 4  #: total tries (1 = no retry)
    base_delay: float = 0.2
    max_delay: float = 5.0
    jitter: float = 0.5  #: fraction of the delay randomised away

    def delay(self, attempt: int, rng: Optional[random.Random] = None) -> float:
        """Backoff before retry number ``attempt`` (1-based)."""
        raw = min(self.max_delay, self.base_delay * (2 ** (attempt - 1)))
        if self.jitter <= 0:
            return raw
        spread = (rng or random).uniform(-self.jitter, self.jitter)
        return max(0.0, raw * (1.0 + spread))


class _CircuitBreaker:
    """Classic closed → open → half-open breaker over network failures."""

    def __init__(self, threshold: int = 5, reset_timeout: float = 10.0) -> None:
        self.threshold = max(1, threshold)
        self.reset_timeout = reset_timeout
        self._failures = 0
        self._opened_at: Optional[float] = None

    @property
    def state(self) -> str:
        if self._opened_at is None:
            return "closed"
        if time.monotonic() - self._opened_at >= self.reset_timeout:
            return "half-open"
        return "open"

    def check(self) -> None:
        """Raise :class:`CircuitOpenError` unless a call may proceed.

        ``half-open`` lets exactly the caller through as the probe; its
        success closes the breaker, its failure re-opens the full window.
        """
        if self.state == "open":
            remaining = self.reset_timeout - (time.monotonic() - self._opened_at)
            raise CircuitOpenError(
                f"circuit breaker open after {self._failures} consecutive "
                f"failures; retry in {max(0.0, remaining):.1f}s"
            )

    def record_success(self) -> None:
        self._failures = 0
        self._opened_at = None

    def record_failure(self) -> None:
        self._failures += 1
        if self._failures >= self.threshold:
            self._opened_at = time.monotonic()


class ServiceClient:
    """Talk to a running ``rfic-layout serve`` daemon."""

    def __init__(
        self,
        base_url: str,
        timeout: float = 30.0,
        retry: Optional[RetryPolicy] = None,
        breaker_threshold: int = 5,
        breaker_reset: float = 10.0,
        retry_seed: Optional[int] = None,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retry = retry or RetryPolicy()
        self._breaker = _CircuitBreaker(breaker_threshold, breaker_reset)
        self._rng = random.Random(retry_seed)

    # ------------------------------------------------------------------ #
    # HTTP plumbing
    # ------------------------------------------------------------------ #

    @property
    def breaker_state(self) -> str:
        return self._breaker.state

    def _request(
        self,
        path: str,
        payload: Optional[dict] = None,
        timeout: Optional[float] = None,
        deadline_s: Optional[float] = None,
        headers: Optional[Dict[str, str]] = None,
    ):
        """One HTTP attempt (no retries — that is :meth:`_json`'s job)."""
        url = f"{self.base_url}{path}"
        data = None
        extra = headers
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        if deadline_s is not None:
            headers["X-Deadline-S"] = f"{deadline_s:.3f}"
        if extra:
            headers.update(extra)
        request = urllib.request.Request(url, data=data, headers=headers)
        try:
            return urllib.request.urlopen(request, timeout=timeout or self.timeout)
        except urllib.error.HTTPError as exc:
            detail = ""
            try:
                detail = json.loads(exc.read().decode("utf-8")).get("error", "")
            except Exception:  # noqa: BLE001 - best-effort error body
                pass
            message = f"{path}: HTTP {exc.code}" + (f" — {detail}" if detail else "")
            if exc.code in (429, 503):
                retry_after = None
                raw = exc.headers.get("Retry-After") if exc.headers else None
                if raw is not None:
                    try:
                        retry_after = float(raw)
                    except ValueError:
                        pass
                raise ServiceUnavailableError(message, retry_after=retry_after) from None
            raise ServiceError(message) from None
        except urllib.error.URLError as exc:
            raise ServiceUnavailableError(
                f"service unreachable at {url}: {exc.reason}", network=True
            ) from None
        except (http.client.HTTPException, ConnectionError, TimeoutError) as exc:
            # urllib wraps connect-phase errors in URLError but lets
            # response-phase deaths (RemoteDisconnected, resets) through raw.
            raise ServiceUnavailableError(
                f"connection to {url} dropped: {exc}", network=True
            ) from None

    def _json(
        self,
        path: str,
        payload: Optional[dict] = None,
        deadline: Optional[float] = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> dict:
        """A JSON request with retries, breaker, and deadline propagation.

        Every call through here is idempotent (submission dedups on the
        content hash), so transient failures are retried with backoff.
        ``deadline`` (seconds) caps the total time across all attempts
        and rides to the server as ``X-Deadline-S`` so it can refuse work
        whose requester has already given up.
        """
        cutoff = time.monotonic() + deadline if deadline is not None else None
        attempt = 0
        while True:
            attempt += 1
            remaining = None
            if cutoff is not None:
                remaining = cutoff - time.monotonic()
                if remaining <= 0:
                    raise ServiceError(
                        f"{path}: deadline of {deadline:.1f}s exhausted after "
                        f"{attempt - 1} attempt(s)"
                    )
            self._breaker.check()
            try:
                timeout = self.timeout
                if remaining is not None:
                    timeout = max(0.05, min(timeout, remaining))
                with self._request(
                    path, payload, timeout=timeout, deadline_s=remaining,
                    headers=headers,
                ) as response:
                    result = json.loads(response.read().decode("utf-8"))
            except (
                ServiceUnavailableError,
                ConnectionError,
                TimeoutError,
                http.client.HTTPException,
            ) as raised:
                # A response that dies mid-read is as transient as a
                # refused connection; normalise and retry either way.
                exc = (
                    raised
                    if isinstance(raised, ServiceUnavailableError)
                    else ServiceUnavailableError(
                        f"{path}: connection dropped mid-response: {raised}",
                        network=True,
                    )
                )
                if exc.network:
                    self._breaker.record_failure()
                if attempt >= self.retry.attempts:
                    raise exc from None
                delay = self.retry.delay(attempt, self._rng)
                if exc.retry_after is not None:
                    delay = max(delay, exc.retry_after)
                if cutoff is not None:
                    delay = min(delay, max(0.0, cutoff - time.monotonic()))
                time.sleep(delay)
                continue
            self._breaker.record_success()
            return result

    # ------------------------------------------------------------------ #
    # API surface
    # ------------------------------------------------------------------ #

    def ping(self) -> bool:
        try:
            self._json("/healthz")
            return True
        except ServiceError:
            return False

    def health(self) -> Dict[str, object]:
        return self._json("/healthz")

    def submit_document(
        self,
        document: Dict[str, object],
        priority: Optional[str] = None,
        client: Optional[str] = None,
        deadline: Optional[float] = None,
        trace_id: Optional[str] = None,
    ) -> Dict[str, object]:
        """POST one submission; returns the record (or ``{"jobs": [...]}``).

        ``trace_id`` rides the ``X-Trace-Id`` header so the server stitches
        this submission into a caller-chosen trace instead of minting one.
        """
        payload = dict(document)
        if priority is not None:
            payload["priority"] = priority
        if client is not None:
            payload["client"] = client
        headers = {TRACE_HEADER: trace_id} if trace_id else None
        return self._json("/jobs", payload, deadline=deadline, headers=headers)

    def submit_job(
        self,
        job: LayoutJob,
        priority: Optional[str] = None,
        client: Optional[str] = None,
        deadline: Optional[float] = None,
    ) -> Dict[str, object]:
        return self.submit_document(job_to_document(job), priority, client, deadline)

    def status(self, key: str) -> Dict[str, object]:
        return self._json(f"/jobs/{key}")

    def jobs_page(
        self, state: Optional[str] = None, limit: Optional[int] = None
    ) -> Dict[str, object]:
        """One ``GET /jobs`` page: ``{"jobs": [...], "total": n, ...}``.

        ``total`` counts every matching record, so ``total > len(jobs)``
        means the listing was truncated to the newest ``limit`` records.
        """
        params = {}
        if state is not None:
            params["state"] = state
        if limit is not None:
            params["limit"] = str(limit)
        path = "/jobs"
        if params:
            path += "?" + urllib.parse.urlencode(params)
        return self._json(path)

    def jobs(
        self, state: Optional[str] = None, limit: Optional[int] = None
    ) -> List[Dict[str, object]]:
        return self.jobs_page(state, limit)["jobs"]

    def stats(self) -> Dict[str, object]:
        return self._json("/stats")

    def slo(self) -> Dict[str, object]:
        """The rolling-window objective verdicts (``GET /slo``)."""
        return self._json("/slo")

    def metrics_text(self) -> str:
        """Raw ``GET /metrics`` Prometheus text exposition."""
        with self._request("/metrics") as response:
            return response.read().decode("utf-8")

    def trace(self, key: str) -> Dict[str, object]:
        """The job's span tree (``GET /jobs/{hash}/trace``)."""
        return self._json(f"/jobs/{key}/trace")

    def layout_document(self, key: str) -> Dict[str, object]:
        return self._json(f"/jobs/{key}/layout.json")

    def layout_svg(self, key: str) -> str:
        with self._request(f"/jobs/{key}/layout.svg") as response:
            return response.read().decode("utf-8")

    def iter_events(
        self, key: str, timeout: Optional[float] = None, reconnect: bool = True
    ) -> Iterator[Dict[str, object]]:
        """Yield the job's SSE events until its stream terminates.

        ``timeout`` is an *overall* deadline, not a per-read socket
        timeout: the server's keep-alive heartbeats would otherwise reset
        a socket timeout forever.  The deadline is checked on every
        received line (heartbeats included, which arrive at least every
        few seconds), so it fires promptly even while the job idles.

        A dropped connection (daemon restarted, proxy hiccup) is
        **reconnected** up to the retry budget, resuming with
        ``?after=<last seen seq>`` so already-replayed history is
        skipped.  Only the history replay is cursor-filtered — the server
        never filters live events, because seq restarts each daemon
        epoch.  Terminal events (and the drain broadcast ``shutdown``)
        end iteration.
        """
        deadline = time.monotonic() + timeout if timeout is not None else None
        last_seq = 0
        failures = 0
        while True:
            path = f"/jobs/{key}/events"
            if last_seq > 0:
                path += f"?after={last_seq}"
            try:
                with self._request(path, timeout=self.timeout) as stream:
                    for raw in stream:
                        if deadline is not None and time.monotonic() > deadline:
                            raise ServiceError(
                                f"timed out after {timeout:.1f}s streaming events "
                                f"for job {key[:12]}"
                            )
                        line = raw.decode("utf-8").strip()
                        if not line.startswith("data:"):
                            continue
                        event = json.loads(line[len("data:") :].strip())
                        failures = 0  # the stream is demonstrably alive
                        if int(event.get("seq", 0)) > 0:
                            last_seq = int(event["seq"])
                        yield event
                        if event.get("kind") in _STREAM_END_KINDS:
                            return
                # Server closed the stream without a terminal event (it is
                # shutting down, or history was evicted mid-stream).
                raise ServiceUnavailableError(
                    f"event stream for job {key[:12]} ended without a "
                    f"terminal event",
                    network=True,
                )
            except (
                ServiceUnavailableError,
                ConnectionError,
                TimeoutError,
                http.client.HTTPException,
            ) as exc:
                failures += 1
                if not reconnect or failures >= self.retry.attempts:
                    if isinstance(exc, ServiceUnavailableError):
                        raise
                    raise ServiceError(
                        f"event stream for job {key[:12]} stalled: {exc}"
                    ) from None
                delay = self.retry.delay(failures, self._rng)
                if deadline is not None:
                    if time.monotonic() + delay > deadline:
                        raise ServiceError(
                            f"timed out after {timeout:.1f}s streaming events for "
                            f"job {key[:12]}"
                        ) from None
                time.sleep(delay)

    def wait(
        self, key: str, timeout: Optional[float] = None, poll: float = 0.25
    ) -> Dict[str, object]:
        """Poll until the job reaches a terminal state; return its record."""
        deadline = time.monotonic() + timeout if timeout is not None else None
        while True:
            record = self.status(key)
            if record["state"] in TERMINAL_STATES:
                return record
            if deadline is not None and time.monotonic() > deadline:
                raise ServiceError(
                    f"timed out after {timeout:.1f}s waiting for job {key[:12]} "
                    f"(state: {record['state']})"
                )
            time.sleep(poll)


class RemoteRunner:
    """BatchRunner-shaped adapter over a :class:`ServiceClient`.

    ``run`` submits every job, waits for settlement, then materialises
    :class:`JobOutcome` objects whose ``layout_doc`` is fetched from the
    service — ``outcome.flow_result()`` works exactly as with a local
    runner (metrics and DRC are recomputed from the layout).

    Submissions inherit the client's retry/backoff/breaker behaviour;
    ``job_timeout`` doubles as the submission deadline propagated to the
    server, so a saturated daemon either admits the batch within the
    budget or the run fails with the server's 429 explanation.
    """

    def __init__(
        self,
        service: "ServiceClient | str",
        client: str = "remote-runner",
        priority: Optional[str] = None,
        job_timeout: Optional[float] = None,
    ) -> None:
        self.client = (
            service if isinstance(service, ServiceClient) else ServiceClient(service)
        )
        self.client_name = client
        self.priority = priority
        self.job_timeout = job_timeout

    @property
    def workers(self) -> str:
        return f"service:{self.client.base_url}"

    def run(self, jobs: Sequence[LayoutJob], stop_when=None) -> List[JobOutcome]:
        """Submit a batch to the service and wait for every outcome.

        ``stop_when`` is accepted for interface compatibility but ignored:
        cancellation is the daemon's call, not the remote client's.
        """
        submissions = []
        for job in jobs:
            response = self.client.submit_job(
                job,
                priority=self.priority,
                client=self.client_name,
                deadline=self.job_timeout,
            )
            submissions.append((response["key"], response.get("disposition", "")))
        outcomes = []
        for job, (key, disposition) in zip(jobs, submissions):
            record = self.client.wait(key, timeout=self.job_timeout)
            outcomes.append(self._outcome(job, key, record, disposition))
        return outcomes

    def run_one(self, job: LayoutJob) -> JobOutcome:
        return self.run([job])[0]

    def _outcome(
        self,
        job: LayoutJob,
        key: str,
        record: Dict[str, object],
        disposition: str = "",
    ) -> JobOutcome:
        state = record["state"]
        summary = record.get("summary") or {}
        if state == "done":
            # "cached" when either the service short-circuited this
            # submission (disposition) or the original run itself was a
            # pool-level cache hit (summary["served"]).
            cached = (
                disposition in ("cached", "done")
                or summary.get("served") == "cache"
            )
            layout_doc = self.client.layout_document(key)
            return JobOutcome(
                job=job,
                status="cached" if cached else "completed",
                summary=dict(summary),
                runtime=float(record.get("runtime") or 0.0),
                layout_doc=layout_doc,
            )
        status = state if state in ("failed", "timeout", "cancelled") else "failed"
        return JobOutcome(
            job=job,
            status=status,
            runtime=float(record.get("runtime") or 0.0),
            error=record.get("error") or f"remote job settled as {state!r}",
        )

    def cache_stats(self) -> Dict[str, object]:
        """The remote cache's hit/miss counters (from ``GET /stats``)."""
        return dict(self.client.stats().get("cache", {}))
