"""Python client of the layout service (stdlib ``urllib`` only).

:class:`ServiceClient` is the low-level HTTP wrapper — submit documents,
poll status, stream Server-Sent Events, fetch layouts.

:class:`RemoteRunner` adapts a client to the
:class:`~repro.runner.pool.BatchRunner` interface the experiment harnesses
consume (``run(jobs) -> List[JobOutcome]``), so ``rfic-layout table1
--service http://host:port`` regenerates the paper's table against a
remote daemon exactly the way ``--workers/--cache-dir`` runs it against a
local pool: submissions dedup against the service's queue, results come
back from its content-addressed cache.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Dict, Iterator, List, Optional, Sequence

from repro.errors import ReproError
from repro.runner.jobs import LayoutJob
from repro.runner.pool import JobOutcome
from repro.service.documents import job_to_document
from repro.service.queue import TERMINAL_STATES


class ServiceError(ReproError):
    """The service rejected a request or is unreachable."""


class ServiceClient:
    """Talk to a running ``rfic-layout serve`` daemon."""

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------------ #
    # HTTP plumbing
    # ------------------------------------------------------------------ #

    def _request(
        self, path: str, payload: Optional[dict] = None, timeout: Optional[float] = None
    ):
        url = f"{self.base_url}{path}"
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(url, data=data, headers=headers)
        try:
            return urllib.request.urlopen(request, timeout=timeout or self.timeout)
        except urllib.error.HTTPError as exc:
            detail = ""
            try:
                detail = json.loads(exc.read().decode("utf-8")).get("error", "")
            except Exception:  # noqa: BLE001 - best-effort error body
                pass
            raise ServiceError(
                f"{path}: HTTP {exc.code}" + (f" — {detail}" if detail else "")
            ) from None
        except urllib.error.URLError as exc:
            raise ServiceError(f"service unreachable at {url}: {exc.reason}") from None

    def _json(self, path: str, payload: Optional[dict] = None) -> dict:
        with self._request(path, payload) as response:
            return json.loads(response.read().decode("utf-8"))

    # ------------------------------------------------------------------ #
    # API surface
    # ------------------------------------------------------------------ #

    def ping(self) -> bool:
        try:
            return bool(self._json("/healthz").get("ok"))
        except ServiceError:
            return False

    def submit_document(
        self,
        document: Dict[str, object],
        priority: Optional[str] = None,
        client: Optional[str] = None,
    ) -> Dict[str, object]:
        """POST one submission; returns the record (or ``{"jobs": [...]}``)."""
        payload = dict(document)
        if priority is not None:
            payload["priority"] = priority
        if client is not None:
            payload["client"] = client
        return self._json("/jobs", payload)

    def submit_job(
        self,
        job: LayoutJob,
        priority: Optional[str] = None,
        client: Optional[str] = None,
    ) -> Dict[str, object]:
        return self.submit_document(job_to_document(job), priority, client)

    def status(self, key: str) -> Dict[str, object]:
        return self._json(f"/jobs/{key}")

    def jobs(self) -> List[Dict[str, object]]:
        return self._json("/jobs")["jobs"]

    def stats(self) -> Dict[str, object]:
        return self._json("/stats")

    def layout_document(self, key: str) -> Dict[str, object]:
        return self._json(f"/jobs/{key}/layout.json")

    def layout_svg(self, key: str) -> str:
        with self._request(f"/jobs/{key}/layout.svg") as response:
            return response.read().decode("utf-8")

    def iter_events(
        self, key: str, timeout: Optional[float] = None
    ) -> Iterator[Dict[str, object]]:
        """Yield the job's SSE events until its stream terminates.

        ``timeout`` is an *overall* deadline, not a per-read socket
        timeout: the server's keep-alive heartbeats would otherwise reset
        a socket timeout forever.  The deadline is checked on every
        received line (heartbeats included, which arrive at least every
        few seconds), so it fires promptly even while the job idles.
        """
        deadline = time.monotonic() + timeout if timeout is not None else None
        # The socket timeout only guards against a fully stalled server (the
        # heartbeats normally keep reads alive); the overall deadline is
        # enforced per received line.
        with self._request(f"/jobs/{key}/events", timeout=self.timeout) as stream:
            try:
                for raw in stream:
                    if deadline is not None and time.monotonic() > deadline:
                        raise ServiceError(
                            f"timed out after {timeout:.1f}s streaming events for "
                            f"job {key[:12]}"
                        )
                    line = raw.decode("utf-8").strip()
                    if line.startswith("data:"):
                        yield json.loads(line[len("data:") :].strip())
            except TimeoutError:
                raise ServiceError(
                    f"event stream for job {key[:12]} stalled (no data for "
                    f"{self.timeout:.0f}s)"
                ) from None

    def wait(
        self, key: str, timeout: Optional[float] = None, poll: float = 0.25
    ) -> Dict[str, object]:
        """Poll until the job reaches a terminal state; return its record."""
        deadline = time.monotonic() + timeout if timeout is not None else None
        while True:
            record = self.status(key)
            if record["state"] in TERMINAL_STATES:
                return record
            if deadline is not None and time.monotonic() > deadline:
                raise ServiceError(
                    f"timed out after {timeout:.1f}s waiting for job {key[:12]} "
                    f"(state: {record['state']})"
                )
            time.sleep(poll)


class RemoteRunner:
    """BatchRunner-shaped adapter over a :class:`ServiceClient`.

    ``run`` submits every job, waits for settlement, then materialises
    :class:`JobOutcome` objects whose ``layout_doc`` is fetched from the
    service — ``outcome.flow_result()`` works exactly as with a local
    runner (metrics and DRC are recomputed from the layout).
    """

    def __init__(
        self,
        service: "ServiceClient | str",
        client: str = "remote-runner",
        priority: Optional[str] = None,
        job_timeout: Optional[float] = None,
    ) -> None:
        self.client = (
            service if isinstance(service, ServiceClient) else ServiceClient(service)
        )
        self.client_name = client
        self.priority = priority
        self.job_timeout = job_timeout

    @property
    def workers(self) -> str:
        return f"service:{self.client.base_url}"

    def run(self, jobs: Sequence[LayoutJob], stop_when=None) -> List[JobOutcome]:
        """Submit a batch to the service and wait for every outcome.

        ``stop_when`` is accepted for interface compatibility but ignored:
        cancellation is the daemon's call, not the remote client's.
        """
        submissions = []
        for job in jobs:
            response = self.client.submit_job(
                job, priority=self.priority, client=self.client_name
            )
            submissions.append((response["key"], response.get("disposition", "")))
        outcomes = []
        for job, (key, disposition) in zip(jobs, submissions):
            record = self.client.wait(key, timeout=self.job_timeout)
            outcomes.append(self._outcome(job, key, record, disposition))
        return outcomes

    def run_one(self, job: LayoutJob) -> JobOutcome:
        return self.run([job])[0]

    def _outcome(
        self,
        job: LayoutJob,
        key: str,
        record: Dict[str, object],
        disposition: str = "",
    ) -> JobOutcome:
        state = record["state"]
        summary = record.get("summary") or {}
        if state == "done":
            # "cached" when either the service short-circuited this
            # submission (disposition) or the original run itself was a
            # pool-level cache hit (summary["served"]).
            cached = (
                disposition in ("cached", "done")
                or summary.get("served") == "cache"
            )
            layout_doc = self.client.layout_document(key)
            return JobOutcome(
                job=job,
                status="cached" if cached else "completed",
                summary=dict(summary),
                runtime=float(record.get("runtime") or 0.0),
                layout_doc=layout_doc,
            )
        status = state if state in ("failed", "timeout", "cancelled") else "failed"
        return JobOutcome(
            job=job,
            status=status,
            runtime=float(record.get("runtime") or 0.0),
            error=record.get("error") or f"remote job settled as {state!r}",
        )

    def cache_stats(self) -> Dict[str, object]:
        """The remote cache's hit/miss counters (from ``GET /stats``)."""
        return dict(self.client.stats().get("cache", {}))
