"""Rolling-window SLO evaluation over the metrics registry.

The registry (PR 8) records *totals since boot*; an objective is a claim
about the *recent past* — "99% of admissions succeeded over the last
five minutes".  This module bridges the two with the textbook
cumulative-counter technique: periodically snapshot the monotonic totals
(:class:`SLOPoint`), keep a bounded window of those snapshots, and
evaluate objectives on the *delta* between the window's oldest retained
point and the live totals.

Three objectives, all derived from counters the scheduler already
maintains:

availability
    ``good / (good + bad)`` over the window, where good is admitted
    submissions and bad is 429-class rejections + sheds.  No traffic in
    the window counts as meeting the objective (an idle service is not
    failing anyone).
error-budget burn rate
    ``bad_fraction / (1 - objective)`` — the standard multiplier: 1.0
    burns the budget exactly at the sustainable rate, 10.0 exhausts a
    monthly budget in ~3 days.  Zero when the window saw no traffic.
latency
    Windowed p95 from *histogram bucket deltas* (subtracting two
    cumulative snapshots yields the histogram of just the window), with
    :func:`~repro.obs.metrics.histogram_quantile` bounds.  Bucket
    resolution means p95 is an interval, not a number: the objective is
    only *violated* when the interval's lower bound already exceeds the
    target — a target falling inside the p95 bucket gets the benefit of
    the doubt rather than a flapping alarm.

Time comes from :data:`repro.obs.trace.CLOCK`, so tests install a fake
clock and pin the burn-rate arithmetic exactly.  The monitor itself owns
no thread; the scheduler runs the sampling loop, and only when an
objective is actually configured (:attr:`SLOConfig.configured`) — the
whole subsystem is off-cost otherwise.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.obs.metrics import histogram_quantile
from repro.obs.trace import CLOCK

__all__ = ["SLOConfig", "SLOMonitor", "SLOPoint"]


@dataclass(frozen=True)
class SLOConfig:
    """Objectives for the daemon; all optional, all off by default."""

    #: Target fraction of admissions that must succeed (e.g. ``0.99``).
    availability_objective: Optional[float] = None
    #: Target upper bound for windowed p95 settle latency, seconds.
    latency_p95_target_s: Optional[float] = None
    #: Rolling-window width the objectives are evaluated over.
    window_s: float = 300.0
    #: How often the scheduler's sampler thread records a point.
    sample_interval_s: float = 5.0

    def __post_init__(self) -> None:
        if self.availability_objective is not None and not (
            0.0 < self.availability_objective < 1.0
        ):
            raise ConfigurationError(
                "availability objective must be in (0, 1), got "
                f"{self.availability_objective}"
            )
        if (
            self.latency_p95_target_s is not None
            and self.latency_p95_target_s <= 0
        ):
            raise ConfigurationError("latency p95 target must be positive")
        if self.window_s <= 0 or self.sample_interval_s <= 0:
            raise ConfigurationError("SLO window and interval must be positive")
        if self.sample_interval_s > self.window_s:
            raise ConfigurationError(
                "sample interval must not exceed the SLO window"
            )

    @property
    def configured(self) -> bool:
        return (
            self.availability_objective is not None
            or self.latency_p95_target_s is not None
        )


@dataclass(frozen=True)
class SLOPoint:
    """One snapshot of the monotonic totals the objectives read."""

    at: float
    good_total: float
    bad_total: float
    #: Cumulative ``[le, count]`` pairs from the latency histogram
    #: snapshot (final entry is ``+Inf``); empty when no histogram.
    latency_buckets: Tuple[Tuple[float, float], ...]
    latency_count: int

    @staticmethod
    def capture(
        good_total: float,
        bad_total: float,
        latency_buckets: Sequence[Sequence[float]] = (),
        latency_count: int = 0,
    ) -> "SLOPoint":
        return SLOPoint(
            at=CLOCK.time(),
            good_total=float(good_total),
            bad_total=float(bad_total),
            latency_buckets=tuple(
                (float(le), float(count)) for le, count in latency_buckets
            ),
            latency_count=int(latency_count),
        )


class SLOMonitor:
    """Window of :class:`SLOPoint` samples plus the objective math.

    :meth:`record` stores a point (the scheduler's sampler loop);
    :meth:`evaluate` compares live totals against the window baseline
    without storing anything, so every ``metrics_snapshot()`` gets a
    fresh verdict regardless of the sampling cadence.
    """

    def __init__(self, config: SLOConfig) -> None:
        self.config = config
        self._lock = threading.Lock()
        self._points: Deque[SLOPoint] = deque()

    # -- sampling ------------------------------------------------------ #

    def record(self, point: SLOPoint) -> None:
        with self._lock:
            self._points.append(point)
            self._prune(point.at)

    def _prune(self, now: float) -> None:
        # Keep everything inside the window plus ONE older point: that
        # straggler is the baseline that makes the delta span the full
        # window instead of shrinking to whatever happens to be retained.
        horizon = now - self.config.window_s
        while len(self._points) >= 2 and self._points[1].at <= horizon:
            self._points.popleft()

    def _baseline(self, point: SLOPoint) -> SLOPoint:
        with self._lock:
            self._prune(point.at)
            if not self._points:
                # Nothing recorded yet (evaluate before the first sample
                # tick): the point is its own baseline — zero deltas,
                # objectives trivially met.
                return point
            return self._points[0]

    # -- evaluation ---------------------------------------------------- #

    def evaluate(self, point: SLOPoint) -> Dict[str, object]:
        """Objective verdicts for the window ending at ``point``."""
        base = self._baseline(point)
        doc: Dict[str, object] = {
            "configured": True,
            "window_s": self.config.window_s,
            "window_span_s": round(max(0.0, point.at - base.at), 3),
        }
        overall_ok = True
        objective = self.config.availability_objective
        if objective is not None:
            good = max(0.0, point.good_total - base.good_total)
            bad = max(0.0, point.bad_total - base.bad_total)
            total = good + bad
            if total > 0:
                ratio = good / total
                burn = (bad / total) / (1.0 - objective)
            else:
                ratio = 1.0
                burn = 0.0
            ok = ratio >= objective
            overall_ok = overall_ok and ok
            doc["availability"] = {
                "objective": objective,
                "ratio": round(ratio, 6),
                "good": good,
                "bad": bad,
                "burn_rate": round(burn, 6),
                "ok": ok,
            }
        target = self.config.latency_p95_target_s
        if target is not None:
            delta_count = max(0, point.latency_count - base.latency_count)
            bounds = _window_p95(base, point, delta_count)
            # Violated only when the whole p95 bucket sits past the
            # target; an interval straddling the target is inconclusive
            # and must not flap the alarm.
            ok = bounds is None or bounds[0] < target
            overall_ok = overall_ok and ok
            doc["latency"] = {
                "target_p95_s": target,
                "count": delta_count,
                "p95_bounds_s": list(bounds) if bounds else None,
                "ok": ok,
            }
        doc["ok"] = overall_ok
        return doc


def _window_p95(
    base: SLOPoint, point: SLOPoint, delta_count: int
) -> Optional[Tuple[float, float]]:
    """p95 bounds of the observations that landed inside the window."""
    if delta_count <= 0 or not point.latency_buckets:
        return None
    base_by_le = {le: count for le, count in base.latency_buckets}
    delta: List[List[float]] = [
        [le, count - base_by_le.get(le, 0.0)]
        for le, count in point.latency_buckets
    ]
    return histogram_quantile(delta, delta_count, 0.95)
