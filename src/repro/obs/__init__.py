"""Dependency-free observability: metrics registry, tracing, JSON logging.

The package deliberately avoids any third-party dependency and any
background thread.  Metrics are plain locked numbers, spans are
monotonic-clock pairs, and the logger writes one JSON object per line.
Everything is off by default: a process that never scrapes ``/metrics``
or configures the logger pays only a handful of dict updates per job.
"""

from repro.obs.metrics import (  # noqa: F401
    DEFAULT_LATENCY_BUCKETS,
    MetricsRegistry,
    histogram_quantile,
    parse_prometheus,
    render_prometheus,
)
from repro.obs.trace import (  # noqa: F401
    CLOCK,
    TRACE_HEADER,
    JobTrace,
    Span,
    TraceStore,
    mint_trace_id,
)
from repro.obs.logging import LOG, JsonLogger  # noqa: F401
