"""In-process metrics registry with Prometheus text exposition.

Three metric kinds — counters, gauges, and fixed-bucket histograms —
share a single registry-wide lock, so any individual update is atomic
*and* a :meth:`MetricsRegistry.snapshot` observes a mutually coherent
point in time across every family.  That coherence is what lets
``/stats`` and ``/metrics`` be derived from the same snapshot and never
disagree mid-scrape.

The exposition side (:func:`render_prometheus`) emits text format 0.0.4
(``# HELP``/``# TYPE`` comments, cumulative ``_bucket{le=...}`` series
ending at ``+Inf``).  :func:`parse_prometheus` is the strict inverse
used by the load harness and CI to assert the output is parse-clean.
"""

from __future__ import annotations

import math
import re
import threading
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "histogram_quantile",
    "parse_prometheus",
    "render_prometheus",
]

# Latency buckets spanning sub-millisecond admission work up to the
# two-minute job-timeout ceiling.  The bucket layout is part of the
# snapshot schema (see ROADMAP "Observability"): changing it invalidates
# cross-run histogram diffs, so extend it only by appending.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25,
    0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0,
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

LabelSet = Tuple[Tuple[str, str], ...]


def _label_key(labels: Optional[Dict[str, str]]) -> LabelSet:
    if not labels:
        return ()
    for name in labels:
        if not _LABEL_RE.match(name):
            raise ValueError(f"invalid label name: {name!r}")
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """Monotonic counter bound to one label set of a family."""

    __slots__ = ("_lock", "_value")

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    """Settable instantaneous value bound to one label set."""

    __slots__ = ("_lock", "_value")

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Fixed-bucket cumulative histogram bound to one label set."""

    __slots__ = ("_lock", "_bounds", "_counts", "_sum", "_count")

    def __init__(self, lock: threading.Lock, bounds: Sequence[float]) -> None:
        ordered = tuple(float(b) for b in bounds)
        if list(ordered) != sorted(set(ordered)):
            raise ValueError("histogram bounds must be strictly increasing")
        self._lock = lock
        self._bounds = ordered
        self._counts = [0] * (len(ordered) + 1)  # final slot is +Inf
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            slot = len(self._bounds)
            for i, bound in enumerate(self._bounds):
                if value <= bound:
                    slot = i
                    break
            self._counts[slot] += 1
            self._sum += value
            self._count += 1

    @property
    def bounds(self) -> Tuple[float, ...]:
        return self._bounds

    def snapshot(self) -> Dict[str, object]:
        """Cumulative ``[le, count]`` pairs plus sum/count, atomically."""
        with self._lock:
            cumulative: List[List[float]] = []
            running = 0
            for bound, count in zip(self._bounds, self._counts):
                running += count
                cumulative.append([bound, running])
            running += self._counts[-1]
            cumulative.append([math.inf, running])
            return {"buckets": cumulative, "sum": self._sum, "count": self._count}


class _Family:
    __slots__ = ("name", "kind", "help", "bounds", "children")

    def __init__(self, name: str, kind: str, help_text: str,
                 bounds: Optional[Sequence[float]] = None) -> None:
        self.name = name
        self.kind = kind
        self.help = help_text
        self.bounds = tuple(bounds) if bounds is not None else None
        self.children: Dict[LabelSet, object] = {}


class MetricsRegistry:
    """Registry of metric families sharing one lock.

    ``counter``/``gauge``/``histogram`` are get-or-create: calling them
    twice with the same name (and labels) returns the same instance, so
    call sites never need to coordinate registration order.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: Dict[str, _Family] = {}

    # -- registration -------------------------------------------------- #

    def _family(self, name: str, kind: str, help_text: str,
                bounds: Optional[Sequence[float]] = None) -> _Family:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name: {name!r}")
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = _Family(name, kind, help_text, bounds)
                self._families[name] = family
            elif family.kind != kind:
                raise ValueError(
                    f"metric {name!r} already registered as {family.kind}"
                )
            return family

    def counter(self, name: str, help_text: str = "",
                labels: Optional[Dict[str, str]] = None) -> Counter:
        family = self._family(name, "counter", help_text)
        key = _label_key(labels)
        with self._lock:
            child = family.children.get(key)
            if child is None:
                child = Counter(self._lock)
                family.children[key] = child
            return child  # type: ignore[return-value]

    def gauge(self, name: str, help_text: str = "",
              labels: Optional[Dict[str, str]] = None) -> Gauge:
        family = self._family(name, "gauge", help_text)
        key = _label_key(labels)
        with self._lock:
            child = family.children.get(key)
            if child is None:
                child = Gauge(self._lock)
                family.children[key] = child
            return child  # type: ignore[return-value]

    def histogram(self, name: str, help_text: str = "",
                  buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
                  labels: Optional[Dict[str, str]] = None) -> Histogram:
        family = self._family(name, "histogram", help_text, buckets)
        if family.bounds != tuple(float(b) for b in buckets):
            raise ValueError(
                f"histogram {name!r} already registered with different buckets"
            )
        key = _label_key(labels)
        with self._lock:
            child = family.children.get(key)
            if child is None:
                child = Histogram(self._lock, buckets)
                family.children[key] = child
            return child  # type: ignore[return-value]

    # -- snapshot ------------------------------------------------------ #

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """One coherent point-in-time view of every family.

        Holding the registry lock while copying means no update can land
        between two families — the returned dict is internally consistent.
        """
        with self._lock:
            out: Dict[str, Dict[str, object]] = {}
            for name, family in sorted(self._families.items()):
                samples: List[Dict[str, object]] = []
                for key, child in sorted(family.children.items()):
                    labels = {k: v for k, v in key}
                    if family.kind == "histogram":
                        hist = child  # type: ignore[assignment]
                        # Inline the Histogram.snapshot body: the shared
                        # lock is not re-entrant.
                        cumulative: List[List[float]] = []
                        running = 0
                        for bound, count in zip(hist._bounds, hist._counts):
                            running += count
                            cumulative.append([bound, running])
                        running += hist._counts[-1]
                        cumulative.append([math.inf, running])
                        samples.append({
                            "labels": labels,
                            "buckets": cumulative,
                            "sum": hist._sum,
                            "count": hist._count,
                        })
                    else:
                        samples.append({
                            "labels": labels,
                            "value": child._value,  # type: ignore[union-attr]
                        })
                out[name] = {
                    "kind": family.kind,
                    "help": family.help,
                    "samples": samples,
                }
            return out


# ---------------------------------------------------------------------- #
# Prometheus text exposition (format 0.0.4)
# ---------------------------------------------------------------------- #

def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace("\"", "\\\"").replace("\n", "\\n")
    )


def _format_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _format_labels(labels: Dict[str, str],
                   extra: Optional[Tuple[str, str]] = None) -> str:
    parts = [
        f'{k}="{_escape_label_value(v)}"' for k, v in sorted(labels.items())
    ]
    if extra is not None:
        parts.append(f'{extra[0]}="{_escape_label_value(extra[1])}"')
    if not parts:
        return ""
    return "{" + ",".join(parts) + "}"


def render_prometheus(snapshot: Dict[str, Dict[str, object]]) -> str:
    """Render a registry snapshot as Prometheus text format 0.0.4."""
    lines: List[str] = []
    for name, family in snapshot.items():
        kind = str(family["kind"])
        help_text = str(family.get("help", ""))
        if help_text:
            lines.append(f"# HELP {name} {_escape_help(help_text)}")
        lines.append(f"# TYPE {name} {kind}")
        for sample in family["samples"]:  # type: ignore[union-attr]
            labels: Dict[str, str] = dict(sample.get("labels", {}))
            if kind == "histogram":
                for bound, count in sample["buckets"]:
                    le = _format_value(float(bound))
                    label_str = _format_labels(labels, ("le", le))
                    lines.append(f"{name}_bucket{label_str} {int(count)}")
                label_str = _format_labels(labels)
                lines.append(
                    f"{name}_sum{label_str} "
                    f"{_format_value(float(sample['sum']))}"
                )
                lines.append(f"{name}_count{label_str} {int(sample['count'])}")
            else:
                label_str = _format_labels(labels)
                lines.append(
                    f"{name}{label_str} "
                    f"{_format_value(float(sample['value']))}"
                )
    return "\n".join(lines) + "\n"


_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^\s]+)"
    r"(?:\s+(?P<ts>-?\d+))?$"
)
_LABEL_PAIR_RE = re.compile(
    r'\s*(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)\s*=\s*"(?P<value>(?:[^"\\]|\\.)*)"\s*(?:,|$)'
)


def _parse_number(token: str) -> float:
    if token == "+Inf":
        return math.inf
    if token == "-Inf":
        return -math.inf
    if token == "NaN":
        return math.nan
    return float(token)


def parse_prometheus(text: str) -> Dict[str, Dict[str, object]]:
    """Strictly parse Prometheus text exposition.

    Returns ``{family: {"kind", "samples": [{"name", "labels", "value"}]}}``
    where sample names keep their ``_bucket``/``_sum``/``_count`` suffixes.
    Raises :class:`ValueError` on any malformed line — the harness uses
    this to assert a scrape is parse-clean.
    """
    families: Dict[str, Dict[str, object]] = {}
    types: Dict[str, str] = {}
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.rstrip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                # Other comments are permitted by the format.
                if len(parts) >= 2 and parts[1] in ("HELP", "TYPE"):
                    raise ValueError(f"line {lineno}: malformed {parts[1]}")
                continue
            if parts[1] == "TYPE":
                if len(parts) < 4 or parts[3] not in (
                    "counter", "gauge", "histogram", "summary", "untyped"
                ):
                    raise ValueError(f"line {lineno}: malformed TYPE: {raw!r}")
                types[parts[2]] = parts[3]
                families.setdefault(
                    parts[2], {"kind": parts[3], "samples": []}
                )
            continue
        match = _SAMPLE_RE.match(line)
        if not match:
            raise ValueError(f"line {lineno}: malformed sample: {raw!r}")
        sample_name = match.group("name")
        labels: Dict[str, str] = {}
        label_blob = match.group("labels")
        if label_blob:
            consumed = 0
            for pair in _LABEL_PAIR_RE.finditer(label_blob):
                labels[pair.group("name")] = (
                    pair.group("value")
                    .replace('\\"', '"')
                    .replace("\\n", "\n")
                    .replace("\\\\", "\\")
                )
                consumed = pair.end()
            if consumed < len(label_blob.rstrip()):
                raise ValueError(f"line {lineno}: malformed labels: {raw!r}")
        try:
            value = _parse_number(match.group("value"))
        except ValueError:
            raise ValueError(f"line {lineno}: bad value: {raw!r}") from None
        family_name = sample_name
        for suffix in ("_bucket", "_sum", "_count"):
            base = sample_name[: -len(suffix)] if sample_name.endswith(suffix) else None
            if base and types.get(base) == "histogram":
                family_name = base
                break
        family = families.setdefault(
            family_name, {"kind": types.get(family_name, "untyped"), "samples": []}
        )
        family["samples"].append(  # type: ignore[union-attr]
            {"name": sample_name, "labels": labels, "value": value}
        )
    return families


def histogram_quantile(
    buckets: Iterable[Sequence[float]], count: int, q: float
) -> Optional[Tuple[float, float]]:
    """Bucket bounds ``(lower, upper)`` containing the q-quantile.

    ``buckets`` is the cumulative ``[le, count]`` list from a histogram
    snapshot.  Returns ``None`` for an empty histogram.  The upper bound
    of the final bucket is ``inf`` — callers comparing client-observed
    percentiles should treat that as "no upper constraint".
    """
    if count <= 0:
        return None
    if not 0.0 <= q <= 1.0:
        raise ValueError("quantile must be within [0, 1]")
    rank = q * count
    lower = 0.0
    for bound, cumulative in buckets:
        if cumulative >= rank and cumulative > 0:
            return (lower, float(bound))
        lower = float(bound)
    return (lower, math.inf)
