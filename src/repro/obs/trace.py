"""Request tracing: trace IDs, span trees, and an injectable clock.

A trace ID is minted at admission (or accepted from an ``X-Trace-Id``
header) and rides the journal record, every SSE event, and the pickled
job across the fork boundary.  Spans are monotonic-clock pairs — a wall
start stamp for display plus a ``perf_counter`` delta for duration — so
recording one costs two clock reads and a dict append; no threads, no
sampling machinery.

Tests make span timings deterministic through :data:`CLOCK`, the same
module-global injection-point pattern as ``repro.faults.FAULTS``:
``CLOCK.install(wall=..., monotonic=...)`` swaps both clock sources,
``CLOCK.clear()`` restores the real ones.
"""

from __future__ import annotations

import threading
import time
import uuid
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

__all__ = [
    "CLOCK",
    "TRACE_HEADER",
    "JobTrace",
    "Span",
    "TraceClock",
    "TraceStore",
    "mint_trace_id",
]

TRACE_HEADER = "X-Trace-Id"


class TraceClock:
    """Injectable pair of clock sources (wall + monotonic).

    Mirrors the ``repro.faults.FAULTS`` pattern: a module global that is
    inert by default and swapped wholesale in tests.  ``install`` is not
    meant for production use — real deployments always run on the real
    clocks.
    """

    def __init__(self) -> None:
        self._wall: Optional[Callable[[], float]] = None
        self._monotonic: Optional[Callable[[], float]] = None

    def install(self, wall: Optional[Callable[[], float]] = None,
                monotonic: Optional[Callable[[], float]] = None) -> None:
        self._wall = wall
        self._monotonic = monotonic

    def clear(self) -> None:
        self._wall = None
        self._monotonic = None

    @property
    def installed(self) -> bool:
        return self._wall is not None or self._monotonic is not None

    def time(self) -> float:
        if self._wall is not None:
            return self._wall()
        return time.time()

    def perf(self) -> float:
        if self._monotonic is not None:
            return self._monotonic()
        return time.perf_counter()


CLOCK = TraceClock()


def mint_trace_id() -> str:
    """16 hex chars — short enough for log lines, unique enough per run."""
    return uuid.uuid4().hex[:16]


@dataclass
class Span:
    """One timed stage of a job's lifecycle."""

    name: str
    start_unix: float
    duration_s: float
    parent: str = ""
    detail: str = ""
    truncated: bool = False

    def to_dict(self) -> Dict[str, object]:
        doc: Dict[str, object] = {
            "name": self.name,
            "start_unix": round(self.start_unix, 6),
            "duration_s": round(self.duration_s, 6),
        }
        if self.parent:
            doc["parent"] = self.parent
        if self.detail:
            doc["detail"] = self.detail
        if self.truncated:
            doc["truncated"] = True
        return doc


@dataclass
class JobTrace:
    """Span tree accumulated for one job key."""

    key: str
    trace_id: str
    label: str = ""
    spans: List[Span] = field(default_factory=list)
    settled: bool = False


class TraceStore:
    """Bounded in-memory map of job key -> span tree.

    ``begin`` is idempotent so replayed or re-dispatched jobs keep their
    accumulated spans.  Settled traces beyond ``limit`` are evicted
    oldest-first; live (unsettled) traces are never dropped.
    """

    def __init__(self, limit: int = 2048) -> None:
        self._limit = max(1, int(limit))
        self._lock = threading.Lock()
        self._traces: "OrderedDict[str, JobTrace]" = OrderedDict()

    def begin(self, key: str, trace_id: str, label: str = "") -> JobTrace:
        with self._lock:
            trace = self._traces.get(key)
            if trace is None:
                trace = JobTrace(key=key, trace_id=trace_id, label=label)
                self._traces[key] = trace
            else:
                if trace_id:
                    trace.trace_id = trace_id
                if label and not trace.label:
                    trace.label = label
                # A job re-entering the pipeline (resubmitted after a
                # failure, or requeued) accumulates into the same tree.
                trace.settled = False
            return trace

    def span(self, key: str, name: str, start_unix: float, duration_s: float,
             parent: str = "", detail: str = "", truncated: bool = False) -> None:
        with self._lock:
            trace = self._traces.get(key)
            if trace is None:
                return
            trace.spans.append(Span(
                name=name,
                start_unix=float(start_unix),
                duration_s=max(0.0, float(duration_s)),
                parent=parent,
                detail=detail,
                truncated=truncated,
            ))

    def get(self, key: str) -> Optional[JobTrace]:
        with self._lock:
            return self._traces.get(key)

    def settle(self, key: str) -> None:
        with self._lock:
            trace = self._traces.get(key)
            if trace is not None:
                trace.settled = True
            if len(self._traces) > self._limit:
                for stale_key in [
                    k for k, t in self._traces.items() if t.settled
                ]:
                    if len(self._traces) <= self._limit:
                        break
                    del self._traces[stale_key]

    def __len__(self) -> int:
        with self._lock:
            return len(self._traces)
