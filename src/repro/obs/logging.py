"""Structured JSON-lines logging for the service tier.

One module-global :data:`LOG` instance, disabled until something calls
:meth:`JsonLogger.configure`.  When disabled, :meth:`JsonLogger.log` is
a single attribute check — the daemon/scheduler/pool call sites cost
nothing in library use or tests that never turn logging on.

Every line is one JSON object carrying at minimum ``ts``, ``level``,
``event``, plus ``trace``/``key`` when the call site has them; the job
key is shortened to the same 12-char prefix the CLI prints.
"""

from __future__ import annotations

import json
import sys
import threading
import time
from typing import IO, Optional

__all__ = ["LOG", "JsonLogger", "KEY_PREFIX_LEN"]

KEY_PREFIX_LEN = 12


class JsonLogger:
    """Thread-safe JSON-lines logger writing to a stream and/or a file."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._stream: Optional[IO[str]] = None
        self._file: Optional[IO[str]] = None
        self.enabled = False

    def configure(self, stream: Optional[IO[str]] = None,
                  path: Optional[str] = None) -> None:
        """Enable logging to ``stream`` (default stderr) and/or ``path``."""
        with self._lock:
            if self._file is not None:
                try:
                    self._file.close()
                except OSError:
                    pass
                self._file = None
            self._stream = stream if stream is not None else sys.stderr
            if path:
                self._file = open(path, "a", encoding="utf-8")
            self.enabled = True

    def disable(self) -> None:
        with self._lock:
            if self._file is not None:
                try:
                    self._file.close()
                except OSError:
                    pass
                self._file = None
            self._stream = None
            self.enabled = False

    def log(self, event: str, level: str = "info", trace: str = "",
            key: str = "", **fields: object) -> None:
        if not self.enabled:
            return
        record = {"ts": round(time.time(), 6), "level": level, "event": event}
        if trace:
            record["trace"] = trace
        if key:
            record["key"] = key[:KEY_PREFIX_LEN]
        for name, value in fields.items():
            if value is not None:
                record[name] = value
        line = json.dumps(record, separators=(",", ":"), default=str)
        with self._lock:
            if not self.enabled:
                return
            for sink in (self._stream, self._file):
                if sink is None:
                    continue
                try:
                    sink.write(line + "\n")
                    sink.flush()
                except (OSError, ValueError):
                    # A torn pipe or closed file must never take the
                    # service down; logging is best-effort.
                    pass


LOG = JsonLogger()
