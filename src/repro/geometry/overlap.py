"""Pairwise overlap and spacing analysis for collections of rectangles.

These helpers back the design-rule checker and the overlap-penalty terms of
the Phase-1 model: given a set of labelled rectangles they report which pairs
overlap, by how much, and whether the required spacing is met.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.geometry.point import GEOM_TOL
from repro.geometry.rect import Rect


@dataclass(frozen=True)
class OverlapReport:
    """Overlap between two labelled rectangles.

    Attributes
    ----------
    first, second:
        Labels of the two rectangles (e.g. device or segment identifiers).
    overlap_x, overlap_y:
        Overlap extents along x and y; both are positive for a real overlap.
    area:
        Overlap area (``overlap_x * overlap_y``).
    """

    first: str
    second: str
    overlap_x: float
    overlap_y: float

    @property
    def area(self) -> float:
        return self.overlap_x * self.overlap_y


def overlap_extents(a: Rect, b: Rect) -> Tuple[float, float]:
    """Return the (x, y) overlap extents of two rectangles (clipped at 0)."""
    overlap_x = min(a.xr, b.xr) - max(a.xl, b.xl)
    overlap_y = min(a.yu, b.yu) - max(a.yl, b.yl)
    return max(0.0, overlap_x), max(0.0, overlap_y)


def find_overlaps(
    rects: Dict[str, Rect],
    tolerance: float = GEOM_TOL,
    ignore_pairs: Iterable[Tuple[str, str]] = (),
) -> List[OverlapReport]:
    """Report every genuinely overlapping pair of labelled rectangles.

    ``ignore_pairs`` lists label pairs (in either order) that are allowed to
    overlap — e.g. a microstrip segment and the device pin it connects to.
    """
    ignored = {frozenset(pair) for pair in ignore_pairs}
    reports: List[OverlapReport] = []
    for (label_a, rect_a), (label_b, rect_b) in combinations(sorted(rects.items()), 2):
        if frozenset((label_a, label_b)) in ignored:
            continue
        overlap_x, overlap_y = overlap_extents(rect_a, rect_b)
        if overlap_x > tolerance and overlap_y > tolerance:
            reports.append(OverlapReport(label_a, label_b, overlap_x, overlap_y))
    return reports


def total_overlap_area(rects: Dict[str, Rect], tolerance: float = GEOM_TOL) -> float:
    """Sum of pairwise overlap areas — the quantity penalised in Phase 1."""
    return sum(report.area for report in find_overlaps(rects, tolerance))


def spacing_violations(
    rects: Dict[str, Rect],
    required_spacing: float,
    tolerance: float = GEOM_TOL,
    ignore_pairs: Iterable[Tuple[str, str]] = (),
) -> List[Tuple[str, str, float]]:
    """Return pairs of labelled rectangles closer than ``required_spacing``.

    The rectangles here are the raw outlines; the required spacing is the
    paper's ``2t`` coupling distance.  Each violation is reported as
    ``(label_a, label_b, actual_separation)``.
    """
    ignored = {frozenset(pair) for pair in ignore_pairs}
    violations: List[Tuple[str, str, float]] = []
    for (label_a, rect_a), (label_b, rect_b) in combinations(sorted(rects.items()), 2):
        if frozenset((label_a, label_b)) in ignored:
            continue
        separation = rect_a.separation(rect_b)
        if separation < required_spacing - tolerance:
            violations.append((label_a, label_b, separation))
    return violations


def all_inside(
    rects: Sequence[Rect], boundary: Rect, tolerance: float = GEOM_TOL
) -> bool:
    """True when every rectangle lies inside the boundary rectangle."""
    return all(boundary.contains_rect(rect, tolerance) for rect in rects)


def packing_density(rects: Sequence[Rect], boundary: Rect) -> float:
    """Fraction of the boundary area covered by the union-free sum of rects.

    Overlaps are not deduplicated; the value is intended as a coarse layout
    density indicator for reports, not an exact union area.
    """
    if boundary.area <= 0:
        return 0.0
    return sum(rect.area for rect in rects) / boundary.area
