"""Rectilinear (axis-aligned) microstrip segments.

A microstrip line is a chain of such segments joined at chain points
(Section 2.2 / Figure 2(b) of the paper).  Each segment is a straight
horizontal or vertical run with a physical width; its outline is therefore a
rectangle, which is what the spacing and planarity rules operate on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import GeometryError
from repro.geometry.point import GEOM_TOL, Point, collinear_axis
from repro.geometry.rect import Rect


@dataclass(frozen=True)
class Segment:
    """An axis-aligned segment with a physical width.

    Attributes
    ----------
    start, end:
        Centre-line end points.  They must share an x or a y coordinate.
    width:
        Physical microstrip width in micrometres (non-negative).
    """

    start: Point
    end: Point
    width: float = 0.0

    def __post_init__(self) -> None:
        if self.width < 0:
            raise GeometryError(f"segment width must be non-negative, got {self.width}")
        if collinear_axis(self.start, self.end) is None:
            raise GeometryError(
                f"segment must be axis-aligned: {self.start.as_tuple()} .. {self.end.as_tuple()}"
            )

    # -- orientation -----------------------------------------------------------

    @property
    def is_horizontal(self) -> bool:
        """True for horizontal (or degenerate zero-length) segments."""
        return abs(self.start.y - self.end.y) <= GEOM_TOL

    @property
    def is_vertical(self) -> bool:
        """True for vertical segments (degenerate segments report horizontal)."""
        return not self.is_horizontal and abs(self.start.x - self.end.x) <= GEOM_TOL

    @property
    def is_degenerate(self) -> bool:
        """True when start and end coincide."""
        return self.start.is_close(self.end)

    @property
    def direction(self) -> str:
        """One of ``"r"``, ``"l"``, ``"u"``, ``"d"`` or ``"."`` (degenerate).

        Matches the four direction variables of equation (1) in the paper.
        """
        if self.is_degenerate:
            return "."
        if self.is_horizontal:
            return "r" if self.end.x > self.start.x else "l"
        return "u" if self.end.y > self.start.y else "d"

    # -- metrics -----------------------------------------------------------------

    @property
    def length(self) -> float:
        """Centre-line length (equation (6) evaluated geometrically)."""
        return self.start.manhattan_distance(self.end)

    def outline(self) -> Rect:
        """Rectangle covering the segment metal, including its width."""
        half = self.width / 2.0
        return Rect(
            min(self.start.x, self.end.x) - half,
            min(self.start.y, self.end.y) - half,
            max(self.start.x, self.end.x) + half,
            max(self.start.y, self.end.y) + half,
        )

    def bounding_box(self, clearance: float) -> Rect:
        """Outline expanded by ``clearance`` on every side (Figure 2(a))."""
        return self.outline().expanded(clearance)

    # -- geometric queries -----------------------------------------------------

    def point_at(self, fraction: float) -> Point:
        """Return the centre-line point at a fractional position in [0, 1]."""
        if not 0.0 <= fraction <= 1.0:
            raise GeometryError(f"fraction must lie in [0, 1], got {fraction}")
        return Point(
            self.start.x + fraction * (self.end.x - self.start.x),
            self.start.y + fraction * (self.end.y - self.start.y),
        )

    def reversed(self) -> "Segment":
        """Return the segment traversed in the opposite direction."""
        return Segment(self.end, self.start, self.width)

    def crosses(self, other: "Segment", tolerance: float = GEOM_TOL) -> bool:
        """True when the two centre-lines properly intersect.

        Planarity of microstrip routing forbids any crossing between
        different microstrip lines.  Shared end points (as occur between two
        consecutive segments of the same line) are *not* counted as a
        crossing; interior intersections and partial collinear overlaps are.
        """
        if self.is_degenerate or other.is_degenerate:
            return False

        shared_endpoint = (
            self.start.is_close(other.start, tolerance)
            or self.start.is_close(other.end, tolerance)
            or self.end.is_close(other.start, tolerance)
            or self.end.is_close(other.end, tolerance)
        )

        if self.is_horizontal and other.is_horizontal:
            if abs(self.start.y - other.start.y) > tolerance:
                return False
            overlap = min(
                max(self.start.x, self.end.x), max(other.start.x, other.end.x)
            ) - max(min(self.start.x, self.end.x), min(other.start.x, other.end.x))
            return overlap > tolerance
        if self.is_vertical and other.is_vertical:
            if abs(self.start.x - other.start.x) > tolerance:
                return False
            overlap = min(
                max(self.start.y, self.end.y), max(other.start.y, other.end.y)
            ) - max(min(self.start.y, self.end.y), min(other.start.y, other.end.y))
            return overlap > tolerance

        horizontal, vertical = (self, other) if self.is_horizontal else (other, self)
        cross_x = vertical.start.x
        cross_y = horizontal.start.y
        x_lo = min(horizontal.start.x, horizontal.end.x)
        x_hi = max(horizontal.start.x, horizontal.end.x)
        y_lo = min(vertical.start.y, vertical.end.y)
        y_hi = max(vertical.start.y, vertical.end.y)
        inside_x = x_lo - tolerance <= cross_x <= x_hi + tolerance
        inside_y = y_lo - tolerance <= cross_y <= y_hi + tolerance
        if not (inside_x and inside_y):
            return False
        if shared_endpoint:
            # Intersection exactly at the shared chain point is a legal joint.
            joint = Point(cross_x, cross_y)
            endpoints = [self.start, self.end, other.start, other.end]
            return not any(joint.is_close(p, tolerance) for p in endpoints)
        return True

    def distance_to_point(self, point: Point) -> float:
        """Euclidean distance from the centre-line to a point."""
        x_lo = min(self.start.x, self.end.x)
        x_hi = max(self.start.x, self.end.x)
        y_lo = min(self.start.y, self.end.y)
        y_hi = max(self.start.y, self.end.y)
        dx = max(x_lo - point.x, 0.0, point.x - x_hi)
        dy = max(y_lo - point.y, 0.0, point.y - y_hi)
        return math.hypot(dx, dy)
