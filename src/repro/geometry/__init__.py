"""Planar geometry primitives used by the layout and routing code."""

from repro.geometry.point import GEOM_TOL, Point, collinear_axis, midpoint
from repro.geometry.rect import Rect
from repro.geometry.segment import Segment
from repro.geometry.path import ManhattanPath, serpentine_path
from repro.geometry.overlap import (
    OverlapReport,
    all_inside,
    find_overlaps,
    overlap_extents,
    packing_density,
    spacing_violations,
    total_overlap_area,
)

__all__ = [
    "GEOM_TOL",
    "Point",
    "midpoint",
    "collinear_axis",
    "Rect",
    "Segment",
    "ManhattanPath",
    "serpentine_path",
    "OverlapReport",
    "overlap_extents",
    "find_overlaps",
    "total_overlap_area",
    "spacing_violations",
    "all_inside",
    "packing_density",
]
