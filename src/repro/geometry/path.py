"""Manhattan paths: ordered chains of axis-aligned segments.

A :class:`ManhattanPath` is the geometric realisation of a routed microstrip:
the ordered list of chain-point coordinates.  It provides the quantities the
paper reasons about — geometric length, bend count, equivalent length with
the per-bend compensation ``δ`` (Section 2.2), and the smoothed (diagonal
shortcut) outline of Figure 3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Sequence, Tuple

from repro.errors import GeometryError
from repro.geometry.point import GEOM_TOL, Point, collinear_axis
from repro.geometry.rect import Rect
from repro.geometry.segment import Segment


@dataclass(frozen=True)
class ManhattanPath:
    """An ordered rectilinear path through chain points.

    Attributes
    ----------
    points:
        Chain-point coordinates in routing order.  Consecutive points must be
        axis-aligned (share an x or y coordinate).  At least two points are
        required.
    width:
        Microstrip width applied to every segment.
    """

    points: Tuple[Point, ...]
    width: float = 0.0

    def __init__(self, points: Iterable[Point], width: float = 0.0) -> None:
        pts = tuple(points)
        if len(pts) < 2:
            raise GeometryError("a path needs at least two points")
        if width < 0:
            raise GeometryError(f"path width must be non-negative, got {width}")
        for first, second in zip(pts, pts[1:]):
            if collinear_axis(first, second) is None:
                raise GeometryError(
                    "path points must be axis-aligned pairwise: "
                    f"{first.as_tuple()} .. {second.as_tuple()}"
                )
        object.__setattr__(self, "points", pts)
        object.__setattr__(self, "width", float(width))

    # -- segments ---------------------------------------------------------------

    def segments(self, drop_degenerate: bool = False) -> List[Segment]:
        """Return the path as consecutive :class:`Segment` objects.

        ``drop_degenerate`` removes zero-length segments, which occur when two
        chain points coincide (the paper's Phase 3 deletes such chain points).
        """
        segments = [
            Segment(a, b, self.width) for a, b in zip(self.points, self.points[1:])
        ]
        if drop_degenerate:
            segments = [s for s in segments if not s.is_degenerate]
        return segments

    @property
    def start(self) -> Point:
        return self.points[0]

    @property
    def end(self) -> Point:
        return self.points[-1]

    @property
    def num_chain_points(self) -> int:
        """Number of chain points, including the two end connections."""
        return len(self.points)

    # -- metrics ------------------------------------------------------------------

    @property
    def geometric_length(self) -> float:
        """Sum of segment centre-line lengths (equation (7))."""
        return sum(s.length for s in self.segments())

    @property
    def bend_count(self) -> int:
        """Number of direction changes along the path (equation (11)).

        Degenerate (zero-length) segments are skipped so that a coincident
        chain point does not spuriously hide or create a bend.
        """
        directions = [s.direction for s in self.segments(drop_degenerate=True)]
        bends = 0
        for previous, current in zip(directions, directions[1:]):
            if previous != current:
                bends += 1
        return bends

    def bend_points(self) -> List[Point]:
        """Return the chain points at which a real bend occurs."""
        bends = []
        segments = self.segments(drop_degenerate=True)
        for previous, current in zip(segments, segments[1:]):
            if previous.direction != current.direction:
                bends.append(previous.end)
        return bends

    def equivalent_length(self, delta: float) -> float:
        """Electrical (equivalent) length: geometric + ``delta`` per bend.

        Implements equation (12): after every 90° bend is smoothed into a
        diagonal shortcut, the propagation behaves like a straight line of
        length ``l_v + l_h + δ``; summing over the path gives
        ``l_geometric + n_bends * δ``.
        """
        return self.geometric_length + self.bend_count * delta

    def outline_rects(self, clearance: float = 0.0) -> List[Rect]:
        """Bounding rectangles of all segments, expanded by ``clearance``."""
        rects = []
        for segment in self.segments(drop_degenerate=True):
            rects.append(segment.bounding_box(clearance) if clearance else segment.outline())
        return rects

    def bounding_box(self, clearance: float = 0.0) -> Rect:
        """Overall bounding box of the path."""
        return Rect.bounding(self.outline_rects(clearance))

    # -- editing ------------------------------------------------------------------

    def simplified(self) -> "ManhattanPath":
        """Remove chain points that do not bend the path.

        Mirrors the chain-point deletion step of Phase 3: consecutive
        collinear segments are merged and coincident points are dropped.  End
        points are always preserved.
        """
        pts: List[Point] = [self.points[0]]
        for point in self.points[1:-1]:
            if point.is_close(pts[-1]):
                continue
            pts.append(point)
        if not self.points[-1].is_close(pts[-1]) or len(pts) == 1:
            pts.append(self.points[-1])

        if len(pts) <= 2:
            return ManhattanPath(pts if len(pts) == 2 else [pts[0], self.points[-1]], self.width)

        # Drop interior points where incoming and outgoing directions match.
        result: List[Point] = [pts[0]]
        for index in range(1, len(pts) - 1):
            before = result[-1]
            here = pts[index]
            after = pts[index + 1]
            axis_in = collinear_axis(before, here)
            axis_out = collinear_axis(here, after)
            if axis_in == axis_out:
                # Same axis: only keep the point if the path reverses on it.
                going_in = Segment(before, here).direction
                going_out = Segment(here, after).direction
                if going_in == going_out or going_in == "." or going_out == ".":
                    continue
            result.append(here)
        result.append(pts[-1])
        if len(result) < 2:
            result = [pts[0], pts[-1]]
        return ManhattanPath(result, self.width)

    def with_point_inserted(self, index: int, point: Point) -> "ManhattanPath":
        """Return a new path with ``point`` inserted before position ``index``."""
        if not 1 <= index <= len(self.points) - 1:
            raise GeometryError(
                f"insertion index {index} outside the interior of the path"
            )
        pts = list(self.points)
        pts.insert(index, point)
        return ManhattanPath(pts, self.width)

    def reversed(self) -> "ManhattanPath":
        """Return the path traversed end-to-start."""
        return ManhattanPath(tuple(reversed(self.points)), self.width)

    # -- smoothing -----------------------------------------------------------------

    def smoothed_vertices(self, cut: float) -> List[Point]:
        """Return the vertex list after replacing 90° corners by diagonals.

        Each bend corner is replaced by two vertices ``cut`` micrometres away
        from the corner along the incoming and outgoing segments (Figure 3).
        ``cut`` is clipped to half of the adjacent segment lengths so short
        segments are never inverted.
        """
        if cut < 0:
            raise GeometryError(f"cut must be non-negative, got {cut}")
        segments = self.segments(drop_degenerate=True)
        if not segments:
            return [self.start, self.end]
        vertices: List[Point] = [segments[0].start]
        for previous, current in zip(segments, segments[1:]):
            corner = previous.end
            if previous.direction == current.direction:
                vertices.append(corner)
                continue
            cut_in = min(cut, previous.length / 2.0)
            cut_out = min(cut, current.length / 2.0)
            before = _step_back(previous, cut_in)
            after = _step_forward(current, cut_out)
            vertices.append(before)
            vertices.append(after)
        vertices.append(segments[-1].end)
        return vertices


def _step_back(segment: Segment, distance: float) -> Point:
    """Point ``distance`` before the end of ``segment`` along its direction."""
    direction = segment.direction
    if direction == "r":
        return Point(segment.end.x - distance, segment.end.y)
    if direction == "l":
        return Point(segment.end.x + distance, segment.end.y)
    if direction == "u":
        return Point(segment.end.x, segment.end.y - distance)
    if direction == "d":
        return Point(segment.end.x, segment.end.y + distance)
    return segment.end


def _step_forward(segment: Segment, distance: float) -> Point:
    """Point ``distance`` after the start of ``segment`` along its direction."""
    direction = segment.direction
    if direction == "r":
        return Point(segment.start.x + distance, segment.start.y)
    if direction == "l":
        return Point(segment.start.x - distance, segment.start.y)
    if direction == "u":
        return Point(segment.start.x, segment.start.y + distance)
    if direction == "d":
        return Point(segment.start.x, segment.start.y - distance)
    return segment.start


def serpentine_path(
    start: Point,
    end: Point,
    target_length: float,
    width: float = 0.0,
    amplitude: float = 20.0,
    max_lobes: int = 64,
) -> ManhattanPath:
    """Build a rectilinear path of (approximately) a required length.

    This helper is used by the *manual-like* baseline router: when the direct
    Manhattan connection is shorter than the required microstrip length, the
    extra length is absorbed in serpentine detours of the given ``amplitude``.
    Every added lobe contributes bends — which is precisely the behaviour the
    paper criticises in conventional length-matching routing.

    The resulting path length is within one ``amplitude`` of ``target_length``
    whenever the target exceeds the direct Manhattan distance.
    """
    direct = start.manhattan_distance(end)
    if target_length < direct - GEOM_TOL:
        raise GeometryError(
            f"target length {target_length} is shorter than the direct distance {direct}"
        )
    if amplitude <= 0:
        raise GeometryError(f"amplitude must be positive, got {amplitude}")

    points: List[Point] = [start]
    extra = target_length - direct

    # Route the x span first, weaving vertically to burn the extra length.
    dx = end.x - start.x
    dy = end.y - start.y
    x_direction = 1.0 if dx >= 0 else -1.0
    y_direction = 1.0 if dy >= 0 else -1.0

    lobes_needed = 0
    if extra > GEOM_TOL:
        lobes_needed = min(max_lobes, max(1, int(round(extra / (2.0 * amplitude)))))
        lobe_depth = extra / (2.0 * lobes_needed)
    else:
        lobe_depth = 0.0

    span_x = abs(dx)
    span_y = abs(dy)
    if lobes_needed and span_x > GEOM_TOL:
        # Weave vertically while progressing along x.  Each lobe climbs away
        # from the base line and back, adding 2 * lobe_depth of length.
        half_pitch = span_x / (2.0 * lobes_needed)
        cursor = Point(start.x, start.y)
        for _ in range(lobes_needed):
            cursor = Point(cursor.x + x_direction * half_pitch, cursor.y)
            points.append(cursor)
            cursor = Point(cursor.x, start.y + y_direction * lobe_depth)
            points.append(cursor)
            cursor = Point(cursor.x + x_direction * half_pitch, cursor.y)
            points.append(cursor)
            cursor = Point(cursor.x, start.y)
            points.append(cursor)
        points.append(Point(end.x, start.y))
        points.append(Point(end.x, end.y))
    elif lobes_needed and span_y > GEOM_TOL:
        # Purely vertical connection: weave horizontally instead.
        half_pitch = span_y / (2.0 * lobes_needed)
        cursor = Point(start.x, start.y)
        for _ in range(lobes_needed):
            cursor = Point(cursor.x, cursor.y + y_direction * half_pitch)
            points.append(cursor)
            cursor = Point(start.x + lobe_depth, cursor.y)
            points.append(cursor)
            cursor = Point(cursor.x, cursor.y + y_direction * half_pitch)
            points.append(cursor)
            cursor = Point(start.x, cursor.y)
            points.append(cursor)
        points.append(Point(start.x, end.y))
        points.append(Point(end.x, end.y))
    elif lobes_needed:
        # Coincident end points that still need length: a rectangular loop
        # is not representable without self-overlap, so stack the detour as
        # a single out-and-back spur of the required half length.
        spur = extra / 2.0
        points.append(Point(start.x + spur, start.y))
        points.append(Point(end.x, end.y))
    else:
        # No extra length needed: a plain L-shaped connection.
        points.append(Point(end.x, start.y))
        points.append(Point(end.x, end.y))

    deduplicated: List[Point] = [points[0]]
    for point in points[1:]:
        if not point.is_close(deduplicated[-1]):
            deduplicated.append(point)
    if len(deduplicated) == 1:
        deduplicated.append(end)
    return ManhattanPath(deduplicated, width)
