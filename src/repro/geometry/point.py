"""2-D points for layout geometry.

All coordinates are in micrometres (see :mod:`repro.units`).  Points are
immutable value objects; arithmetic returns new points.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Tuple

from repro.errors import GeometryError

#: Geometric comparison tolerance in micrometres.  Layout coordinates come
#: out of an LP solver in double precision; 1e-6 um (one picometre) is far
#: below any physically meaningful dimension but above solver round-off.
GEOM_TOL = 1.0e-6


@dataclass(frozen=True)
class Point:
    """An immutable point in the layout plane.

    Attributes
    ----------
    x, y:
        Coordinates in micrometres.
    """

    x: float
    y: float

    def __post_init__(self) -> None:
        if not (math.isfinite(self.x) and math.isfinite(self.y)):
            raise GeometryError(f"point coordinates must be finite, got ({self.x}, {self.y})")

    # -- arithmetic --------------------------------------------------------

    def translated(self, dx: float, dy: float) -> "Point":
        """Return the point shifted by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def __add__(self, other: "Point") -> "Point":
        return Point(self.x + other.x, self.y + other.y)

    def __sub__(self, other: "Point") -> "Point":
        return Point(self.x - other.x, self.y - other.y)

    def scaled(self, factor: float) -> "Point":
        """Return the point scaled about the origin."""
        return Point(self.x * factor, self.y * factor)

    # -- metrics -----------------------------------------------------------

    def manhattan_distance(self, other: "Point") -> float:
        """L1 distance to another point."""
        return abs(self.x - other.x) + abs(self.y - other.y)

    def euclidean_distance(self, other: "Point") -> float:
        """L2 distance to another point."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def is_close(self, other: "Point", tolerance: float = GEOM_TOL) -> bool:
        """True if both coordinates match within ``tolerance``."""
        return abs(self.x - other.x) <= tolerance and abs(self.y - other.y) <= tolerance

    # -- transforms --------------------------------------------------------

    def rotated(self, quarter_turns: int, about: "Point" | None = None) -> "Point":
        """Rotate by 90° * ``quarter_turns`` counter-clockwise about ``about``.

        Layout rotations are restricted to multiples of 90°, matching the
        device rotations used in Phase 3 of the paper.
        """
        about = about or Point(0.0, 0.0)
        turns = quarter_turns % 4
        dx, dy = self.x - about.x, self.y - about.y
        if turns == 0:
            rx, ry = dx, dy
        elif turns == 1:
            rx, ry = -dy, dx
        elif turns == 2:
            rx, ry = -dx, -dy
        else:
            rx, ry = dy, -dx
        return Point(about.x + rx, about.y + ry)

    def mirrored_x(self, axis_x: float = 0.0) -> "Point":
        """Mirror across the vertical line ``x = axis_x``."""
        return Point(2.0 * axis_x - self.x, self.y)

    def mirrored_y(self, axis_y: float = 0.0) -> "Point":
        """Mirror across the horizontal line ``y = axis_y``."""
        return Point(self.x, 2.0 * axis_y - self.y)

    # -- conversion ---------------------------------------------------------

    def as_tuple(self) -> Tuple[float, float]:
        """Return ``(x, y)``."""
        return (self.x, self.y)

    def __iter__(self) -> Iterator[float]:
        yield self.x
        yield self.y


def midpoint(a: Point, b: Point) -> Point:
    """Return the midpoint of two points."""
    return Point(0.5 * (a.x + b.x), 0.5 * (a.y + b.y))


def collinear_axis(a: Point, b: Point, tolerance: float = GEOM_TOL) -> str | None:
    """Classify the axis of the straight segment between two points.

    Returns ``"h"`` for horizontal, ``"v"`` for vertical, ``None`` when the
    points are neither axis-aligned nor coincident.
    Coincident points report ``"h"`` (a degenerate horizontal run), which is
    the convention used by the routing code for zero-length segments.
    """
    dx = abs(a.x - b.x)
    dy = abs(a.y - b.y)
    if dy <= tolerance:
        return "h"
    if dx <= tolerance:
        return "v"
    return None
