"""Axis-aligned rectangles and bounding boxes.

Rectangles model device outlines, microstrip segment outlines and the
expanded bounding boxes of Section 2.1 of the paper (outlines grown by the
ground-plane distance ``t`` on every side to encode the ``2t`` spacing rule).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Tuple

from repro.errors import GeometryError
from repro.geometry.point import GEOM_TOL, Point


@dataclass(frozen=True)
class Rect:
    """An immutable axis-aligned rectangle.

    Attributes
    ----------
    xl, yl:
        Lower-left corner (micrometres).
    xr, yu:
        Upper-right corner (micrometres).
    """

    xl: float
    yl: float
    xr: float
    yu: float

    def __post_init__(self) -> None:
        for value in (self.xl, self.yl, self.xr, self.yu):
            if not math.isfinite(value):
                raise GeometryError("rectangle coordinates must be finite")
        if self.xr < self.xl - GEOM_TOL or self.yu < self.yl - GEOM_TOL:
            raise GeometryError(
                f"degenerate rectangle: ({self.xl}, {self.yl}) .. ({self.xr}, {self.yu})"
            )

    # -- constructors --------------------------------------------------------

    @staticmethod
    def from_center(center: Point, width: float, height: float) -> "Rect":
        """Build a rectangle from its centre point and dimensions."""
        if width < 0 or height < 0:
            raise GeometryError(f"negative dimensions: {width} x {height}")
        half_w, half_h = width / 2.0, height / 2.0
        return Rect(center.x - half_w, center.y - half_h, center.x + half_w, center.y + half_h)

    @staticmethod
    def from_corners(a: Point, b: Point) -> "Rect":
        """Build a rectangle from two opposite corners in any order."""
        return Rect(min(a.x, b.x), min(a.y, b.y), max(a.x, b.x), max(a.y, b.y))

    @staticmethod
    def bounding(rects: Iterable["Rect"]) -> "Rect":
        """Return the bounding box of a non-empty collection of rectangles."""
        rects = list(rects)
        if not rects:
            raise GeometryError("bounding box of an empty collection is undefined")
        return Rect(
            min(r.xl for r in rects),
            min(r.yl for r in rects),
            max(r.xr for r in rects),
            max(r.yu for r in rects),
        )

    # -- basic properties ----------------------------------------------------

    @property
    def width(self) -> float:
        return self.xr - self.xl

    @property
    def height(self) -> float:
        return self.yu - self.yl

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def center(self) -> Point:
        return Point(0.5 * (self.xl + self.xr), 0.5 * (self.yl + self.yu))

    @property
    def lower_left(self) -> Point:
        return Point(self.xl, self.yl)

    @property
    def upper_right(self) -> Point:
        return Point(self.xr, self.yu)

    def corners(self) -> List[Point]:
        """Return the four corners counter-clockwise from the lower left."""
        return [
            Point(self.xl, self.yl),
            Point(self.xr, self.yl),
            Point(self.xr, self.yu),
            Point(self.xl, self.yu),
        ]

    def as_tuple(self) -> Tuple[float, float, float, float]:
        """Return ``(xl, yl, xr, yu)``."""
        return (self.xl, self.yl, self.xr, self.yu)

    # -- transformations -----------------------------------------------------

    def expanded(self, margin: float) -> "Rect":
        """Grow the rectangle by ``margin`` on every side.

        This implements the paper's bounding-box expansion (Figure 2(a)): a
        microstrip/device outline grown by the ground-plane distance ``t`` on
        each side turns the ``2t`` spacing rule into a plain non-overlap test.
        Negative margins shrink the rectangle but may not invert it.
        """
        rect = Rect.__new__(Rect)
        object.__setattr__(rect, "xl", self.xl - margin)
        object.__setattr__(rect, "yl", self.yl - margin)
        object.__setattr__(rect, "xr", self.xr + margin)
        object.__setattr__(rect, "yu", self.yu + margin)
        if rect.xr < rect.xl or rect.yu < rect.yl:
            raise GeometryError(
                f"shrinking by {margin} inverts rectangle {self.as_tuple()}"
            )
        return rect

    def translated(self, dx: float, dy: float) -> "Rect":
        """Return the rectangle shifted by ``(dx, dy)``."""
        return Rect(self.xl + dx, self.yl + dy, self.xr + dx, self.yu + dy)

    def rotated_about_center(self, quarter_turns: int) -> "Rect":
        """Rotate about the centre by a multiple of 90°.

        Odd quarter turns swap width and height, which is exactly how device
        rotation is modelled in Phase 3 of the paper.
        """
        if quarter_turns % 2 == 0:
            return self
        return Rect.from_center(self.center, self.height, self.width)

    # -- predicates ------------------------------------------------------------

    def contains_point(self, point: Point, tolerance: float = GEOM_TOL) -> bool:
        """True when the point lies inside or on the boundary."""
        return (
            self.xl - tolerance <= point.x <= self.xr + tolerance
            and self.yl - tolerance <= point.y <= self.yu + tolerance
        )

    def contains_rect(self, other: "Rect", tolerance: float = GEOM_TOL) -> bool:
        """True when ``other`` lies fully inside this rectangle."""
        return (
            other.xl >= self.xl - tolerance
            and other.yl >= self.yl - tolerance
            and other.xr <= self.xr + tolerance
            and other.yu <= self.yu + tolerance
        )

    def overlaps(self, other: "Rect", tolerance: float = GEOM_TOL) -> bool:
        """True when the two rectangles overlap with positive area.

        Touching edges (shared boundary, zero-area intersection) do not count
        as an overlap; the paper's constraint (16)-(20) likewise allows
        bounding boxes to abut.
        """
        return (
            self.xl < other.xr - tolerance
            and other.xl < self.xr - tolerance
            and self.yl < other.yu - tolerance
            and other.yl < self.yu - tolerance
        )

    def intersection(self, other: "Rect") -> "Rect | None":
        """Return the overlapping rectangle, or ``None`` when disjoint."""
        xl = max(self.xl, other.xl)
        yl = max(self.yl, other.yl)
        xr = min(self.xr, other.xr)
        yu = min(self.yu, other.yu)
        if xr < xl or yu < yl:
            return None
        return Rect(xl, yl, xr, yu)

    def overlap_area(self, other: "Rect") -> float:
        """Area of the intersection (0.0 when disjoint)."""
        common = self.intersection(other)
        return common.area if common is not None else 0.0

    def separation(self, other: "Rect") -> float:
        """Minimum axis-wise gap between two rectangles.

        Returns a negative value when the rectangles overlap (the magnitude
        is the smaller of the two overlap dimensions), zero when they touch,
        and the rectilinear gap otherwise.  This is the quantity checked by
        the spacing rule: ``separation >= required_spacing``.
        """
        gap_x = max(self.xl, other.xl) - min(self.xr, other.xr)
        gap_y = max(self.yl, other.yl) - min(self.yr_alias(), other.yr_alias())
        if gap_x >= 0 and gap_y >= 0:
            return math.hypot(gap_x, gap_y)
        if gap_x >= 0:
            return gap_x
        if gap_y >= 0:
            return gap_y
        return max(gap_x, gap_y)

    def yr_alias(self) -> float:
        """Alias for the top edge, used internally for symmetric formulas."""
        return self.yu

    def __contains__(self, point: Point) -> bool:
        return self.contains_point(point)
