"""Deterministic fault injection for chaos testing (``repro.faults``).

Production code is instrumented with **named fault points** — one-line
calls into the module-level :data:`FAULTS` injector at the places where
the real world fails: journal appends (ENOSPC mid-write), cache stores
(staging write / rename), worker execution (crash, hang, slow solve),
dispatcher loops.  With no plan installed every fault point is a
single attribute check, so the instrumentation is free in production.

A **fault plan** is a list of :class:`FaultSpec` entries.  Whether a
given call to a fault point fires is a pure function of

* the point's *call index* (how many times it has been hit so far),
* the spec's ``after`` / ``times`` window, and
* the spec's ``chance``, decided by a RNG seeded from
  ``(plan seed, point name, call index)``

— so a plan replays identically on every run: no wall clocks, no global
RNG state.  Call counters live in memory by default; with a
``state_dir`` they are backed by append-only files, which makes the
counting global across *forked worker processes* (the pool's one
process per job) and across daemon restarts — "crash the worker the
first three times this job runs, then let it succeed" works even though
each attempt is a fresh child process.

Actions
-------
``raise``
    Raise an exception at the fault point.  ``errno_name`` selects a
    real :class:`OSError` (``ENOSPC``, ``EIO``, ...) so the production
    error-containment paths are exercised exactly as a full disk would
    exercise them; without it a :class:`RuntimeError` is raised.
``crash``
    ``os._exit(exit_code)`` — a worker segfault / OOM-kill stand-in.
    Only ever use at fault points that run inside sacrificial worker
    processes.
``sleep``
    ``time.sleep(seconds)`` and continue — hangs and slow solves.
``custom``
    No built-in behaviour; the instrumented site interprets the spec
    (e.g. the journal's torn-append point writes half a line, the cache
    corruption point garbles the staged entry).

Instrumented points (the canonical registry)
--------------------------------------------
=========================  ====================================================
``journal.append``         :meth:`repro.service.queue.JobQueue._append` write
``journal.append.torn``    same site, *custom*: write half the line (a torn
                           append; ``action="crash"`` additionally kills the
                           process, the genuine mid-append death)
``journal.rotate``         :meth:`JobQueue.compact` after the staging snapshot
                           is written, before ``os.replace``
``cache.put.staging``      :meth:`ResultCache._write_entry` before the staged
                           documents are written
``cache.put.rename``       same method, before the atomic rename
``cache.put.corrupt``      *custom*: after staging is written — garble a
                           staged document so a corrupt entry lands on disk
``worker.run``             pool worker (child process *and* inline path)
                           just before ``job.run()``
``scheduler.dispatch``     top of each dispatcher-loop iteration (outside the
                           per-job error boundary — a firing ``raise`` kills
                           the dispatcher thread and must be survived by the
                           scheduler's supervision)
``checkpoint.write``       :meth:`ResultCache.write_checkpoint` before the
                           staged checkpoint is written (``raise`` is
                           contained as a write error; ``sleep`` holds the
                           worker at a phase boundary; ``crash`` dies before
                           the checkpoint lands)
``checkpoint.read.corrupt``  :meth:`ResultCache.read_checkpoint` — treat the
                           stored checkpoint as torn: discard it and fall
                           back to a cold solve
``cache.read.corrupt``     :meth:`ResultCache.peek_key` verify-on-read —
                           treat the entry's digests as mismatched, so it is
                           quarantined exactly as bit rot would be
``cache.scrub``            :meth:`ResultCache.scrub` once per visited entry
                           (a firing ``raise`` is contained and counted in
                           the scrub report's ``errors``)
=========================  ====================================================

Cross-process activation: export ``REPRO_FAULTS`` as the JSON produced by
:func:`env_payload` before spawning a daemon and the child process
installs the plan at import time.
"""

from __future__ import annotations

import errno as errno_module
import hashlib
import json
import os
import random
import threading
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Union

ENV_VAR = "REPRO_FAULTS"


@dataclass
class FaultSpec:
    """One armed fault: where it fires, when, and what it does."""

    point: str
    action: str = "raise"  #: raise | crash | sleep | custom
    times: int = 1  #: how many eligible call indices fire (0 = unlimited)
    after: int = 0  #: skip the first ``after`` calls to the point
    chance: float = 1.0  #: per-eligible-call probability (seeded, deterministic)
    errno_name: Optional[str] = None  #: ENOSPC / EIO / ... => OSError
    message: str = ""
    seconds: float = 0.0  #: sleep duration for ``action="sleep"``
    exit_code: int = 1  #: status for ``action="crash"``

    def matches(self, index: int) -> bool:
        """Whether the fault is eligible at 0-based call ``index``."""
        if index < self.after:
            return False
        if self.times > 0 and index >= self.after + self.times:
            return False
        return True

    def build_exception(self) -> BaseException:
        detail = self.message or f"injected fault at {self.point!r}"
        if self.errno_name is not None:
            code = getattr(errno_module, self.errno_name)
            return OSError(code, f"{os.strerror(code)} [{detail}]")
        return RuntimeError(detail)

    def to_dict(self) -> Dict[str, object]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FaultSpec":
        return cls(**dict(data))


class FaultInjector:
    """Registry + trigger logic behind the module-level :data:`FAULTS`.

    Thread-safe; fork-safe when a ``state_dir`` backs the call counters.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._specs: Dict[str, List[FaultSpec]] = {}
        self._calls: Dict[str, int] = {}
        self._fired: Dict[str, int] = {}
        self._seed = 0
        self._state_dir: Optional[Path] = None
        self._armed = False

    # ------------------------------------------------------------------ #
    # plan management
    # ------------------------------------------------------------------ #

    def install(
        self,
        faults: Iterable[Union[FaultSpec, Dict[str, object]]],
        seed: int = 0,
        state_dir: Optional[Union[str, Path]] = None,
    ) -> None:
        """Arm a plan (replacing any previous one)."""
        specs: Dict[str, List[FaultSpec]] = {}
        for fault in faults:
            spec = fault if isinstance(fault, FaultSpec) else FaultSpec.from_dict(fault)
            specs.setdefault(spec.point, []).append(spec)
        with self._lock:
            self._specs = specs
            self._calls = {}
            self._fired = {}
            self._seed = seed
            self._state_dir = Path(state_dir) if state_dir is not None else None
            if self._state_dir is not None:
                self._state_dir.mkdir(parents=True, exist_ok=True)
            self._armed = bool(specs)

    def clear(self) -> None:
        """Disarm everything (fault points become no-ops again)."""
        with self._lock:
            self._specs = {}
            self._calls = {}
            self._fired = {}
            self._state_dir = None
            self._armed = False

    @property
    def active(self) -> bool:
        return self._armed

    # ------------------------------------------------------------------ #
    # counters
    # ------------------------------------------------------------------ #

    def _state_file(self, point: str, kind: str) -> Path:
        safe = point.replace("/", "_")
        return self._state_dir / f"{safe}.{kind}"  # type: ignore[operator]

    def _next_index(self, point: str) -> int:
        """Claim the next 0-based call index for a point (global counter)."""
        if self._state_dir is not None:
            # One byte per call, O_APPEND: atomic across forked processes.
            fd = os.open(
                self._state_file(point, "calls"),
                os.O_WRONLY | os.O_CREAT | os.O_APPEND,
                0o644,
            )
            try:
                os.write(fd, b".")
                return os.fstat(fd).st_size - 1
            finally:
                os.close(fd)
        index = self._calls.get(point, 0)
        self._calls[point] = index + 1
        return index

    def _record_fired(self, point: str) -> None:
        self._fired[point] = self._fired.get(point, 0) + 1
        if self._state_dir is not None:
            fd = os.open(
                self._state_file(point, "fired"),
                os.O_WRONLY | os.O_CREAT | os.O_APPEND,
                0o644,
            )
            try:
                os.write(fd, b".")
            finally:
                os.close(fd)

    def calls(self, point: str) -> int:
        """How many times the point has been hit under the current plan."""
        with self._lock:
            if self._state_dir is not None:
                try:
                    return self._state_file(point, "calls").stat().st_size
                except OSError:
                    return 0
            return self._calls.get(point, 0)

    def fired(self, point: str) -> int:
        """How many times the point actually fired (cross-process aware)."""
        with self._lock:
            if self._state_dir is not None:
                try:
                    return self._state_file(point, "fired").stat().st_size
                except OSError:
                    return 0
            return self._fired.get(point, 0)

    # ------------------------------------------------------------------ #
    # trigger API (what the instrumented code calls)
    # ------------------------------------------------------------------ #

    def hit(self, point: str) -> Optional[FaultSpec]:
        """Consult the plan at a fault point; perform **no** action.

        Returns the matching spec when the fault fires (for sites that
        interpret ``custom`` actions themselves), else ``None``.
        """
        if not self._armed:
            return None
        with self._lock:
            specs = self._specs.get(point)
            if not specs:
                return None
            index = self._next_index(point)
            for spec in specs:
                if not spec.matches(index):
                    continue
                if spec.chance < 1.0:
                    # Seeded by (plan, point, index) through a stable hash
                    # (``hash()`` is salted per process): replays identically,
                    # in forked workers and spawned daemons too.
                    token = f"{self._seed}:{point}:{index}".encode("utf-8")
                    roll = random.Random(hashlib.sha256(token).digest()).random()
                    if roll >= spec.chance:
                        continue
                self._record_fired(point)
                return spec
            return None

    def act(self, point: str) -> None:
        """Consult the plan and *perform* the generic actions.

        ``raise`` raises, ``crash`` exits the process, ``sleep`` blocks
        then returns; ``custom`` specs are ignored here (their sites use
        :meth:`hit`).
        """
        spec = self.hit(point)
        if spec is None:
            return
        self.perform(spec)

    @staticmethod
    def perform(spec: FaultSpec) -> None:
        if spec.action == "raise":
            raise spec.build_exception()
        if spec.action == "crash":
            os._exit(spec.exit_code)
        if spec.action == "sleep":
            time.sleep(spec.seconds)


#: The process-wide injector every instrumented fault point consults.
FAULTS = FaultInjector()


def env_payload(
    faults: Iterable[Union[FaultSpec, Dict[str, object]]],
    seed: int = 0,
    state_dir: Optional[Union[str, Path]] = None,
) -> str:
    """The ``REPRO_FAULTS`` value arming a plan in a spawned process."""
    return json.dumps(
        {
            "seed": seed,
            "state_dir": str(state_dir) if state_dir is not None else None,
            "faults": [
                (fault.to_dict() if isinstance(fault, FaultSpec) else dict(fault))
                for fault in faults
            ],
        }
    )


def install_from_env(injector: FaultInjector = FAULTS) -> bool:
    """Arm the injector from ``REPRO_FAULTS`` (returns whether it did)."""
    raw = os.environ.get(ENV_VAR)
    if not raw:
        return False
    try:
        payload = json.loads(raw)
        injector.install(
            payload.get("faults", []),
            seed=int(payload.get("seed", 0)),
            state_dir=payload.get("state_dir"),
        )
    except (ValueError, TypeError, KeyError) as exc:
        raise RuntimeError(f"malformed {ENV_VAR}: {exc}") from None
    return True


install_from_env()
