"""repro.runner — parallel batch layout generation with result caching.

The runner turns single layout runs into reproducible *batches*: jobs with
canonical content hashes (:mod:`repro.runner.jobs`), a content-addressed
disk cache of results (:mod:`repro.runner.cache`), a crash-isolated
multiprocessing pool (:mod:`repro.runner.pool`), portfolio racing of
solver configurations (:mod:`repro.runner.portfolio`) and parameter-grid
scenario sweeps (:mod:`repro.runner.sweep`).  The ``rfic-layout batch``
CLI subcommand and the Table 1 / Figure 11 harnesses are built on it.

Batch example
-------------
    from repro.circuits import get_circuit
    from repro.core import PILPConfig
    from repro.runner import BatchRunner, LayoutJob

    config = PILPConfig.fast()
    jobs = [
        LayoutJob(flow="pilp", netlist=get_circuit(name).netlist, config=config)
        for name in ("lna94", "buffer60", "lna60")
    ]
    runner = BatchRunner(cache_dir=".rfic-cache", workers=3, job_timeout=600)
    outcomes = runner.run(jobs)          # parallel; instant on re-runs (cache)
    layouts = [o.flow_result().layout for o in outcomes if o.ok]

Invariants
----------
* The cache is **append-only** and **content-addressed**: an entry's key is
  the SHA-256 of the canonical job document (netlist document + flow +
  config + code-version salt), which fully determines the result.  Element
  list order stays in the hash because the flows are order-sensitive.
* Jobs are deterministic: every random choice (force-directed seed
  placement, generator jitter) is derived from seeds that participate in
  the hash.
"""

from repro.runner.jobs import (
    GeneratorSpec,
    JOB_FLOWS,
    LayoutJob,
    RUNNER_SCHEMA_VERSION,
    canonical_netlist_dict,
    code_version_salt,
)
from repro.runner.cache import CachedResult, CacheStats, ResultCache
from repro.runner.pool import (
    BatchRunner,
    JobOutcome,
    ProgressEvent,
    WorkerPool,
)
from repro.runner.portfolio import (
    PortfolioResult,
    PortfolioVariant,
    default_variants,
    run_portfolio,
    run_portfolio_batch,
)
from repro.runner.sweep import (
    SweepSpec,
    amplifier_spec_for,
    generate_sweep,
    scenario_name,
)

__all__ = [
    "LayoutJob",
    "GeneratorSpec",
    "JOB_FLOWS",
    "RUNNER_SCHEMA_VERSION",
    "canonical_netlist_dict",
    "code_version_salt",
    "ResultCache",
    "CachedResult",
    "CacheStats",
    "BatchRunner",
    "WorkerPool",
    "JobOutcome",
    "ProgressEvent",
    "PortfolioVariant",
    "PortfolioResult",
    "default_variants",
    "run_portfolio",
    "run_portfolio_batch",
    "SweepSpec",
    "amplifier_spec_for",
    "generate_sweep",
    "scenario_name",
]
