"""Scenario sweeps: mass-produce layout workloads from parameter grids.

The paper evaluates three fixed circuits; the runner opens the benchmark
suite up to *families* of circuits by driving
:func:`repro.circuits.generator.build_amplifier_circuit` over a grid of

* operating frequencies (changes every microstrip's electrical length),
* stage counts (changes netlist size and connectivity),
* area scale factors (changes congestion — the paper's "second area
  setting" stress test, generalised),
* RNG seeds (deterministic length jitter, giving many distinct instances
  per grid point).

Each grid point becomes one :class:`~repro.runner.jobs.LayoutJob`, so a
sweep plugs directly into the worker pool, the result cache and portfolio
racing.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence

from repro.circuit.netlist import LayoutArea
from repro.circuits.generator import AmplifierSpec, build_amplifier_circuit
from repro.core.config import PILPConfig
from repro.errors import ConfigurationError
from repro.runner.jobs import LayoutJob


def amplifier_spec_for(
    num_stages: int,
    frequency_ghz: float,
    area: LayoutArea,
    extra_branches: int = 1,
    seed: Optional[int] = None,
    name: Optional[str] = None,
) -> AmplifierSpec:
    """A consistent :class:`AmplifierSpec` for arbitrary sweep parameters.

    The published benchmark circuits pin their device / microstrip counts
    to the paper's numbers; sweep scenarios instead derive feasible counts
    from the stage count: the RF chain needs ``3*stages + 1`` devices and
    ``3*stages`` microstrips, and each extra bias branch adds two of each.
    """
    if num_stages < 1:
        raise ConfigurationError("num_stages must be >= 1")
    if extra_branches < 0:
        raise ConfigurationError("extra_branches must be >= 0")
    chain_devices = 3 * num_stages + 1
    chain_nets = 3 * num_stages
    return AmplifierSpec(
        name=name or scenario_name(num_stages, frequency_ghz, area, seed),
        num_stages=num_stages,
        operating_frequency_ghz=frequency_ghz,
        area=area,
        num_microstrips=chain_nets + 2 * extra_branches,
        num_devices=chain_devices + 2 * extra_branches,
        seed=seed,
    )


def scenario_name(
    num_stages: int,
    frequency_ghz: float,
    area: LayoutArea,
    seed: Optional[int] = None,
) -> str:
    """Canonical scenario label, e.g. ``amp2s_94g_620x430_s7``."""
    name = f"amp{num_stages}s_{frequency_ghz:g}g_{area.width:.0f}x{area.height:.0f}"
    return f"{name}_s{seed}" if seed is not None else name


@dataclass(frozen=True)
class SweepSpec:
    """A parameter grid over reconstructed amplifier workloads.

    The default base area allots one 310 µm column per stage at 430 µm
    height (the reduced benchmark circuits' density) before the per-point
    ``area_scales`` factor is applied.
    """

    frequencies_ghz: Sequence[float] = (60.0,)
    stage_counts: Sequence[int] = (2,)
    area_scales: Sequence[float] = (1.0,)
    seeds: Sequence[Optional[int]] = (None,)
    extra_branches: int = 1
    stage_width: float = 310.0
    base_height: float = 430.0

    def __post_init__(self) -> None:
        for attribute in ("frequencies_ghz", "stage_counts", "area_scales", "seeds"):
            if not list(getattr(self, attribute)):
                raise ConfigurationError(f"sweep {attribute} must not be empty")

    def __len__(self) -> int:
        return (
            len(list(self.frequencies_ghz))
            * len(list(self.stage_counts))
            * len(list(self.area_scales))
            * len(list(self.seeds))
        )

    def area_for(self, num_stages: int, scale: float) -> LayoutArea:
        return LayoutArea(
            round(self.stage_width * max(2, num_stages) * scale, 1),
            round(self.base_height * scale, 1),
        )

    def specs(self) -> Iterator[AmplifierSpec]:
        """Yield one amplifier specification per grid point."""
        grid = itertools.product(
            self.stage_counts, self.frequencies_ghz, self.area_scales, self.seeds
        )
        for num_stages, frequency, scale, seed in grid:
            yield amplifier_spec_for(
                num_stages=num_stages,
                frequency_ghz=frequency,
                area=self.area_for(num_stages, scale),
                extra_branches=self.extra_branches,
                seed=seed,
            )


def generate_sweep(
    spec: SweepSpec,
    config: Optional[PILPConfig] = None,
    flow: str = "pilp",
) -> List[LayoutJob]:
    """Materialise a sweep into runnable layout jobs.

    Netlists are built eagerly (generation is milliseconds; solving is
    what the pool parallelises) so a bad grid point fails at submission
    time, not inside a worker.
    """
    config = config or PILPConfig()
    jobs = []
    for amplifier in spec.specs():
        circuit = build_amplifier_circuit(amplifier)
        jobs.append(
            LayoutJob(
                flow=flow,
                netlist=circuit.netlist,
                config=config,
                label=f"{amplifier.name}:{flow}",
            )
        )
    return jobs
