"""Layout job specifications with canonical content hashes.

A :class:`LayoutJob` is the unit of work of the batch runner: a netlist (or
a recipe for generating one), a flow choice and a :class:`PILPConfig`.  Its
``content_hash`` is a SHA-256 over a *canonical* JSON form of the job:

* dictionary key order never matters (keys are sorted),
* a netlist that round-trips through the JSON loader hashes identically,
* the running code version participates as a salt, so stale cache entries
  from an older flow implementation are never served.

Device / microstrip **list order deliberately stays in the hash**: the flow
heuristics (force-directed seed placement, overlap relaxation) iterate
elements in list order, so two same-content netlists in different order can
legitimately produce different layouts — order is content here, and hashing
it away would serve one ordering's cached result for the other.

The hash therefore fully determines the job's output (all flows are
deterministic given their configuration — the force-directed seed placement
is seeded from ``PILPConfig.random_seed``, which is part of the hash), which
is what makes the content-addressed result cache correct.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field, replace
from typing import Dict, Optional, Tuple

from repro import __version__
from repro.errors import ConfigurationError
from repro.circuit.loader import netlist_to_dict
from repro.circuit.netlist import LayoutArea, Netlist
from repro.core.config import PILPConfig
from repro.core.result import FlowResult

#: Flows a job may request.
JOB_FLOWS = ("pilp", "exact", "manual")

#: Version of the canonical job document.  Bump when the canonical form (or
#: anything that invalidates previously cached results) changes.
RUNNER_SCHEMA_VERSION = 1


def code_version_salt() -> str:
    """Salt mixed into every job hash: package version + runner schema."""
    return f"{__version__}/runner-{RUNNER_SCHEMA_VERSION}"


def canonical_netlist_dict(netlist: Netlist) -> Dict[str, object]:
    """The JSON-able netlist document the content hash is computed over.

    JSON round-trips and dictionary key order do not change it.  Element
    *list* order is preserved on purpose: the flows consume elements in
    list order, so order is part of the job's content (see the module
    docstring) — executed input and hashed input must be the same thing.
    """
    return netlist_to_dict(netlist)


@dataclass(frozen=True)
class GeneratorSpec:
    """Recipe for building a benchmark netlist on demand (picklable, tiny).

    Jobs specified this way keep the submission side cheap (no netlist is
    built until :meth:`build` is called) while hashing identically to an
    equivalent job that carries the materialised netlist, because the hash
    is always computed over the *resolved* netlist.
    """

    circuit: str
    variant: Optional[str] = None
    area: Optional[Tuple[float, float]] = None
    seed: Optional[int] = None

    def build(self) -> Netlist:
        from repro.circuits import get_circuit

        area = LayoutArea(*self.area) if self.area is not None else None
        return get_circuit(self.circuit, self.variant, area=area, seed=self.seed).netlist


@dataclass
class LayoutJob:
    """One layout-generation run: netlist + flow + configuration.

    Exactly one of ``netlist`` / ``generator`` must be provided.

    Attributes
    ----------
    flow:
        ``"pilp"`` (progressive flow), ``"exact"`` (one-shot Section-4
        model) or ``"manual"`` (sequential place-then-route baseline).
    config:
        Solver configuration.  The manual baseline ignores it, so it is
        excluded from the hash for ``flow="manual"`` (any config maps to the
        same cached result).
    label:
        Human-readable name used in progress events and reports; not part
        of the hash.
    variant:
        Portfolio variant name (metadata only; the config difference that
        defines a variant is what changes the hash).
    tag:
        Free-form salt that *is* part of the hash.  Lets callers force
        distinct cache entries for otherwise identical jobs.
    trace_id:
        Observability correlation ID carried across the fork boundary into
        the worker.  Pure metadata: not part of the hash (``canonical_dict``
        lists its keys explicitly), so the same job submitted under two
        trace IDs still shares one cache entry.
    """

    flow: str = "pilp"
    netlist: Optional[Netlist] = None
    generator: Optional[GeneratorSpec] = None
    config: PILPConfig = field(default_factory=PILPConfig)
    label: Optional[str] = None
    variant: str = ""
    tag: str = ""
    trace_id: str = ""

    def __post_init__(self) -> None:
        if self.flow not in JOB_FLOWS:
            raise ConfigurationError(
                f"unknown job flow {self.flow!r}; available: {JOB_FLOWS}"
            )
        if (self.netlist is None) == (self.generator is None):
            raise ConfigurationError(
                "a LayoutJob needs exactly one of 'netlist' or 'generator'"
            )
        self._resolved: Optional[Netlist] = None
        self._hash: Optional[str] = None

    # ------------------------------------------------------------------ #
    # resolution and hashing
    # ------------------------------------------------------------------ #

    def resolve_netlist(self) -> Netlist:
        """The netlist the job runs on (built once for generator jobs)."""
        if self._resolved is None:
            self._resolved = (
                self.netlist if self.netlist is not None else self.generator.build()
            )
        return self._resolved

    def canonical_dict(self) -> Dict[str, object]:
        """The canonical (hash-defining) document of this job."""
        return {
            "schema": RUNNER_SCHEMA_VERSION,
            "code_version": code_version_salt(),
            "flow": self.flow,
            "tag": self.tag,
            "config": None if self.flow == "manual" else asdict(self.config),
            "netlist": canonical_netlist_dict(self.resolve_netlist()),
        }

    @property
    def content_hash(self) -> str:
        """SHA-256 hex digest of the canonical job document (cached)."""
        if self._hash is None:
            document = json.dumps(
                self.canonical_dict(), sort_keys=True, separators=(",", ":")
            )
            self._hash = hashlib.sha256(document.encode("utf-8")).hexdigest()
        return self._hash

    # ------------------------------------------------------------------ #
    # descriptive helpers
    # ------------------------------------------------------------------ #

    @property
    def circuit_name(self) -> str:
        if self.netlist is not None:
            return self.netlist.name
        return self.generator.circuit

    def describe(self) -> str:
        """Display label (explicit label or ``circuit:flow``, ``@variant``)."""
        base = self.label or f"{self.circuit_name}:{self.flow}"
        return f"{base}@{self.variant}" if self.variant else base

    def with_config(self, config: PILPConfig, variant: str = "") -> "LayoutJob":
        """A copy of this job running under a different configuration."""
        return replace(self, config=config, variant=variant or self.variant)

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #

    def run(self, checkpoint=None) -> FlowResult:
        """Execute the job in the current process and return its result.

        ``checkpoint`` is an optional
        :class:`~repro.core.checkpoint.CheckpointSink`: the progressive
        flow saves per-phase state through it and resumes from a stored
        checkpoint when one exists.  The single-shot flows ignore it —
        they have no phase boundaries to resume at.
        """
        netlist = self.resolve_netlist()
        if self.flow == "pilp":
            from repro.core.pilp import PILPLayoutGenerator

            return PILPLayoutGenerator(self.config).generate(
                netlist, checkpoint=checkpoint
            )
        if self.flow == "exact":
            from repro.core.exact import ExactLayoutGenerator

            return ExactLayoutGenerator(self.config).generate(netlist)
        from repro.baselines.manual_like import ManualLikeFlow

        return ManualLikeFlow().generate(netlist)
