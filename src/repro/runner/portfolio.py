"""Portfolio solving: race solver-configuration variants, keep the winner.

Competition-style tooling (SYNTCOMP and friends) shows that no single
solver configuration dominates across instances; racing a small portfolio
and keeping the first acceptable result is both faster in the median and
more robust in the tail.  This module applies the idea to the P-ILP flow:
each :class:`PortfolioVariant` rewrites the per-phase
:class:`~repro.core.config.PhaseSettings` of a base job (warm vs cold
starts, progressive slicing on or off, HiGHS vs the pure-Python
branch-and-bound backend), all variants run concurrently through the
worker pool, and the race settles on

* the **first DRC-clean** result (remaining variants are cancelled), or
* failing that, the **best-scoring** finished result (fewest DRC
  violations, then fewest bends, then smallest length error, then runtime).

Because each variant is an ordinary :class:`LayoutJob` with its own content
hash, portfolio runs populate — and benefit from — the same result cache as
plain batches.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.config import PILPConfig
from repro.runner.jobs import LayoutJob
from repro.runner.pool import BatchRunner, JobOutcome

#: Phase attributes a variant may override on every phase.
_PHASE_FIELDS = ("phase1", "phase2", "phase3", "exact")


@dataclass(frozen=True)
class PortfolioVariant:
    """One configuration rewrite entered into the race.

    Attributes
    ----------
    name:
        Variant label (recorded on the job and in manifests).
    phase_overrides:
        Field/value pairs applied to all four :class:`PhaseSettings`
        (``phase1``..``phase3`` and ``exact``), e.g.
        ``{"warm_start": False}`` or ``{"backend": "branch-and-bound"}``.
    config_overrides:
        Field/value pairs applied to the :class:`PILPConfig` itself, e.g.
        ``{"max_refinement_iterations": 2}``.
    time_limit_scale:
        Multiplier on every phase's time limit (useful for "fast but
        sloppy" variants that should give up early).
    """

    name: str
    phase_overrides: Mapping[str, object] = field(default_factory=dict)
    config_overrides: Mapping[str, object] = field(default_factory=dict)
    time_limit_scale: float = 1.0

    def apply(self, config: PILPConfig) -> PILPConfig:
        """Rewrite a base configuration into this variant's configuration."""
        changes: Dict[str, object] = dict(self.config_overrides)
        for name in _PHASE_FIELDS:
            settings = getattr(config, name)
            updated = replace(settings, **dict(self.phase_overrides))
            if self.time_limit_scale != 1.0 and updated.time_limit is not None:
                updated = replace(
                    updated, time_limit=updated.time_limit * self.time_limit_scale
                )
            changes[name] = updated
        return config.with_updates(**changes)


def default_variants() -> List[PortfolioVariant]:
    """The stock portfolio raced by ``rfic-layout batch --portfolio``.

    The base (warm + progressive HiGHS) configuration is usually fastest;
    the cold variant occasionally escapes a bad incumbent the warm start
    locked in; the branch-and-bound variant is the hedge against HiGHS
    pathologies and runs with a tighter budget so it never dominates the
    race's wall-clock.
    """
    return [
        PortfolioVariant("warm-progressive"),
        PortfolioVariant(
            "cold-restart", phase_overrides={"warm_start": False, "progressive": False}
        ),
        PortfolioVariant(
            "branch-bound",
            phase_overrides={"backend": "branch-and-bound", "progressive": False},
            time_limit_scale=0.5,
        ),
    ]


@dataclass
class PortfolioResult:
    """Outcome of one portfolio race."""

    job: LayoutJob
    outcomes: List[JobOutcome]
    winner: Optional[JobOutcome] = None

    @property
    def winner_variant(self) -> Optional[str]:
        return self.winner.job.variant if self.winner else None

    @property
    def drc_clean(self) -> bool:
        return bool(self.winner and self.winner.drc_clean)

    def row(self) -> Dict[str, object]:
        row: Dict[str, object] = {"job": self.job.describe()}
        if self.winner is None:
            row.update({"status": "failed", "variant": None})
            return row
        row.update(self.winner.row())
        row["variant"] = self.winner_variant
        return row


def _score(outcome: JobOutcome) -> Tuple[float, float, float, float]:
    """Lower-is-better ranking of finished outcomes (used when none is clean)."""
    summary = outcome.summary or {}
    return (
        float(summary.get("drc_violations", float("inf"))),
        float(summary.get("total_bends", float("inf"))),
        float(summary.get("max_abs_length_error_um", float("inf"))),
        outcome.runtime,
    )


def run_portfolio(
    job: LayoutJob,
    runner: BatchRunner,
    variants: Optional[Sequence[PortfolioVariant]] = None,
) -> PortfolioResult:
    """Race configuration variants of one job and return the winner.

    The race stops at the first DRC-clean result (losers are cancelled);
    if no variant produces a clean layout, the best-scoring successful
    outcome wins; if nothing succeeds, ``winner`` is ``None``.
    """
    variants = list(variants) if variants is not None else default_variants()
    entries = [
        job.with_config(variant.apply(job.config), variant=variant.name)
        for variant in variants
    ]
    outcomes = runner.run(entries, stop_when=lambda outcome: outcome.drc_clean)

    clean = [outcome for outcome in outcomes if outcome.drc_clean]
    if clean:
        winner = clean[0]
    else:
        finished = [outcome for outcome in outcomes if outcome.ok]
        winner = min(finished, key=_score) if finished else None
    return PortfolioResult(job=job, outcomes=outcomes, winner=winner)


def run_portfolio_batch(
    jobs: Sequence[LayoutJob],
    runner: BatchRunner,
    variants: Optional[Sequence[PortfolioVariant]] = None,
) -> List[PortfolioResult]:
    """Race a portfolio for every job in turn.

    Races run sequentially so each job's variants get the full worker
    budget (the point of a race is losing as little wall-clock as possible
    on the losers).
    """
    return [run_portfolio(job, runner, variants) for job in jobs]
