"""Disk-backed, content-addressed store of layout-generation results.

Every completed :class:`~repro.runner.jobs.LayoutJob` is stored under
``<root>/<hash[:2]>/<hash[2:]>/`` as three documents:

* ``layout.json`` — the final layout (netlist embedded, self-contained),
* ``metrics.json`` — the flow's summary row plus per-phase summaries,
* ``manifest.json`` — job provenance: flow, circuit, code-version salt,
  configuration, timestamps.

The store is **append-only**: entries are written to a temporary directory
and atomically renamed into place, and an existing entry is never replaced
(first writer wins; concurrent writers of the same hash produced the same
bytes anyway, because the hash fully determines the result).  Corrupt or
partial entries are treated as misses.
"""

from __future__ import annotations

import json
import os
import shutil
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, Optional, Union

from repro.core.result import FlowResult
from repro.faults import FAULTS
from repro.layout.drc import run_drc
from repro.layout.export_json import load_layout, save_layout
from repro.layout.metrics import compute_metrics
from repro.runner.jobs import LayoutJob, code_version_salt

PathLike = Union[str, Path]

LAYOUT_FILE = "layout.json"
METRICS_FILE = "metrics.json"
MANIFEST_FILE = "manifest.json"

#: Staging directories older than this are considered orphaned (their
#: writer was killed mid-write) and are swept on the next store.
STALE_STAGING_SECONDS = 3600.0


@dataclass
class CacheStats:
    """Hit / miss / store counters of one :class:`ResultCache` instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    put_errors: int = 0  #: stores that failed on disk (ENOSPC, EIO, ...)

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> Dict[str, object]:
        """Raw counters plus the (rounded) derived rate.

        The raw counts always accompany ``hit_rate``: the rate alone loses
        information to rounding (49/100 and 0/0 both read ``0.49``/``0.0``
        shorn of their denominators), and consumers such as the batch JSON
        footer and the service's ``GET /stats`` aggregate across processes.
        """
        return {
            "hits": self.hits,
            "misses": self.misses,
            "lookups": self.lookups,
            "stores": self.stores,
            "put_errors": self.put_errors,
            "hit_rate": round(self.hit_rate, 3),
        }


@dataclass
class CachedResult:
    """A cache entry: paths plus the stored summary and manifest."""

    key: str
    directory: Path
    manifest: Dict[str, object]
    summary: Dict[str, object] = field(default_factory=dict)
    #: Per-stage cost breakdown stored with the entry (absent in entries
    #: written before profiles existed — treat ``None`` as "not recorded").
    profile: Optional[Dict[str, object]] = None

    @property
    def layout_path(self) -> Path:
        return self.directory / LAYOUT_FILE

    def flow_result(self) -> FlowResult:
        """Rebuild a :class:`FlowResult` from the stored layout.

        Metrics and the DRC report are recomputed from the layout (both are
        deterministic functions of it); the recorded wall-clock runtime of
        the original run is preserved.  Per-phase diagnostics are not
        reconstructed (``phases`` is empty).
        """
        layout = load_layout(self.layout_path)
        return FlowResult(
            flow=str(self.manifest.get("flow", "")),
            circuit=layout.netlist.name,
            layout=layout,
            metrics=compute_metrics(layout),
            drc=run_drc(layout),
            runtime=float(self.summary.get("runtime_s", 0.0)),
        )


class ResultCache:
    """Content-addressed result store rooted at a directory."""

    def __init__(self, root: PathLike) -> None:
        self.root = Path(root)
        self.stats = CacheStats()
        #: Message of the most recent failed store, or ``None``.  Cleared
        #: by the next successful store, so it doubles as a "cache is
        #: currently writable" health flag.
        self.last_put_error: Optional[str] = None

    # ------------------------------------------------------------------ #
    # addressing
    # ------------------------------------------------------------------ #

    def entry_dir(self, key: str) -> Path:
        """Directory an entry with the given content hash lives in."""
        return self.root / key[:2] / key[2:]

    def contains(self, job: LayoutJob) -> bool:
        """Whether a complete entry exists (does not touch the counters)."""
        return self._is_complete(self.entry_dir(job.content_hash))

    @staticmethod
    def _is_complete(directory: Path) -> bool:
        return all(
            (directory / name).is_file()
            for name in (LAYOUT_FILE, METRICS_FILE, MANIFEST_FILE)
        )

    # ------------------------------------------------------------------ #
    # lookup / store
    # ------------------------------------------------------------------ #

    def get(self, job: LayoutJob) -> Optional[CachedResult]:
        """Look a job up; returns ``None`` (and counts a miss) if absent."""
        entry = self.peek(job)
        if entry is None:
            self.stats.misses += 1
        else:
            self.stats.hits += 1
        return entry

    def peek(self, job: LayoutJob) -> Optional[CachedResult]:
        """Like :meth:`get` but without touching the hit/miss counters."""
        return self.peek_key(job.content_hash)

    def peek_key(self, key: str) -> Optional[CachedResult]:
        """Look an entry up by raw content hash (counters untouched).

        This is what the layout service uses to serve ``layout.json`` /
        ``layout.svg`` for a settled job: at that point only the hash is
        known — the netlist does not need to be re-resolved.
        """
        directory = self.entry_dir(key)
        if not self._is_complete(directory):
            return None
        try:
            manifest = _read_json(directory / MANIFEST_FILE)
            metrics = _read_json(directory / METRICS_FILE)
        except (OSError, json.JSONDecodeError):
            return None
        return CachedResult(
            key=key,
            directory=directory,
            manifest=manifest,
            summary=dict(metrics.get("summary", {})),
            profile=metrics.get("profile"),
        )

    def put(self, job: LayoutJob, result: FlowResult) -> Optional[CachedResult]:
        """Store a finished run (no-op when a valid entry already exists).

        A *corrupt or partial* existing entry is garbage, not data: it is
        removed and rewritten (the append-only guarantee protects valid
        entries only — without this the store could never self-heal).

        A store that fails on disk (ENOSPC, EIO, staging write or rename)
        is **contained**: it is counted in ``stats.put_errors``, recorded
        in :attr:`last_put_error`, and ``None`` is returned — the caller
        keeps the in-memory result and the run simply goes un-cached.  A
        cache store must never fail the job that produced the result.
        """
        key = job.content_hash
        directory = self.entry_dir(key)
        entry = self.peek(job)
        if entry is not None:
            return entry
        try:
            if directory.exists():
                shutil.rmtree(directory, ignore_errors=True)
            self._write_entry(job, result, key, directory)
        except OSError as exc:
            self.stats.put_errors += 1
            self.last_put_error = f"{type(exc).__name__}: {exc}"
            return None
        entry = self.peek(job)
        if entry is None:
            self.stats.put_errors += 1
            self.last_put_error = f"cache entry {key[:12]} unreadable after store"
            return None
        self.last_put_error = None
        return entry

    def _sweep_stale_staging(self) -> None:
        """Remove staging leftovers from writers that were killed mid-write.

        A terminated worker (timeout, crash) never reaches its cleanup, so
        its staging directory would otherwise leak forever.  Anything old
        enough that no live writer can still own it is deleted; fresh
        directories are left alone (their writer may be mid-rename).
        """
        staging_root = self.root / "tmp"
        if not staging_root.is_dir():
            return
        cutoff = time.time() - STALE_STAGING_SECONDS
        for leftover in staging_root.iterdir():
            try:
                if leftover.stat().st_mtime < cutoff:
                    shutil.rmtree(leftover, ignore_errors=True)
            except OSError:  # pragma: no cover - raced with another sweeper
                continue

    def _write_entry(
        self, job: LayoutJob, result: FlowResult, key: str, directory: Path
    ) -> None:
        self._sweep_stale_staging()
        staging = self.root / "tmp" / f"{key[:12]}-{os.getpid()}-{uuid.uuid4().hex[:8]}"
        FAULTS.act("cache.put.staging")
        staging.mkdir(parents=True, exist_ok=True)
        try:
            save_layout(result.layout, staging / LAYOUT_FILE)
            _write_json(
                staging / METRICS_FILE,
                {
                    "summary": result.summary(),
                    "phases": result.phase_table(),
                    "profile": result.profile(),
                },
            )
            _write_json(
                staging / MANIFEST_FILE,
                {
                    "content_hash": key,
                    "flow": result.flow,
                    "circuit": result.circuit,
                    "label": job.describe(),
                    "variant": job.variant,
                    "code_version": code_version_salt(),
                    "runtime_s": result.runtime,
                    "created_unix": time.time(),
                },
            )
            corrupt = FAULTS.hit("cache.put.corrupt")
            if corrupt is not None:
                # Garble a staged document so a corrupt entry lands on disk
                # exactly as a torn write would leave it.
                (staging / METRICS_FILE).write_text('{"torn": ', encoding="utf-8")
            directory.parent.mkdir(parents=True, exist_ok=True)
            FAULTS.act("cache.put.rename")
            try:
                staging.rename(directory)
            except OSError:
                # Lost the race against a concurrent writer; their entry is
                # equivalent (same content hash), keep it.
                shutil.rmtree(staging, ignore_errors=True)
            else:
                self.stats.stores += 1
        finally:
            shutil.rmtree(staging, ignore_errors=True)

    # ------------------------------------------------------------------ #
    # inspection
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return sum(1 for _ in self.iter_entries())

    def iter_entries(self) -> Iterator[CachedResult]:
        """Iterate over all complete entries in the store."""
        if not self.root.is_dir():
            return
        for shard in sorted(self.root.iterdir()):
            if not shard.is_dir() or shard.name == "tmp" or len(shard.name) != 2:
                continue
            for directory in sorted(shard.iterdir()):
                if not self._is_complete(directory):
                    continue
                try:
                    manifest = _read_json(directory / MANIFEST_FILE)
                    metrics = _read_json(directory / METRICS_FILE)
                except (OSError, json.JSONDecodeError):
                    continue
                yield CachedResult(
                    key=shard.name + directory.name,
                    directory=directory,
                    manifest=manifest,
                    summary=dict(metrics.get("summary", {})),
                    profile=metrics.get("profile"),
                )


def _read_json(path: Path) -> Dict[str, object]:
    with path.open("r", encoding="utf-8") as handle:
        return json.load(handle)


def _write_json(path: Path, data: Dict[str, object]) -> None:
    with path.open("w", encoding="utf-8") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")
