"""Disk-backed, content-addressed store of layout-generation results.

Every completed :class:`~repro.runner.jobs.LayoutJob` is stored under
``<root>/<hash[:2]>/<hash[2:]>/`` as three documents:

* ``layout.json`` — the final layout (netlist embedded, self-contained),
* ``metrics.json`` — the flow's summary row plus per-phase summaries,
* ``manifest.json`` — job provenance: flow, circuit, code-version salt,
  configuration, timestamps.

The store is **append-only**: entries are written to a temporary directory
and atomically renamed into place, and an existing entry is never replaced
(first writer wins; concurrent writers of the same hash produced the same
bytes anyway, because the hash fully determines the result).  Corrupt or
partial entries are treated as misses.

Two subsystems ride the same staging + atomic-rename discipline:

* **Integrity** — the manifest records a SHA-256 digest per artifact,
  every read re-verifies them, and a mismatch (bit rot, torn write) moves
  the entry to ``<root>/quarantine/`` and reads as a miss — a corrupt
  entry is *never served*.  :meth:`ResultCache.scrub` walks the whole
  store the same way.
* **Checkpoints** — keyed *partial* entries under ``<root>/partial/``
  holding a :class:`~repro.core.checkpoint.SolveCheckpoint`, self-digested
  and salted with the code version, so a crashed solve resumes at the next
  phase instead of restarting (see :class:`SolveCheckpointer`).  A torn or
  stale checkpoint is discarded and counted — resume degrades to a cold
  solve, never to an error.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, Optional, Union

from repro.core.checkpoint import CheckpointSink, SolveCheckpoint
from repro.core.result import FlowResult
from repro.faults import FAULTS
from repro.layout.drc import run_drc
from repro.layout.export_json import load_layout, save_layout
from repro.layout.metrics import compute_metrics
from repro.runner.jobs import LayoutJob, code_version_salt

PathLike = Union[str, Path]

LAYOUT_FILE = "layout.json"
METRICS_FILE = "metrics.json"
MANIFEST_FILE = "manifest.json"
CHECKPOINT_FILE = "checkpoint.json"
QUARANTINE_NOTE_FILE = "quarantine.json"

#: Staging leftovers older than this are considered orphaned (their
#: writer was killed mid-write) and are swept on the next store.  The age
#: of a staging *directory* is the newest mtime anywhere inside it: a
#: writer that has been streaming documents for a while keeps its staging
#: dir alive through the files it touches, even though the directory inode
#: itself went stale at creation time.
STALE_STAGING_SECONDS = 3600.0


@dataclass
class CacheStats:
    """Hit / miss / store counters of one :class:`ResultCache` instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    put_errors: int = 0  #: stores that failed on disk (ENOSPC, EIO, ...)
    quarantined: int = 0  #: entries that failed verify-on-read and were moved
    checkpoint_writes: int = 0  #: partial entries durably written
    checkpoint_write_errors: int = 0  #: contained checkpoint store failures
    checkpoint_hits: int = 0  #: checkpoint loads that produced a resume
    checkpoint_corrupt: int = 0  #: torn / stale checkpoints discarded

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> Dict[str, object]:
        """Raw counters plus the (rounded) derived rate.

        The raw counts always accompany ``hit_rate``: the rate alone loses
        information to rounding (49/100 and 0/0 both read ``0.49``/``0.0``
        shorn of their denominators), and consumers such as the batch JSON
        footer and the service's ``GET /stats`` aggregate across processes.
        """
        return {
            "hits": self.hits,
            "misses": self.misses,
            "lookups": self.lookups,
            "stores": self.stores,
            "put_errors": self.put_errors,
            "quarantined": self.quarantined,
            "checkpoint_writes": self.checkpoint_writes,
            "checkpoint_write_errors": self.checkpoint_write_errors,
            "checkpoint_hits": self.checkpoint_hits,
            "checkpoint_corrupt": self.checkpoint_corrupt,
            "hit_rate": round(self.hit_rate, 3),
        }


@dataclass
class CachedResult:
    """A cache entry: paths plus the stored summary and manifest."""

    key: str
    directory: Path
    manifest: Dict[str, object]
    summary: Dict[str, object] = field(default_factory=dict)
    #: Per-stage cost breakdown stored with the entry (absent in entries
    #: written before profiles existed — treat ``None`` as "not recorded").
    profile: Optional[Dict[str, object]] = None

    @property
    def layout_path(self) -> Path:
        return self.directory / LAYOUT_FILE

    def flow_result(self) -> FlowResult:
        """Rebuild a :class:`FlowResult` from the stored layout.

        Metrics and the DRC report are recomputed from the layout (both are
        deterministic functions of it); the recorded wall-clock runtime of
        the original run is preserved.  Per-phase diagnostics are not
        reconstructed (``phases`` is empty).
        """
        layout = load_layout(self.layout_path)
        return FlowResult(
            flow=str(self.manifest.get("flow", "")),
            circuit=layout.netlist.name,
            layout=layout,
            metrics=compute_metrics(layout),
            drc=run_drc(layout),
            runtime=float(self.summary.get("runtime_s", 0.0)),
        )


class ResultCache:
    """Content-addressed result store rooted at a directory."""

    def __init__(self, root: PathLike) -> None:
        self.root = Path(root)
        self.stats = CacheStats()
        #: Message of the most recent failed store, or ``None``.  Cleared
        #: by the next successful store, so it doubles as a "cache is
        #: currently writable" health flag.
        self.last_put_error: Optional[str] = None

    # ------------------------------------------------------------------ #
    # addressing
    # ------------------------------------------------------------------ #

    def entry_dir(self, key: str) -> Path:
        """Directory an entry with the given content hash lives in."""
        return self.root / key[:2] / key[2:]

    def contains(self, job: LayoutJob) -> bool:
        """Whether a complete entry exists (does not touch the counters)."""
        return self._is_complete(self.entry_dir(job.content_hash))

    @staticmethod
    def _is_complete(directory: Path) -> bool:
        return all(
            (directory / name).is_file()
            for name in (LAYOUT_FILE, METRICS_FILE, MANIFEST_FILE)
        )

    # ------------------------------------------------------------------ #
    # lookup / store
    # ------------------------------------------------------------------ #

    def get(self, job: LayoutJob) -> Optional[CachedResult]:
        """Look a job up; returns ``None`` (and counts a miss) if absent."""
        entry = self.peek(job)
        if entry is None:
            self.stats.misses += 1
        else:
            self.stats.hits += 1
        return entry

    def peek(self, job: LayoutJob) -> Optional[CachedResult]:
        """Like :meth:`get` but without touching the hit/miss counters."""
        return self.peek_key(job.content_hash)

    def peek_key(self, key: str) -> Optional[CachedResult]:
        """Look an entry up by raw content hash (counters untouched).

        This is what the layout service uses to serve ``layout.json`` /
        ``layout.svg`` for a settled job: at that point only the hash is
        known — the netlist does not need to be re-resolved.
        """
        directory = self.entry_dir(key)
        if not self._is_complete(directory):
            return None
        try:
            manifest = _read_json(directory / MANIFEST_FILE)
            failure = self._verify_artifacts(directory, manifest)
            if failure is None and FAULTS.hit("cache.read.corrupt") is not None:
                failure = "fault injected at cache.read.corrupt"
        except (OSError, json.JSONDecodeError) as exc:
            failure = f"manifest unreadable ({type(exc).__name__}: {exc})"
            manifest = None
        if failure is not None:
            # Verified corruption is never served: the entry moves to the
            # quarantine area and the lookup reads as a miss, so the caller
            # re-solves (the service's journaled-requeue path rides this).
            self._quarantine(directory, key, failure)
            return None
        try:
            metrics = _read_json(directory / METRICS_FILE)
        except (OSError, json.JSONDecodeError):
            return None
        return CachedResult(
            key=key,
            directory=directory,
            manifest=manifest,
            summary=dict(metrics.get("summary", {})),
            profile=metrics.get("profile"),
        )

    def put(self, job: LayoutJob, result: FlowResult) -> Optional[CachedResult]:
        """Store a finished run (no-op when a valid entry already exists).

        A *corrupt or partial* existing entry is garbage, not data: the
        lookup above quarantines verified corruption (and anything else is
        removed), then the entry is rewritten — the append-only guarantee
        protects valid entries only; without this the store could never
        self-heal.

        A store that fails on disk (ENOSPC, EIO, staging write or rename)
        is **contained**: it is counted in ``stats.put_errors``, recorded
        in :attr:`last_put_error`, and ``None`` is returned — the caller
        keeps the in-memory result and the run simply goes un-cached.  A
        cache store must never fail the job that produced the result.
        """
        key = job.content_hash
        directory = self.entry_dir(key)
        entry = self.peek(job)
        if entry is not None:
            return entry
        try:
            if directory.exists():
                shutil.rmtree(directory, ignore_errors=True)
            self._write_entry(job, result, key, directory)
        except OSError as exc:
            self.stats.put_errors += 1
            self.last_put_error = f"{type(exc).__name__}: {exc}"
            return None
        entry = self.peek(job)
        if entry is None:
            self.stats.put_errors += 1
            self.last_put_error = f"cache entry {key[:12]} unreadable after store"
            return None
        self.last_put_error = None
        return entry

    def _sweep_stale_staging(self) -> int:
        """Remove staging leftovers from writers that were killed mid-write.

        A terminated worker (timeout, crash) never reaches its cleanup, so
        its staging directory would otherwise leak forever.  Anything old
        enough that no live writer can still own it is deleted; fresh
        leftovers are left alone (their writer may be mid-rename).

        A leftover's age is the *newest* mtime of the leftover and, for
        directories, everything inside it — the directory inode's own mtime
        freezes once the last file is created, so judging by it alone would
        sweep a slow writer's staging dir out from under it while it is
        still streaming document contents into existing files.
        """
        staging_root = self.root / "tmp"
        if not staging_root.is_dir():
            return 0
        cutoff = time.time() - STALE_STAGING_SECONDS
        swept = 0
        for leftover in staging_root.iterdir():
            try:
                newest = leftover.stat().st_mtime
                if leftover.is_dir():
                    for child in leftover.rglob("*"):
                        newest = max(newest, child.stat().st_mtime)
                if newest >= cutoff:
                    continue
                if leftover.is_dir():
                    shutil.rmtree(leftover, ignore_errors=True)
                else:
                    leftover.unlink()
                swept += 1
            except OSError:  # pragma: no cover - raced with another sweeper
                continue
        return swept

    def _write_entry(
        self, job: LayoutJob, result: FlowResult, key: str, directory: Path
    ) -> None:
        self._sweep_stale_staging()
        staging = self.root / "tmp" / f"{key[:12]}-{os.getpid()}-{uuid.uuid4().hex[:8]}"
        FAULTS.act("cache.put.staging")
        staging.mkdir(parents=True, exist_ok=True)
        try:
            save_layout(result.layout, staging / LAYOUT_FILE)
            _write_json(
                staging / METRICS_FILE,
                {
                    "summary": result.summary(),
                    "phases": result.phase_table(),
                    "profile": result.profile(),
                },
            )
            _write_json(
                staging / MANIFEST_FILE,
                {
                    "content_hash": key,
                    "flow": result.flow,
                    "circuit": result.circuit,
                    "label": job.describe(),
                    "variant": job.variant,
                    "code_version": code_version_salt(),
                    "runtime_s": result.runtime,
                    "created_unix": time.time(),
                    # Digests over the artifacts as staged: verify-on-read
                    # and scrub recompute and compare these on every access.
                    "artifacts": {
                        name: _file_digest(staging / name)
                        for name in (LAYOUT_FILE, METRICS_FILE)
                    },
                },
            )
            corrupt = FAULTS.hit("cache.put.corrupt")
            if corrupt is not None:
                # Garble a staged document so a corrupt entry lands on disk
                # exactly as a torn write would leave it.
                (staging / METRICS_FILE).write_text('{"torn": ', encoding="utf-8")
            directory.parent.mkdir(parents=True, exist_ok=True)
            FAULTS.act("cache.put.rename")
            try:
                staging.rename(directory)
            except OSError:
                # Lost the race against a concurrent writer; their entry is
                # equivalent (same content hash), keep it.
                shutil.rmtree(staging, ignore_errors=True)
            else:
                self.stats.stores += 1
        finally:
            shutil.rmtree(staging, ignore_errors=True)

    # ------------------------------------------------------------------ #
    # integrity
    # ------------------------------------------------------------------ #

    @staticmethod
    def _verify_artifacts(directory: Path, manifest: Dict[str, object]) -> Optional[str]:
        """Check the manifest's artifact digests; ``None`` means clean.

        Entries written before digests existed carry no ``artifacts`` map
        and verify vacuously (scrub reports them as ``legacy``).
        """
        artifacts = manifest.get("artifacts")
        if not isinstance(artifacts, dict) or not artifacts:
            return None
        for name in sorted(artifacts):
            path = directory / name
            if not path.is_file():
                return f"artifact {name} missing"
            if _file_digest(path) != artifacts[name]:
                return f"artifact {name} digest mismatch"
        return None

    def _quarantine(self, directory: Path, key: str, reason: str) -> None:
        """Move a corrupt entry aside so it can never be served again.

        The move is a same-filesystem rename (atomic; concurrent readers
        see either the old path or nothing).  A note with the detection
        reason rides along for post-mortems.  If the rename loses a race
        the entry is dropped instead — quarantine must never fail a read.
        """
        quarantine_root = self.root / "quarantine"
        target = quarantine_root / f"{key}-{uuid.uuid4().hex[:8]}"
        try:
            quarantine_root.mkdir(parents=True, exist_ok=True)
            directory.rename(target)
        except OSError:
            shutil.rmtree(directory, ignore_errors=True)
        else:
            try:
                _write_json(
                    target / QUARANTINE_NOTE_FILE,
                    {"key": key, "reason": reason, "detected_unix": time.time()},
                )
            except OSError:  # pragma: no cover - quarantine area unwritable
                pass
        self.stats.quarantined += 1

    def quarantine_count(self) -> int:
        """Number of entries currently sitting in the quarantine area."""
        quarantine_root = self.root / "quarantine"
        if not quarantine_root.is_dir():
            return 0
        return sum(1 for path in quarantine_root.iterdir() if path.is_dir())

    def scrub(self, repair: bool = True) -> Dict[str, object]:
        """Walk the whole store verifying every entry and checkpoint.

        With ``repair=True`` corrupt entries are quarantined, corrupt or
        stale checkpoints removed, and orphaned staging leftovers swept;
        with ``repair=False`` (see :meth:`verify`) the walk is read-only.
        ``clean`` in the report refers to what this walk *found*: a scrub
        that just quarantined corruption reports ``clean: False``, the
        next one reports ``clean: True``.
        """
        report: Dict[str, object] = {
            "repair": bool(repair),
            "entries_scanned": 0,
            "entries_ok": 0,
            "entries_legacy": 0,
            "entries_corrupt": 0,
            "entries_quarantined": 0,
            "checkpoints_scanned": 0,
            "checkpoints_corrupt": 0,
            "checkpoints_removed": 0,
            "staging_swept": 0,
            "errors": 0,
            "corrupt_keys": [],
        }
        for key, directory in self._entry_dirs():
            report["entries_scanned"] += 1
            try:
                FAULTS.act("cache.scrub")
                if not self._is_complete(directory):
                    failure: Optional[str] = "incomplete entry"
                    legacy = False
                else:
                    manifest = _read_json(directory / MANIFEST_FILE)
                    artifacts = manifest.get("artifacts")
                    legacy = not isinstance(artifacts, dict) or not artifacts
                    failure = self._verify_artifacts(directory, manifest)
            except (OSError, RuntimeError, json.JSONDecodeError) as exc:
                if isinstance(exc, json.JSONDecodeError):
                    failure, legacy = f"manifest unreadable: {exc}", False
                else:
                    report["errors"] += 1
                    continue
            if failure is not None:
                report["entries_corrupt"] += 1
                report["corrupt_keys"].append(key)
                if repair:
                    self._quarantine(directory, key, failure)
                    report["entries_quarantined"] += 1
            elif legacy:
                report["entries_legacy"] += 1
            else:
                report["entries_ok"] += 1
        for key, path in self._checkpoint_files():
            report["checkpoints_scanned"] += 1
            try:
                self._parse_checkpoint(key, path.read_bytes())
            except (OSError, ValueError):
                report["checkpoints_corrupt"] += 1
                if repair:
                    try:
                        path.unlink()
                        report["checkpoints_removed"] += 1
                    except OSError:  # pragma: no cover - raced
                        pass
        if repair:
            report["staging_swept"] = self._sweep_stale_staging()
        report["quarantine_entries"] = self.quarantine_count()
        report["clean"] = (
            report["entries_corrupt"] == 0
            and report["checkpoints_corrupt"] == 0
            and report["errors"] == 0
        )
        return report

    def verify(self) -> Dict[str, object]:
        """Read-only integrity walk (:meth:`scrub` without repair)."""
        return self.scrub(repair=False)

    # ------------------------------------------------------------------ #
    # checkpoints (partial entries)
    # ------------------------------------------------------------------ #

    def checkpoint_dir(self, key: str) -> Path:
        """Directory a partial (checkpoint) entry for the key lives in."""
        return self.root / "partial" / key[:2] / key[2:]

    def checkpoint_path(self, key: str) -> Path:
        return self.checkpoint_dir(key) / CHECKPOINT_FILE

    def has_checkpoint(self, key: str) -> bool:
        return self.checkpoint_path(key).is_file()

    def write_checkpoint(self, key: str, checkpoint: SolveCheckpoint) -> bool:
        """Persist a solve checkpoint through staging + atomic rename.

        Failures are **contained** (counted, ``False`` returned): a
        checkpoint is an optimisation, and failing the solve that tried to
        save one would turn a durability feature into a crash surface.
        """
        doc = checkpoint.to_doc()
        doc["content_hash"] = key
        doc["code_version"] = code_version_salt()
        doc["created_unix"] = time.time()
        doc["digest"] = _checkpoint_digest(doc)
        staging = (
            self.root
            / "tmp"
            / f"ckpt-{key[:12]}-{os.getpid()}-{uuid.uuid4().hex[:8]}.json"
        )
        try:
            FAULTS.act("checkpoint.write")
            staging.parent.mkdir(parents=True, exist_ok=True)
            _write_json(staging, doc)
            directory = self.checkpoint_dir(key)
            directory.mkdir(parents=True, exist_ok=True)
            os.replace(staging, directory / CHECKPOINT_FILE)
        except (OSError, RuntimeError) as exc:
            self.stats.checkpoint_write_errors += 1
            self.last_put_error = f"checkpoint: {type(exc).__name__}: {exc}"
            staging.unlink(missing_ok=True)
            return False
        self.stats.checkpoint_writes += 1
        return True

    def read_checkpoint(self, key: str) -> Optional[SolveCheckpoint]:
        """Load a solve checkpoint, discarding anything not trustworthy.

        A torn file, a digest mismatch, a key mismatch or a stale code
        version all degrade to ``None`` (counted, the bad file removed):
        the solve simply starts cold.
        """
        path = self.checkpoint_path(key)
        if not path.is_file():
            return None
        try:
            if FAULTS.hit("checkpoint.read.corrupt") is not None:
                raise ValueError("fault injected at checkpoint.read.corrupt")
            checkpoint = self._parse_checkpoint(key, path.read_bytes())
        except (OSError, ValueError):
            self.stats.checkpoint_corrupt += 1
            path.unlink(missing_ok=True)
            return None
        self.stats.checkpoint_hits += 1
        return checkpoint

    def peek_checkpoint_stage(self, key: str) -> Optional[str]:
        """Stage of a stored checkpoint if it parses clean (no counters).

        Used by the pool's dispatcher to announce an upcoming resume; the
        worker's own :meth:`read_checkpoint` stays authoritative.
        """
        path = self.checkpoint_path(key)
        if not path.is_file():
            return None
        try:
            return self._parse_checkpoint(key, path.read_bytes()).stage
        except (OSError, ValueError):
            return None

    def clear_checkpoint(self, key: str) -> None:
        """Drop the partial entry (called once the full entry is stored)."""
        directory = self.checkpoint_dir(key)
        if directory.exists():
            shutil.rmtree(directory, ignore_errors=True)

    @staticmethod
    def _parse_checkpoint(key: str, raw: bytes) -> SolveCheckpoint:
        """Validate and parse checkpoint bytes (raises ``ValueError``)."""
        try:
            doc = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ValueError(f"torn checkpoint: {exc}") from exc
        if not isinstance(doc, dict):
            raise ValueError("torn checkpoint: not an object")
        recorded = doc.pop("digest", None)
        if recorded != _checkpoint_digest(doc):
            raise ValueError("checkpoint digest mismatch")
        if doc.get("content_hash") != key:
            raise ValueError("checkpoint key mismatch")
        if doc.get("code_version") != code_version_salt():
            raise ValueError("checkpoint from a different code version")
        return SolveCheckpoint.from_doc(doc)

    def _entry_dirs(self) -> Iterator[tuple]:
        """All entry directories (complete or not) as ``(key, path)``."""
        if not self.root.is_dir():
            return
        for shard in sorted(self.root.iterdir()):
            if not shard.is_dir() or len(shard.name) != 2:
                continue
            for directory in sorted(shard.iterdir()):
                if directory.is_dir():
                    yield shard.name + directory.name, directory

    def _checkpoint_files(self) -> Iterator[tuple]:
        """All stored checkpoint files as ``(key, path)``."""
        partial_root = self.root / "partial"
        if not partial_root.is_dir():
            return
        for shard in sorted(partial_root.iterdir()):
            if not shard.is_dir() or len(shard.name) != 2:
                continue
            for directory in sorted(shard.iterdir()):
                path = directory / CHECKPOINT_FILE
                if path.is_file():
                    yield shard.name + directory.name, path

    # ------------------------------------------------------------------ #
    # inspection
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return sum(1 for _ in self.iter_entries())

    def iter_entries(self) -> Iterator[CachedResult]:
        """Iterate over all complete entries in the store."""
        if not self.root.is_dir():
            return
        for shard in sorted(self.root.iterdir()):
            if not shard.is_dir() or shard.name == "tmp" or len(shard.name) != 2:
                continue
            for directory in sorted(shard.iterdir()):
                if not self._is_complete(directory):
                    continue
                try:
                    manifest = _read_json(directory / MANIFEST_FILE)
                    metrics = _read_json(directory / METRICS_FILE)
                except (OSError, json.JSONDecodeError):
                    continue
                yield CachedResult(
                    key=shard.name + directory.name,
                    directory=directory,
                    manifest=manifest,
                    summary=dict(metrics.get("summary", {})),
                    profile=metrics.get("profile"),
                )


class SolveCheckpointer(CheckpointSink):
    """Bind one job's solve checkpoints to a :class:`ResultCache`.

    This is the sink the worker hands to
    :meth:`repro.core.pilp.PILPLayoutGenerator.generate`: loads come from
    the cache's partial area (verified), saves go through staging +
    atomic rename, and :meth:`clear` retires the partial entry once the
    full result entry has been stored.
    """

    def __init__(self, cache: ResultCache, key: str) -> None:
        self.cache = cache
        self.key = key

    def load(self) -> Optional[SolveCheckpoint]:
        return self.cache.read_checkpoint(self.key)

    def save(self, checkpoint: SolveCheckpoint) -> bool:
        return self.cache.write_checkpoint(self.key, checkpoint)

    def clear(self) -> None:
        self.cache.clear_checkpoint(self.key)


def _file_digest(path: Path) -> str:
    digest = hashlib.sha256()
    with path.open("rb") as handle:
        for block in iter(lambda: handle.read(65536), b""):
            digest.update(block)
    return digest.hexdigest()


def _checkpoint_digest(doc: Dict[str, object]) -> str:
    """Self-digest of a checkpoint document (its ``digest`` field excluded)."""
    canonical = json.dumps(
        {name: value for name, value in doc.items() if name != "digest"},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _read_json(path: Path) -> Dict[str, object]:
    with path.open("r", encoding="utf-8") as handle:
        return json.load(handle)


def _write_json(path: Path, data: Dict[str, object]) -> None:
    with path.open("w", encoding="utf-8") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")
