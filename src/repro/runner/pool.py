"""Parallel execution of layout jobs with caching and crash isolation.

:class:`WorkerPool` runs :class:`~repro.runner.jobs.LayoutJob` instances in
child processes (one process per job, at most ``workers`` alive at a time).
Each job gets

* a **cache lookup** before any process is spawned (hits settle instantly),
* a **per-job timeout** (the child is terminated, the batch continues),
* **crash isolation** (a child dying without reporting — segfault, OOM
  kill, ``os._exit`` — yields a ``"failed"`` outcome, not a broken batch),
* **structured progress events** via an optional callback.

Identical jobs (equal content hashes) inside one batch are executed once
and their outcome is shared.  ``workers=0`` runs everything inline in the
current process — no isolation, but no fork overhead either, which is the
right trade for fully cached batches and for the experiment harnesses'
small configurations.

:class:`BatchRunner` is the convenience facade bundling a cache directory
with pool settings; it is what the CLI and the experiment harnesses use.

Both classes are **re-entrant**: :meth:`WorkerPool.run` keeps all batch
state in locals, so several threads may drive batches through one shared
pool/runner concurrently (the layout service's dispatcher threads do
exactly that, sharing one runner so all dispatches hit one cache and one
set of statistics).
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Union

from repro.core.result import FlowResult
from repro.faults import FAULTS
from repro.obs.logging import LOG
from repro.obs.trace import CLOCK
from repro.layout.drc import run_drc
from repro.layout.export_json import layout_from_dict, layout_to_dict
from repro.layout.metrics import compute_metrics
from repro.runner.cache import CachedResult, ResultCache, SolveCheckpointer
from repro.runner.jobs import LayoutJob

PathLike = Union[str, Path]

#: Seconds between scheduler sweeps while jobs are in flight.
_POLL_INTERVAL = 0.05


@dataclass
class ProgressEvent:
    """One structured progress notification from the pool."""

    kind: str  #: submitted | cached | started | resumed | completed | failed | timeout | cancelled
    job_key: str
    label: str
    variant: str = ""
    detail: str = ""
    runtime: float = 0.0

    def __str__(self) -> str:
        parts = [self.label]
        if self.runtime:
            parts.append(f"{self.runtime:.1f}s")
        if self.detail:
            parts.append(self.detail)
        return " ".join(parts)


ProgressCallback = Callable[[ProgressEvent], None]
StopPredicate = Callable[["JobOutcome"], bool]


@dataclass
class JobOutcome:
    """Terminal state of one job in a batch."""

    job: LayoutJob
    status: str  #: completed | cached | failed | timeout | cancelled
    summary: Optional[Dict[str, object]] = None
    runtime: float = 0.0
    error: Optional[str] = None
    entry: Optional[CachedResult] = None
    layout_doc: Optional[Mapping[str, object]] = None
    phases: List[Dict[str, object]] = field(default_factory=list)
    #: Per-stage cost breakdown (``FlowResult.profile()`` shape) when the
    #: run produced one — cached outcomes reload it from the entry.
    profile: Optional[Dict[str, object]] = None
    #: Trace ID the job carried across the fork boundary ("" when untraced).
    trace_id: str = ""

    @property
    def ok(self) -> bool:
        """Whether the job produced a layout (fresh or cached)."""
        return self.status in ("completed", "cached")

    @property
    def drc_clean(self) -> bool:
        return bool(self.ok and self.summary and self.summary.get("drc_clean"))

    def flow_result(self) -> FlowResult:
        """Materialise a :class:`FlowResult` from this outcome.

        Works for successful outcomes only; cached entries reload the
        stored layout, fresh uncached outcomes use the layout document the
        worker sent back.  Metrics and DRC are recomputed from the layout.
        """
        if self.entry is not None:
            return self.entry.flow_result()
        if self.layout_doc is None:
            raise RuntimeError(
                f"job {self.job.describe()!r} has no layout "
                f"(status {self.status!r}: {self.error or 'no result'})"
            )
        layout = layout_from_dict(self.layout_doc)
        return FlowResult(
            flow=str((self.summary or {}).get("flow", self.job.flow)),
            circuit=layout.netlist.name,
            layout=layout,
            metrics=compute_metrics(layout),
            drc=run_drc(layout),
            runtime=float((self.summary or {}).get("runtime_s", self.runtime)),
        )

    def row(self) -> Dict[str, object]:
        """Flat report row (for text tables and ``--json`` output)."""
        row: Dict[str, object] = {
            "job": self.job.describe(),
            "status": self.status,
            "runtime_s": round(self.runtime, 2),
        }
        if self.summary:
            for key in ("max_bends", "total_bends", "drc_clean", "drc_violations"):
                row[key] = self.summary.get(key)
        if self.error:
            row["error"] = self.error
        return row


def _child_main(job: LayoutJob, cache_root: Optional[str], conn) -> None:
    """Entry point of a worker process: run one job, report via its pipe.

    Each job gets its own pipe so that terminating one child (timeout,
    cancellation) can at worst corrupt that child's channel — never the
    reports of the other workers in the batch.
    """
    try:
        FAULTS.act("worker.run")
        cache = ResultCache(cache_root) if cache_root is not None else None
        checkpointer = (
            SolveCheckpointer(cache, job.content_hash)
            if cache is not None and job.flow == "pilp"
            else None
        )
        # Only pass the kwarg when checkpointing is live: non-pilp flows
        # (and cacheless pools) keep the plain ``run()`` contract.
        result = (
            job.run(checkpoint=checkpointer)
            if checkpointer is not None
            else job.run()
        )
        profile = result.profile()
        payload: Dict[str, object] = {
            "summary": result.summary(),
            "phases": result.phase_table(),
            "runtime": result.runtime,
            "trace": getattr(job, "trace_id", ""),
        }
        entry = None
        if cache is not None:
            put_started = CLOCK.perf()
            entry = cache.put(job, result)
            profile["cache_put_s"] = round(CLOCK.perf() - put_started, 6)
            if entry is not None and checkpointer is not None:
                # The full entry supersedes the partial one; a leftover
                # checkpoint would only shadow the cache hit's fast path.
                checkpointer.clear()
        payload["profile"] = profile
        if entry is None:
            # No cache, or the store failed (full disk): the layout must
            # travel over the pipe or the solve would be lost with it.
            payload["layout"] = layout_to_dict(result.layout)
        conn.send((True, payload))
    except BaseException as exc:  # noqa: BLE001 - isolation boundary
        conn.send((False, f"{type(exc).__name__}: {exc}"))
    finally:
        conn.close()


@dataclass
class _Running:
    job: LayoutJob
    process: multiprocessing.Process
    conn: object
    started_at: float
    deadline: Optional[float]
    message: Optional[tuple] = None
    conn_eof: bool = False
    dead_since: Optional[float] = None


class WorkerPool:
    """Schedule layout jobs over worker processes (see module docstring)."""

    def __init__(
        self,
        workers: Optional[int] = None,
        job_timeout: Optional[float] = None,
        cache: Optional[ResultCache] = None,
        progress: Optional[ProgressCallback] = None,
    ) -> None:
        if workers is None:
            workers = os.cpu_count() or 1
        if workers < 0:
            raise ValueError("workers must be >= 0 (0 = run inline)")
        self.workers = workers
        self.job_timeout = job_timeout
        self.cache = cache
        self.progress = progress

    # ------------------------------------------------------------------ #

    def run(
        self,
        jobs: Sequence[LayoutJob],
        stop_when: Optional[StopPredicate] = None,
        progress: Optional[ProgressCallback] = None,
    ) -> List[JobOutcome]:
        """Run a batch and return one outcome per job, in input order.

        ``stop_when`` is evaluated on every settled outcome; once it
        returns True the remaining running jobs are terminated and pending
        jobs are marked ``"cancelled"`` (this is what portfolio racing
        uses to cancel the losers).

        ``progress`` is a per-call callback invoked *in addition to* the
        pool-wide one: the layout service subscribes each dispatched job's
        event stream this way without touching the shared pool's state
        (the method keeps all batch state in locals, so concurrent calls
        from several threads are safe).
        """
        jobs = list(jobs)
        outcomes: Dict[int, JobOutcome] = {}

        # Deduplicate by content hash: the first occurrence executes, the
        # rest share its outcome.
        primary_index: Dict[str, int] = {}
        duplicates: Dict[int, int] = {}
        unique: List[int] = []
        for index, job in enumerate(jobs):
            self._emit("submitted", job, progress=progress)
            key = job.content_hash
            if key in primary_index:
                duplicates[index] = primary_index[key]
            else:
                primary_index[key] = index
                unique.append(index)

        if self.workers == 0:
            self._run_inline(jobs, unique, outcomes, stop_when, progress)
        else:
            self._run_processes(jobs, unique, outcomes, stop_when, progress)

        for index, primary in duplicates.items():
            source = outcomes[primary]
            outcomes[index] = JobOutcome(
                job=jobs[index],
                status=source.status,
                summary=source.summary,
                runtime=source.runtime,
                error=source.error,
                entry=source.entry,
                layout_doc=source.layout_doc,
                phases=source.phases,
                profile=source.profile,
                trace_id=getattr(jobs[index], "trace_id", "") or source.trace_id,
            )
        return [outcomes[index] for index in range(len(jobs))]

    # ------------------------------------------------------------------ #
    # inline execution
    # ------------------------------------------------------------------ #

    def _run_inline(
        self,
        jobs: List[LayoutJob],
        unique: List[int],
        outcomes: Dict[int, JobOutcome],
        stop_when: Optional[StopPredicate],
        progress: Optional[ProgressCallback] = None,
    ) -> None:
        stopped = False
        for index in unique:
            job = jobs[index]
            if stopped:
                outcomes[index] = self._settle(
                    JobOutcome(job=job, status="cancelled", error="portfolio settled"),
                    progress,
                )
                continue
            outcome = self._cache_lookup(job)
            if outcome is None:
                started = time.perf_counter()
                checkpointer = (
                    SolveCheckpointer(self.cache, job.content_hash)
                    if self.cache is not None and job.flow == "pilp"
                    else None
                )
                self._emit_resumed(job, progress)
                try:
                    FAULTS.act("worker.run")
                    result = (
                        job.run(checkpoint=checkpointer)
                        if checkpointer is not None
                        else job.run()
                    )
                except Exception as exc:  # noqa: BLE001 - job boundary
                    outcome = JobOutcome(
                        job=job,
                        status="failed",
                        runtime=time.perf_counter() - started,
                        error=f"{type(exc).__name__}: {exc}",
                        trace_id=getattr(job, "trace_id", ""),
                    )
                else:
                    profile = result.profile()
                    entry = None
                    if self.cache is not None:
                        put_started = CLOCK.perf()
                        entry = self.cache.put(job, result)
                        profile["cache_put_s"] = round(
                            CLOCK.perf() - put_started, 6
                        )
                        if entry is not None and checkpointer is not None:
                            checkpointer.clear()
                    outcome = JobOutcome(
                        job=job,
                        status="completed",
                        summary=result.summary(),
                        runtime=result.runtime,
                        entry=entry,
                        layout_doc=None if entry else layout_to_dict(result.layout),
                        phases=result.phase_table(),
                        profile=profile,
                        trace_id=getattr(job, "trace_id", ""),
                    )
            outcomes[index] = self._settle(outcome, progress)
            if stop_when and stop_when(outcome):
                stopped = True

    # ------------------------------------------------------------------ #
    # process-pool execution
    # ------------------------------------------------------------------ #

    def _run_processes(
        self,
        jobs: List[LayoutJob],
        unique: List[int],
        outcomes: Dict[int, JobOutcome],
        stop_when: Optional[StopPredicate],
        progress: Optional[ProgressCallback] = None,
    ) -> None:
        context = multiprocessing.get_context()
        cache_root = str(self.cache.root) if self.cache is not None else None
        pending = list(unique)
        running: Dict[int, _Running] = {}
        stopped = False

        def launch() -> None:
            while pending and len(running) < self.workers:
                index = pending.pop(0)
                job = jobs[index]
                cached = self._cache_lookup(job)
                if cached is not None:
                    outcomes[index] = self._settle(cached, progress)
                    if stop_when and stop_when(cached):
                        raise _StopBatch()
                    continue
                receiver, sender = context.Pipe(duplex=False)
                process = context.Process(
                    target=_child_main, args=(job, cache_root, sender), daemon=True
                )
                process.start()
                sender.close()  # the child owns the write end now
                now = time.perf_counter()
                deadline = now + self.job_timeout if self.job_timeout else None
                running[index] = _Running(job, process, receiver, now, deadline)
                self._emit("started", job, progress=progress)
                self._emit_resumed(job, progress)

        try:
            launch()
            while pending or running:
                now = time.perf_counter()
                for index in list(running):
                    state = running[index]
                    outcome = self._poll(state, now)
                    if outcome is None:
                        continue
                    del running[index]
                    state.conn.close()
                    outcomes[index] = self._settle(outcome, progress)
                    if stop_when and stop_when(outcome):
                        raise _StopBatch()
                launch()
                if pending or running:
                    time.sleep(_POLL_INTERVAL)
        except _StopBatch:
            stopped = True
        finally:
            if stopped or running or pending:
                for index, state in running.items():
                    _terminate(state.process)
                    state.conn.close()
                    outcomes[index] = self._settle(
                        JobOutcome(
                            job=state.job,
                            status="cancelled",
                            runtime=time.perf_counter() - state.started_at,
                            error="cancelled",
                        ),
                        progress,
                    )
                for index in pending:
                    outcomes[index] = self._settle(
                        JobOutcome(job=jobs[index], status="cancelled", error="cancelled"),
                        progress,
                    )

    def _receive(self, state: _Running) -> None:
        """Pull the worker's report off its pipe, if one is available.

        A corrupted channel (child terminated mid-send) poisons only this
        job: the error becomes its failure message, the batch continues.
        """
        if state.message is not None or state.conn_eof:
            return
        try:
            if state.conn.poll():
                state.message = state.conn.recv()
        except EOFError:
            state.conn_eof = True
        except Exception as exc:  # noqa: BLE001 - poisoned channel
            state.message = (
                False,
                f"worker report unreadable ({type(exc).__name__}: {exc})",
            )

    def _poll(self, state: _Running, now: float) -> Optional[JobOutcome]:
        """Settle one running job if it has finished, crashed or timed out."""
        self._receive(state)
        elapsed = now - state.started_at
        if state.message is not None:
            ok, payload = state.message
            state.process.join(timeout=5.0)
            if ok:
                entry = self.cache.peek(state.job) if self.cache is not None else None
                return JobOutcome(
                    job=state.job,
                    status="completed",
                    summary=dict(payload["summary"]),
                    runtime=float(payload["runtime"]),
                    entry=entry,
                    layout_doc=payload.get("layout"),
                    phases=list(payload["phases"]),
                    profile=payload.get("profile"),
                    trace_id=str(payload.get("trace", "")),
                )
            LOG.log(
                "worker.failed",
                level="error",
                trace=getattr(state.job, "trace_id", ""),
                key=state.job.content_hash,
                error=str(payload),
            )
            return JobOutcome(
                job=state.job,
                status="failed",
                runtime=elapsed,
                error=str(payload),
                trace_id=getattr(state.job, "trace_id", ""),
            )
        if state.deadline is not None and now > state.deadline:
            _terminate(state.process)
            LOG.log(
                "worker.timeout",
                level="warning",
                trace=getattr(state.job, "trace_id", ""),
                key=state.job.content_hash,
                timeout_s=self.job_timeout,
            )
            return JobOutcome(
                job=state.job,
                status="timeout",
                runtime=elapsed,
                error=f"timed out after {self.job_timeout:.1f}s",
                trace_id=getattr(state.job, "trace_id", ""),
            )
        if not state.process.is_alive():
            # Died without a message so far.  The result may still be in
            # flight through the queue's feeder pipe, so allow a short
            # grace period before declaring a crash (segfault, os._exit,
            # OOM kill).
            if state.dead_since is None:
                state.dead_since = now
                return None
            if now - state.dead_since < 0.5:
                return None
            LOG.log(
                "worker.crashed",
                level="error",
                trace=getattr(state.job, "trace_id", ""),
                key=state.job.content_hash,
                exit_code=state.process.exitcode,
            )
            return JobOutcome(
                job=state.job,
                status="failed",
                runtime=elapsed,
                error=f"worker crashed (exit code {state.process.exitcode})",
                trace_id=getattr(state.job, "trace_id", ""),
            )
        return None

    # ------------------------------------------------------------------ #
    # shared helpers
    # ------------------------------------------------------------------ #

    def _emit_resumed(self, job: LayoutJob, progress: Optional[ProgressCallback]) -> None:
        """Announce that the job about to run will resume from a checkpoint.

        The probe is optimistic — the worker's own (verified) checkpoint
        read stays authoritative, and the settlement-time profile is what
        the resume metrics count — but announcing it up front lets SSE
        watchers see ``resumed`` before the remaining phases run.
        """
        if self.cache is None or job.flow != "pilp":
            return
        stage = self.cache.peek_checkpoint_stage(job.content_hash)
        if stage:
            self._emit("resumed", job, detail=stage, progress=progress)

    def _cache_lookup(self, job: LayoutJob) -> Optional[JobOutcome]:
        if self.cache is None:
            return None
        entry = self.cache.get(job)
        if entry is None:
            return None
        return JobOutcome(
            job=job,
            status="cached",
            summary=dict(entry.summary),
            runtime=float(entry.summary.get("runtime_s", 0.0)),
            entry=entry,
            profile=entry.profile,
            trace_id=getattr(job, "trace_id", ""),
        )

    def _settle(
        self, outcome: JobOutcome, progress: Optional[ProgressCallback] = None
    ) -> JobOutcome:
        self._emit(
            outcome.status,
            outcome.job,
            detail=outcome.error or "",
            runtime=outcome.runtime,
            progress=progress,
        )
        return outcome

    def _emit(
        self,
        kind: str,
        job: LayoutJob,
        detail: str = "",
        runtime: float = 0.0,
        progress: Optional[ProgressCallback] = None,
    ) -> None:
        callbacks = [cb for cb in (self.progress, progress) if cb is not None]
        if not callbacks:
            return
        event = ProgressEvent(
            kind=kind,
            job_key=job.content_hash[:12],
            label=job.describe(),
            variant=job.variant,
            detail=detail,
            runtime=runtime,
        )
        for callback in callbacks:
            callback(event)


class _StopBatch(Exception):
    """Internal control-flow signal: ``stop_when`` fired."""


def _terminate(process: multiprocessing.Process) -> None:
    if process.is_alive():
        process.terminate()
        process.join(timeout=2.0)
        if process.is_alive():  # pragma: no cover - stubborn child
            process.kill()
            process.join(timeout=2.0)


class BatchRunner:
    """Facade bundling a result cache with worker-pool settings.

    This is the object the CLI and the experiment harnesses hold on to:
    construct once, submit batches through :meth:`run`.  A single runner
    may be shared by several threads (see the module docstring); the
    layout service does so, handing each dispatcher its own per-call
    ``progress`` callback.

    ``cache_dir`` also accepts an existing :class:`ResultCache` instance,
    so a runner can share one cache — and one set of hit/miss counters —
    with the code that owns it.
    """

    def __init__(
        self,
        cache_dir: Optional[Union[PathLike, ResultCache]] = None,
        workers: Optional[int] = None,
        job_timeout: Optional[float] = None,
        progress: Optional[ProgressCallback] = None,
    ) -> None:
        if isinstance(cache_dir, ResultCache):
            self.cache: Optional[ResultCache] = cache_dir
        else:
            self.cache = ResultCache(cache_dir) if cache_dir is not None else None
        self.pool = WorkerPool(
            workers=workers, job_timeout=job_timeout, cache=self.cache, progress=progress
        )

    @property
    def workers(self) -> int:
        return self.pool.workers

    def run(
        self,
        jobs: Sequence[LayoutJob],
        stop_when: Optional[StopPredicate] = None,
        progress: Optional[ProgressCallback] = None,
    ) -> List[JobOutcome]:
        """Run a batch of jobs (see :meth:`WorkerPool.run`)."""
        return self.pool.run(jobs, stop_when=stop_when, progress=progress)

    def run_one(
        self, job: LayoutJob, progress: Optional[ProgressCallback] = None
    ) -> JobOutcome:
        """Run a single job.

        ``progress`` receives the same :class:`ProgressEvent` stream a
        batch run emits (``submitted``/``started``/``completed``/...), so
        single-job callers — the layout service's SSE feed in particular —
        observe the identical lifecycle without constructing a batch.
        """
        return self.run([job], progress=progress)[0]

    def cache_stats(self) -> Dict[str, object]:
        """Hit/miss/store counters (zeros when no cache is configured)."""
        return self.cache.stats.as_dict() if self.cache is not None else {}
