"""Regeneration of Figure 11: RF simulation of manual vs P-ILP layouts.

For each of the two circuits the paper simulates (the 94 GHz LNA and the
60 GHz buffer) the harness

1. produces a manual-like baseline layout at the paper's manual-design area,
2. produces a P-ILP layout at the (smaller) area the paper's generated
   layout used,
3. runs the RF substrate over a frequency sweep for both layouts (and for
   the "as designed" reference response), producing S11/S21/S22 series,
4. reports the gain at the operating frequency next to the paper's values.

The reproduction criterion is the *shape* of Figure 11: the generated layout
matches or exceeds the manual layout's gain at the operating frequency
(because its lengths are exact and it has fewer lossy bends), while the
return-loss curves remain comparable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.errors import ExperimentError
from repro.circuits import get_circuit, pilp_area
from repro.circuits.generator import BenchmarkCircuit
from repro.core.config import PILPConfig
from repro.core.pilp import PILPLayoutGenerator
from repro.core.result import FlowResult
from repro.baselines.manual_like import ManualLikeFlow
from repro.experiments.paper_data import PAPER_FIGURE11_GAIN
from repro.experiments.report import format_text_table
from repro.layout.layout import Layout
from repro.rf.amplifier import AmplifierModel, default_frequency_sweep
from repro.rf.network import SParameters

#: Circuits that appear in Figure 11 of the paper.
FIGURE11_CIRCUITS = ("lna94", "buffer60")


@dataclass
class Figure11Series:
    """S-parameter series of one layout variant of one circuit."""

    label: str
    sparameters: SParameters
    gain_db_at_f0: float
    s11_db_at_f0: float
    s22_db_at_f0: float


@dataclass
class Figure11Result:
    """All series of one circuit plus the headline gain comparison."""

    circuit: str
    operating_frequency_ghz: float
    designed: Figure11Series
    manual: Figure11Series
    pilp: Figure11Series
    manual_flow: FlowResult
    pilp_flow: FlowResult
    paper_manual_gain_db: Optional[float] = None
    paper_pilp_gain_db: Optional[float] = None

    def gain_rows(self) -> List[Dict[str, object]]:
        return [
            {
                "circuit": self.circuit,
                "series": series.label,
                "gain_db": round(series.gain_db_at_f0, 3),
                "s11_db": round(series.s11_db_at_f0, 3),
                "s22_db": round(series.s22_db_at_f0, 3),
            }
            for series in (self.designed, self.manual, self.pilp)
        ]

    def to_text(self) -> str:
        rows = self.gain_rows()
        rows.append(
            {
                "circuit": self.circuit,
                "series": "paper: manual / p-ilp",
                "gain_db": f"{self.paper_manual_gain_db} / {self.paper_pilp_gain_db}",
                "s11_db": "-",
                "s22_db": "-",
            }
        )
        return format_text_table(
            rows,
            title=(
                f"Figure 11 ({self.circuit}) — S-parameters at "
                f"{self.operating_frequency_ghz:g} GHz"
            ),
        )

    def shape_holds(self, tolerance_db: float = 0.05) -> bool:
        """The paper's qualitative claim: P-ILP gain >= manual gain at f0."""
        return self.pilp.gain_db_at_f0 >= self.manual.gain_db_at_f0 - tolerance_db

    def series_dict(self) -> Dict[str, object]:
        """Full frequency series (for CSV/JSON export and plotting)."""
        return {
            "circuit": self.circuit,
            "frequencies_ghz": (self.designed.sparameters.frequencies / 1e9).tolist(),
            "designed": self.designed.sparameters.as_dict(),
            "manual": self.manual.sparameters.as_dict(),
            "pilp": self.pilp.sparameters.as_dict(),
        }


def _series(
    label: str,
    model: AmplifierModel,
    frequencies: np.ndarray,
    f0_hz: float,
    layout: Optional[Layout],
) -> Figure11Series:
    sparameters = model.simulate(frequencies, layout)
    return Figure11Series(
        label=label,
        sparameters=sparameters,
        gain_db_at_f0=sparameters.gain_db(f0_hz),
        s11_db_at_f0=sparameters.input_return_loss_db(f0_hz),
        s22_db_at_f0=sparameters.output_return_loss_db(f0_hz),
    )


def run_figure11_circuit(
    circuit_name: str,
    variant: Optional[str] = None,
    config: Optional[PILPConfig] = None,
    frequency_points: int = 121,
    runner: Optional["BatchRunner"] = None,
) -> Figure11Result:
    """Regenerate the Figure 11 panel of one circuit.

    With ``runner`` set, the two layout runs (manual-like and P-ILP) go
    through the batch runner — concurrent, and cached across invocations;
    the (cheap) RF simulation always runs inline.  A
    :class:`~repro.service.client.RemoteRunner` works the same way
    (``rfic-layout figure11 --service URL``): the solves happen in the
    daemon, the layouts come back from its cache.
    """
    if circuit_name not in FIGURE11_CIRCUITS:
        raise ExperimentError(
            f"the paper only simulates {FIGURE11_CIRCUITS}; got {circuit_name!r}"
        )
    config = config or PILPConfig()

    manual_circuit: BenchmarkCircuit = get_circuit(circuit_name, variant)
    pilp_circuit: BenchmarkCircuit = get_circuit(
        circuit_name, variant, area=pilp_area(circuit_name, variant)
    )

    if runner is not None:
        manual_flow, pilp_flow = _layout_flows_via_runner(
            circuit_name, manual_circuit, pilp_circuit, config, runner
        )
    else:
        manual_flow = ManualLikeFlow().generate(manual_circuit.netlist)
        pilp_flow = PILPLayoutGenerator(config).generate(pilp_circuit.netlist)

    f0_ghz = manual_circuit.netlist.operating_frequency_ghz
    f0_hz = f0_ghz * 1.0e9
    frequencies = default_frequency_sweep(f0_ghz, points=frequency_points)

    manual_model = AmplifierModel(manual_circuit.netlist, manual_circuit.chain)
    pilp_model = AmplifierModel(pilp_circuit.netlist, pilp_circuit.chain)

    designed = _series("designed", manual_model, frequencies, f0_hz, None)
    manual = _series("manual-like", manual_model, frequencies, f0_hz, manual_flow.layout)
    pilp = _series("p-ilp", pilp_model, frequencies, f0_hz, pilp_flow.layout)

    paper = PAPER_FIGURE11_GAIN.get(circuit_name, {})
    return Figure11Result(
        circuit=circuit_name,
        operating_frequency_ghz=f0_ghz,
        designed=designed,
        manual=manual,
        pilp=pilp,
        manual_flow=manual_flow,
        pilp_flow=pilp_flow,
        paper_manual_gain_db=paper.get("manual"),
        paper_pilp_gain_db=paper.get("pilp"),
    )


def _layout_flows_via_runner(
    circuit_name: str,
    manual_circuit: BenchmarkCircuit,
    pilp_circuit: BenchmarkCircuit,
    config: PILPConfig,
    runner: "BatchRunner",
) -> tuple:
    """Run the manual-like and P-ILP layouts as one runner batch."""
    from repro.runner.jobs import LayoutJob

    jobs = [
        LayoutJob(
            flow="manual",
            netlist=manual_circuit.netlist,
            label=f"{circuit_name}:manual",
        ),
        LayoutJob(
            flow="pilp",
            netlist=pilp_circuit.netlist,
            config=config,
            label=f"{circuit_name}:pilp",
        ),
    ]
    outcomes = runner.run(jobs)
    for job, outcome in zip(jobs, outcomes):
        if not outcome.ok:
            raise ExperimentError(
                f"figure11 job {job.describe()!r} {outcome.status}: {outcome.error}"
            )
    return outcomes[0].flow_result(), outcomes[1].flow_result()


def run_figure11(
    circuits: Optional[Sequence[str]] = None,
    variant: Optional[str] = None,
    config: Optional[PILPConfig] = None,
    runner: Optional["BatchRunner"] = None,
) -> List[Figure11Result]:
    """Regenerate both Figure 11 panels."""
    results = []
    for circuit_name in circuits or FIGURE11_CIRCUITS:
        results.append(run_figure11_circuit(circuit_name, variant, config, runner=runner))
    return results
