"""Formatting and persistence helpers shared by the experiment harnesses."""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Union

PathLike = Union[str, Path]


def format_text_table(
    rows: Sequence[Mapping[str, object]],
    columns: Optional[Sequence[str]] = None,
    title: str = "",
) -> str:
    """Render a list of dictionaries as a fixed-width text table.

    Missing values render as ``-``.  The column order defaults to the keys of
    the first row.
    """
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())

    def cell(value: object) -> str:
        if value is None:
            return "-"
        if isinstance(value, float):
            return f"{value:.3f}".rstrip("0").rstrip(".")
        return str(value)

    table = [[cell(row.get(column)) for column in columns] for row in rows]
    widths = [
        max(len(str(column)), *(len(line[index]) for line in table))
        for index, column in enumerate(columns)
    ]
    separator = "-+-".join("-" * width for width in widths)
    header = " | ".join(str(column).ljust(width) for column, width in zip(columns, widths))
    body = [
        " | ".join(value.ljust(width) for value, width in zip(line, widths))
        for line in table
    ]
    lines = []
    if title:
        lines.append(title)
    lines.extend([header, separator, *body])
    return "\n".join(lines)


def save_json(data: object, path: PathLike) -> Path:
    """Write any JSON-serialisable object to disk and return the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        json.dump(data, handle, indent=2, sort_keys=True, default=_json_default)
        handle.write("\n")
    return path


def save_csv(rows: Sequence[Mapping[str, object]], path: PathLike) -> Path:
    """Write a list of dictionaries as CSV (columns from the first row)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    if not rows:
        path.write_text("", encoding="utf-8")
        return path
    columns = list(rows[0].keys())
    with path.open("w", encoding="utf-8", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=columns)
        writer.writeheader()
        for row in rows:
            writer.writerow({column: row.get(column) for column in columns})
    return path


def _json_default(value: object) -> object:
    """Fallback serialisation for numpy scalars and similar objects."""
    for attribute in ("item", "tolist"):
        if hasattr(value, attribute):
            return getattr(value, attribute)()
    return str(value)


def format_runtime(seconds: float) -> str:
    """Format a runtime the way the paper prints it (``18m05s``)."""
    seconds = max(0.0, float(seconds))
    minutes = int(seconds // 60)
    remainder = seconds - 60 * minutes
    if minutes:
        return f"{minutes:d}m{remainder:04.1f}s"
    return f"{remainder:.1f}s"
