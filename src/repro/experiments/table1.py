"""Regeneration of Table 1: bend counts and runtimes, manual vs P-ILP.

For every benchmark circuit and every area setting the harness

1. runs the manual-like baseline (first area setting only — the paper has no
   manual layout for the smaller stress areas either),
2. runs the P-ILP flow,
3. collects maximum / total bend counts and runtimes,
4. attaches the paper's published values for side-by-side comparison.

Absolute bend counts depend on the reconstructed netlists and the chosen
solver budgets; the quantity the reproduction checks is the *relationship*
the paper reports: the P-ILP layouts use substantially fewer (max and total)
bends than the sequential baseline at the same area, and still produce valid
layouts at the smaller stress areas, in minutes instead of weeks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ExperimentError
from repro.circuit.netlist import LayoutArea, Netlist
from repro.circuits import area_settings, circuit_names, get_circuit
from repro.core.config import PILPConfig
from repro.core.pilp import PILPLayoutGenerator
from repro.core.result import FlowResult
from repro.baselines.manual_like import ManualLikeFlow
from repro.experiments.paper_data import paper_table1_entry
from repro.experiments.report import format_runtime, format_text_table


@dataclass
class Table1Row:
    """One (circuit, area setting) row of the regenerated Table 1."""

    circuit: str
    area_setting: int
    area_label: str
    num_microstrips: int
    num_devices: int
    manual_max_bends: Optional[int]
    manual_total_bends: Optional[int]
    manual_runtime_s: Optional[float]
    pilp_max_bends: int
    pilp_total_bends: int
    pilp_runtime_s: float
    pilp_drc_clean: bool
    paper_manual_max_bends: Optional[int] = None
    paper_manual_total_bends: Optional[int] = None
    paper_pilp_max_bends: Optional[int] = None
    paper_pilp_total_bends: Optional[int] = None
    paper_pilp_runtime: Optional[str] = None

    def as_dict(self) -> Dict[str, object]:
        return {
            "circuit": self.circuit,
            "area": self.area_label,
            "#ms": self.num_microstrips,
            "#dev": self.num_devices,
            "manual_max_bends": self.manual_max_bends,
            "pilp_max_bends": self.pilp_max_bends,
            "manual_total_bends": self.manual_total_bends,
            "pilp_total_bends": self.pilp_total_bends,
            "manual_runtime": format_runtime(self.manual_runtime_s)
            if self.manual_runtime_s is not None
            else None,
            "pilp_runtime": format_runtime(self.pilp_runtime_s),
            "pilp_drc_clean": self.pilp_drc_clean,
            "paper_pilp_max_bends": self.paper_pilp_max_bends,
            "paper_pilp_total_bends": self.paper_pilp_total_bends,
        }


@dataclass
class Table1Result:
    """The complete regenerated table plus the raw flow results."""

    rows: List[Table1Row] = field(default_factory=list)
    flow_results: Dict[str, FlowResult] = field(default_factory=dict)

    def as_dicts(self) -> List[Dict[str, object]]:
        return [row.as_dict() for row in self.rows]

    def to_text(self) -> str:
        return format_text_table(
            self.as_dicts(),
            title="Table 1 — bend counts and runtime, manual-like baseline vs P-ILP",
        )

    def shape_holds(self) -> bool:
        """The paper's qualitative claim: P-ILP needs no more bends than manual."""
        for row in self.rows:
            if row.manual_total_bends is None:
                continue
            if row.pilp_total_bends > row.manual_total_bends:
                return False
            if (
                row.manual_max_bends is not None
                and row.pilp_max_bends > row.manual_max_bends
            ):
                return False
        return True


def _make_row(
    circuit_name: str,
    setting_index: int,
    area: LayoutArea,
    netlist: Netlist,
    manual_result: Optional[FlowResult],
    pilp_result: FlowResult,
) -> Table1Row:
    """Assemble one table row from the two flow results of a setting."""
    paper = paper_table1_entry(circuit_name, setting_index)
    return Table1Row(
        circuit=netlist.name,
        area_setting=setting_index,
        area_label=f"{area.width:.0f}x{area.height:.0f}",
        num_microstrips=netlist.num_microstrips,
        num_devices=netlist.num_devices,
        manual_max_bends=(
            manual_result.metrics.max_bend_count if manual_result else None
        ),
        manual_total_bends=(
            manual_result.metrics.total_bend_count if manual_result else None
        ),
        manual_runtime_s=manual_result.runtime if manual_result else None,
        pilp_max_bends=pilp_result.metrics.max_bend_count,
        pilp_total_bends=pilp_result.metrics.total_bend_count,
        pilp_runtime_s=pilp_result.runtime,
        pilp_drc_clean=pilp_result.is_clean,
        paper_manual_max_bends=paper.manual_max_bends if paper else None,
        paper_manual_total_bends=paper.manual_total_bends if paper else None,
        paper_pilp_max_bends=paper.pilp_max_bends if paper else None,
        paper_pilp_total_bends=paper.pilp_total_bends if paper else None,
        paper_pilp_runtime=paper.pilp_runtime if paper else None,
    )


def run_table1_circuit(
    circuit_name: str,
    variant: Optional[str] = None,
    config: Optional[PILPConfig] = None,
    include_manual: bool = True,
    areas: Optional[Sequence[LayoutArea]] = None,
    runner: Optional["BatchRunner"] = None,
) -> Table1Result:
    """Regenerate the Table 1 rows of one circuit (both area settings).

    With ``runner`` set, all flow runs are submitted as one batch through
    the :mod:`repro.runner` pool (parallel across settings, cached on
    re-runs); otherwise they execute inline as before.  Any object with
    the runner interface works — a local
    :class:`~repro.runner.pool.BatchRunner` or a
    :class:`~repro.service.client.RemoteRunner` targeting a running
    ``rfic-layout serve`` daemon (``rfic-layout table1 --service URL``).
    """
    config = config or PILPConfig()
    if runner is not None:
        return _run_with_runner(
            [circuit_name], variant, config, include_manual, areas, runner
        )
    result = Table1Result()
    settings = list(areas) if areas is not None else area_settings(circuit_name, variant)

    for setting_index, area in enumerate(settings):
        circuit = get_circuit(circuit_name, variant, area=area)
        netlist = circuit.netlist

        manual_result: Optional[FlowResult] = None
        if include_manual and setting_index == 0:
            manual_result = ManualLikeFlow().generate(netlist)
            result.flow_results[f"{circuit_name}[{setting_index}].manual"] = manual_result

        pilp_result = PILPLayoutGenerator(config).generate(netlist)
        result.flow_results[f"{circuit_name}[{setting_index}].pilp"] = pilp_result

        result.rows.append(
            _make_row(
                circuit_name, setting_index, area, netlist, manual_result, pilp_result
            )
        )
    return result


def run_table1(
    circuits: Optional[Sequence[str]] = None,
    variant: Optional[str] = None,
    config: Optional[PILPConfig] = None,
    include_manual: bool = True,
    runner: Optional["BatchRunner"] = None,
) -> Table1Result:
    """Regenerate the full Table 1 (all circuits, both area settings).

    With ``runner`` set, every (circuit, area setting, flow) run across
    *all* circuits goes into a single batch, so the whole table
    parallelises over the pool's workers and re-runs are served from the
    result cache.
    """
    names = list(circuits or circuit_names())
    if runner is not None:
        return _run_with_runner(
            names, variant, config or PILPConfig(), include_manual, None, runner
        )
    combined = Table1Result()
    for circuit_name in names:
        partial = run_table1_circuit(circuit_name, variant, config, include_manual)
        combined.rows.extend(partial.rows)
        combined.flow_results.update(partial.flow_results)
    return combined


def _run_with_runner(
    names: Sequence[str],
    variant: Optional[str],
    config: PILPConfig,
    include_manual: bool,
    areas: Optional[Sequence[LayoutArea]],
    runner: "BatchRunner",
) -> Table1Result:
    """Regenerate Table 1 rows through the batch runner."""
    from repro.runner.jobs import LayoutJob

    work: List[Tuple[str, int, LayoutArea, Netlist, str, object]] = []
    for circuit_name in names:
        settings = (
            list(areas) if areas is not None else area_settings(circuit_name, variant)
        )
        for setting_index, area in enumerate(settings):
            netlist = get_circuit(circuit_name, variant, area=area).netlist
            slot = f"{circuit_name}[{setting_index}]"
            if include_manual and setting_index == 0:
                work.append(
                    (
                        circuit_name,
                        setting_index,
                        area,
                        netlist,
                        "manual",
                        LayoutJob(flow="manual", netlist=netlist, label=f"{slot}:manual"),
                    )
                )
            work.append(
                (
                    circuit_name,
                    setting_index,
                    area,
                    netlist,
                    "pilp",
                    LayoutJob(
                        flow="pilp", netlist=netlist, config=config, label=f"{slot}:pilp"
                    ),
                )
            )

    outcomes = runner.run([entry[-1] for entry in work])

    result = Table1Result()
    solved: Dict[Tuple[str, int, str], FlowResult] = {}
    for (circuit_name, setting_index, area, netlist, kind, job), outcome in zip(
        work, outcomes
    ):
        if not outcome.ok:
            raise ExperimentError(
                f"table1 job {job.describe()!r} {outcome.status}: {outcome.error}"
            )
        flow_result = outcome.flow_result()
        solved[(circuit_name, setting_index, kind)] = flow_result
        result.flow_results[f"{circuit_name}[{setting_index}].{kind}"] = flow_result

    for circuit_name, setting_index, area, netlist, kind, _job in work:
        if kind != "pilp":
            continue
        result.rows.append(
            _make_row(
                circuit_name,
                setting_index,
                area,
                netlist,
                solved.get((circuit_name, setting_index, "manual")),
                solved[(circuit_name, setting_index, "pilp")],
            )
        )
    return result
