"""The numbers the paper itself reports, for side-by-side comparison.

Keeping the published values in one place lets the experiment harnesses and
EXPERIMENTS.md print "paper vs. reproduced" tables without scattering magic
numbers around the code base.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple


@dataclass(frozen=True)
class PaperTable1Entry:
    """One row of the paper's Table 1."""

    circuit: str
    area: Tuple[float, float]
    manual_max_bends: Optional[int]
    pilp_max_bends: int
    manual_total_bends: Optional[int]
    pilp_total_bends: int
    manual_runtime: Optional[str]
    pilp_runtime: str


#: Table 1 of the paper, keyed by ``(circuit, area_setting_index)`` where
#: setting 0 is the manual-design area and setting 1 the smaller stress area.
PAPER_TABLE1: Dict[Tuple[str, int], PaperTable1Entry] = {
    ("lna94", 0): PaperTable1Entry(
        "lna94", (890.0, 615.0), 9, 4, 59, 22, "> 2 weeks", "18m05s"
    ),
    ("lna94", 1): PaperTable1Entry(
        "lna94", (845.0, 580.0), None, 5, None, 29, None, "28m13s"
    ),
    ("buffer60", 0): PaperTable1Entry(
        "buffer60", (595.0, 850.0), 4, 3, 27, 7, "> 1 week", "04m22s"
    ),
    ("buffer60", 1): PaperTable1Entry(
        "buffer60", (505.0, 720.0), None, 3, None, 13, None, "19m20s"
    ),
    ("lna60", 0): PaperTable1Entry(
        "lna60", (600.0, 855.0), 4, 2, 31, 10, "> 1 week", "06m17s"
    ),
    ("lna60", 1): PaperTable1Entry(
        "lna60", (570.0, 810.0), None, 5, None, 18, None, "07m12s"
    ),
}

#: Published microstrip / device counts (Table 1, leftmost columns).
PAPER_CIRCUIT_SIZES: Dict[str, Tuple[int, int]] = {
    "lna94": (25, 34),
    "buffer60": (14, 26),
    "lna60": (19, 28),
}

#: Figure 11 gain values at the operating frequency, in dB.
PAPER_FIGURE11_GAIN: Dict[str, Dict[str, float]] = {
    "lna94": {"manual": 17.196, "pilp": 17.912, "frequency_ghz": 94.0},
    "buffer60": {"manual": 16.791, "pilp": 16.998, "frequency_ghz": 60.0},
}


def paper_table1_entry(circuit: str, setting: int) -> Optional[PaperTable1Entry]:
    """Look up a published Table 1 row (None for unknown combinations)."""
    return PAPER_TABLE1.get((circuit, setting))
