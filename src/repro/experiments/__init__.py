"""Experiment harnesses regenerating the paper's Table 1 and Figure 11."""

from repro.experiments.paper_data import (
    PAPER_CIRCUIT_SIZES,
    PAPER_FIGURE11_GAIN,
    PAPER_TABLE1,
    PaperTable1Entry,
    paper_table1_entry,
)
from repro.experiments.report import (
    format_runtime,
    format_text_table,
    save_csv,
    save_json,
)
from repro.experiments.table1 import (
    Table1Result,
    Table1Row,
    run_table1,
    run_table1_circuit,
)
from repro.experiments.figure11 import (
    FIGURE11_CIRCUITS,
    Figure11Result,
    Figure11Series,
    run_figure11,
    run_figure11_circuit,
)

__all__ = [
    "PAPER_TABLE1",
    "PAPER_CIRCUIT_SIZES",
    "PAPER_FIGURE11_GAIN",
    "PaperTable1Entry",
    "paper_table1_entry",
    "format_text_table",
    "format_runtime",
    "save_json",
    "save_csv",
    "Table1Row",
    "Table1Result",
    "run_table1",
    "run_table1_circuit",
    "Figure11Series",
    "Figure11Result",
    "FIGURE11_CIRCUITS",
    "run_figure11",
    "run_figure11_circuit",
]
