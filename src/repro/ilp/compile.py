"""Batched constraint compilation — the fast path of the modelling layer.

The dict-based :class:`~repro.ilp.expr.LinExpr` API reads like the paper's
equations, but merging small per-term dictionaries dominates model build time
for the large pairwise-spacing families of Section 4.  This module provides a
complementary *compiled* path:

* :class:`ColumnExpr` — an affine expression pre-lowered to parallel
  ``(column index, coefficient)`` arrays plus a constant, built once per
  reusable sub-expression (a device edge, a segment box side),
* :class:`ConstraintBatch` — an accumulator of whole constraint rows as COO
  triplets that a :class:`~repro.ilp.model.Model` ingests in one call via
  :meth:`Model.add_linear_batch`.

The batch produces *identical* standard-form matrices to the legacy path:
duplicate columns within a row are merged left-to-right exactly like the dict
path merges them, coefficients below the same drop tolerance are discarded,
and ``>=`` rows are negated into ``<=`` rows the same way
``Model.to_standard_form`` does.  A property test in the suite pins this
equivalence down (same nnz, rows, bounds and objective).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple, Union

from repro.errors import ModelError
from repro.ilp.expr import LinExpr, Sense, Variable

#: Same drop tolerance as :class:`LinExpr`, so both paths agree bit-for-bit.
_DROP_TOL = 1.0e-15

#: A term is ``(variable, coefficient)``; a row is a sequence of terms plus a
#: constant offset folded into the right-hand side.
Term = Tuple[Variable, float]
TermsLike = Union["ColumnExpr", LinExpr, Variable, Sequence[Term]]


class ColumnExpr:
    """An affine expression lowered to column-index / coefficient arrays.

    Build one per reusable sub-expression, then combine cheaply inside a
    :class:`ConstraintBatch` row without any dictionary churn.
    """

    __slots__ = ("cols", "vals", "constant")

    def __init__(
        self,
        cols: Sequence[int] = (),
        vals: Sequence[float] = (),
        constant: float = 0.0,
    ) -> None:
        self.cols = list(cols)
        self.vals = [float(v) for v in vals]
        if len(self.cols) != len(self.vals):
            raise ModelError("ColumnExpr needs one coefficient per column")
        self.constant = float(constant)

    @staticmethod
    def lower(value: TermsLike, scale: float = 1.0) -> "ColumnExpr":
        """Lower an expression-like value to a :class:`ColumnExpr`."""
        if isinstance(value, ColumnExpr):
            if scale == 1.0:
                return value
            return ColumnExpr(
                value.cols, [scale * v for v in value.vals], scale * value.constant
            )
        if isinstance(value, Variable):
            return ColumnExpr([value.index], [scale], 0.0)
        if isinstance(value, LinExpr):
            return ColumnExpr(
                [var.index for var in value.coeffs],
                [scale * coeff for coeff in value.coeffs.values()],
                scale * value.constant,
            )
        # A plain sequence of (Variable, coefficient) pairs.
        cols = [var.index for var, _ in value]
        vals = [scale * float(coeff) for _, coeff in value]
        return ColumnExpr(cols, vals, 0.0)


class ConstraintBatch:
    """Accumulates constraint rows as COO triplets for one bulk insertion.

    Rows keep their insertion order, so a model built through a batch is
    row-for-row identical to the same model built constraint-by-constraint.
    """

    def __init__(self) -> None:
        self._row_cols: List[List[int]] = []
        self._row_vals: List[List[float]] = []
        self._senses: List[Sense] = []
        self._rhs: List[float] = []
        self._names: List[str] = []

    def __len__(self) -> int:
        return len(self._senses)

    @property
    def names(self) -> Sequence[str]:
        return tuple(self._names)

    # ------------------------------------------------------------------ #
    # row construction
    # ------------------------------------------------------------------ #

    def add(
        self,
        sense: Sense,
        rhs: float,
        *parts: TermsLike,
        name: str = "",
    ) -> None:
        """Append the row ``sum(parts) (sense) rhs``.

        ``parts`` are combined left to right; duplicate columns merge by
        addition in encounter order (matching the dict path) and constants
        carried by the parts are folded into the right-hand side.
        """
        if not isinstance(sense, Sense):
            raise ModelError(f"invalid constraint sense: {sense!r}")
        cols: List[int] = []
        vals: List[float] = []
        offset = 0.0
        seen: Dict[int, int] = {}
        for part in parts:
            lowered = ColumnExpr.lower(part)
            offset += lowered.constant
            for col, val in zip(lowered.cols, lowered.vals):
                slot = seen.get(col)
                if slot is None:
                    seen[col] = len(cols)
                    cols.append(col)
                    vals.append(val)
                else:
                    vals[slot] += val
        # Apply the shared drop tolerance once, after merging.
        if any(abs(v) <= _DROP_TOL for v in vals):
            kept = [(c, v) for c, v in zip(cols, vals) if abs(v) > _DROP_TOL]
            cols = [c for c, _ in kept]
            vals = [v for _, v in kept]
        self._row_cols.append(cols)
        self._row_vals.append(vals)
        self._senses.append(sense)
        self._rhs.append(float(rhs) - offset)
        self._names.append(name)

    def add_le(self, rhs: float, *parts: TermsLike, name: str = "") -> None:
        """Append ``sum(parts) <= rhs``."""
        self.add(Sense.LE, rhs, *parts, name=name)

    def add_ge(self, rhs: float, *parts: TermsLike, name: str = "") -> None:
        """Append ``sum(parts) >= rhs``."""
        self.add(Sense.GE, rhs, *parts, name=name)

    def add_eq(self, rhs: float, *parts: TermsLike, name: str = "") -> None:
        """Append ``sum(parts) == rhs``."""
        self.add(Sense.EQ, rhs, *parts, name=name)

    # ------------------------------------------------------------------ #
    # consumption (used by Model)
    # ------------------------------------------------------------------ #

    def iter_rows(self) -> Iterable[Tuple[Sense, List[int], List[float], float, str]]:
        """Iterate rows as ``(sense, cols, vals, rhs, name)`` tuples."""
        return zip(self._senses, self._row_cols, self._row_vals, self._rhs, self._names)

    def to_constraints(self, variables: Sequence[Variable]) -> list:
        """Materialise the rows as legacy :class:`Constraint` objects.

        Used when a caller inspects ``model.constraints`` on a model built
        through the fast path — correctness tooling only, not a hot path.
        """
        return rows_to_constraints(self.iter_rows(), variables)


def rows_to_constraints(rows, variables: Sequence[Variable]) -> list:
    """Materialise compiled ``(sense, cols, vals, rhs, name)`` rows.

    Shared by :class:`ConstraintBatch` and the model's snapshotted batch
    blocks so the two views of the same rows can never diverge.
    """
    from repro.ilp.expr import Constraint

    constraints = []
    for sense, cols, vals, rhs, name in rows:
        expr = LinExpr({variables[col]: val for col, val in zip(cols, vals)}, -rhs)
        constraints.append(Constraint(expr, sense, name))
    return constraints
