"""Solver backend registry.

Two backends are provided:

* ``"highs"`` — SciPy's HiGHS branch-and-cut MILP solver (default),
* ``"branch-and-bound"`` — a pure-Python reference implementation.

``get_backend`` accepts either the canonical name or a few common aliases.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.errors import SolverError
from repro.ilp.backends.base import SolverBackend
from repro.ilp.backends.branch_bound import BranchAndBoundBackend
from repro.ilp.backends.highs import HighsBackend

_FACTORIES: Dict[str, Callable[[], SolverBackend]] = {
    "highs": HighsBackend,
    "scipy": HighsBackend,
    "milp": HighsBackend,
    "branch-and-bound": BranchAndBoundBackend,
    "bnb": BranchAndBoundBackend,
    "branch_and_bound": BranchAndBoundBackend,
}


def get_backend(name: str) -> SolverBackend:
    """Instantiate a solver backend by name.

    Raises :class:`~repro.errors.SolverError` for unknown names.
    """
    key = name.strip().lower()
    try:
        factory = _FACTORIES[key]
    except KeyError as exc:
        raise SolverError(
            f"unknown solver backend {name!r}; available: {sorted(set(_FACTORIES))}"
        ) from exc
    return factory()


def available_backends() -> list[str]:
    """Return the canonical backend names."""
    return ["highs", "branch-and-bound"]


__all__ = [
    "SolverBackend",
    "HighsBackend",
    "BranchAndBoundBackend",
    "get_backend",
    "available_backends",
]
