"""Common interface for MILP solver backends."""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Dict

import numpy as np

from repro.ilp.expr import Variable
from repro.ilp.solution import Solution

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.ilp.model import Model, StandardForm


class SolverBackend(abc.ABC):
    """Abstract base class for MILP backends.

    A backend consumes a :class:`~repro.ilp.model.Model`, solves it and
    returns a :class:`~repro.ilp.solution.Solution`.  Concrete backends are
    registered in :mod:`repro.ilp.backends` and selected by name.
    """

    #: Short name used to select the backend (e.g. ``"highs"``).
    name: str = "abstract"

    @abc.abstractmethod
    def solve(
        self,
        model: "Model",
        time_limit: float | None = None,
        mip_gap: float | None = None,
        **options,
    ) -> Solution:
        """Solve ``model`` and return a :class:`Solution`."""

    # ------------------------------------------------------------------ #
    # shared utilities
    # ------------------------------------------------------------------ #

    @staticmethod
    def assignment_from_vector(
        form: "StandardForm", x: np.ndarray
    ) -> Dict[Variable, float]:
        """Convert a raw solution vector to a variable->value mapping.

        Integer variables are rounded to the nearest integer and clipped to
        their bounds to remove solver round-off.
        """
        values: Dict[Variable, float] = {}
        for var, raw in zip(form.variables, x):
            value = float(raw)
            if var.is_integer:
                value = float(round(value))
            value = min(max(value, var.lb), var.ub)
            values[var] = value
        return values

    @staticmethod
    def objective_value(form: "StandardForm", x: np.ndarray) -> float:
        """Evaluate the (sign-corrected) objective for a raw vector."""
        value = float(form.objective @ x) + form.objective_constant
        return value
