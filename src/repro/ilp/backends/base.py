"""Common interface for MILP solver backends."""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Dict, Mapping, Optional, Union

import numpy as np

from repro.ilp.expr import Variable
from repro.ilp.solution import Solution

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.ilp.model import Model, StandardForm


class SolverBackend(abc.ABC):
    """Abstract base class for MILP backends.

    A backend consumes a :class:`~repro.ilp.model.Model`, solves it and
    returns a :class:`~repro.ilp.solution.Solution`.  Concrete backends are
    registered in :mod:`repro.ilp.backends` and selected by name.
    """

    #: Short name used to select the backend (e.g. ``"highs"``).
    name: str = "abstract"

    @abc.abstractmethod
    def solve(
        self,
        model: "Model",
        time_limit: float | None = None,
        mip_gap: float | None = None,
        warm_start: Mapping[Union[Variable, str], float] | None = None,
        **options,
    ) -> Solution:
        """Solve ``model`` and return a :class:`Solution`.

        ``warm_start`` maps variables (or variable names) to suggested
        values; backends that cannot exploit it must still accept and ignore
        it.
        """

    # ------------------------------------------------------------------ #
    # shared utilities
    # ------------------------------------------------------------------ #

    @staticmethod
    def assignment_from_vector(
        form: "StandardForm", x: np.ndarray
    ) -> Dict[Variable, float]:
        """Convert a raw solution vector to a variable->value mapping.

        Integer variables are rounded to the nearest integer and clipped to
        their bounds to remove solver round-off.
        """
        values: Dict[Variable, float] = {}
        for var, raw in zip(form.variables, x):
            value = float(raw)
            if var.is_integer:
                value = float(round(value))
            value = min(max(value, var.lb), var.ub)
            values[var] = value
        return values

    @staticmethod
    def objective_value(form: "StandardForm", x: np.ndarray) -> float:
        """Evaluate the (sign-corrected) objective for a raw vector."""
        value = float(form.objective @ x) + form.objective_constant
        return value

    @staticmethod
    def warm_start_vector(
        form: "StandardForm",
        warm_start: Mapping[Union[Variable, str], float],
    ) -> Optional[np.ndarray]:
        """Build a full solution vector from a (possibly partial) warm start.

        Keys may be :class:`Variable` objects of this model or plain variable
        names; names that do not exist in the model are silently skipped so a
        previous phase's solution can be replayed onto a related model.
        Missing variables default to the bound-clamped zero, every provided
        value is clamped into its variable's bounds, and integer variables
        are rounded.  Returns ``None`` when nothing matched.
        """
        import collections.abc

        from repro.errors import SolverError

        if not isinstance(warm_start, collections.abc.Mapping):
            raise SolverError(
                "warm_start must map variables (or variable names) to values, "
                f"got {type(warm_start).__name__}"
            )
        by_name = {var.name: index for index, var in enumerate(form.variables)}
        x = np.clip(np.zeros(len(form.variables)), form.lower, form.upper)
        matched = 0
        for key, value in warm_start.items():
            if isinstance(key, Variable):
                index = by_name.get(key.name)
            else:
                index = by_name.get(str(key))
            if index is None:
                continue
            x[index] = float(value)
            matched += 1
        if matched == 0:
            return None
        x = np.clip(x, form.lower, form.upper)
        integer_mask = form.integrality != 0
        x[integer_mask] = np.round(x[integer_mask])
        return x
