"""HiGHS MILP backend built on :func:`scipy.optimize.milp`.

This is the default backend.  SciPy ships the open-source HiGHS solver, which
plays the role that Gurobi played in the original paper: an exact
branch-and-cut MILP solver.  Cold solves go through ``scipy.optimize.milp``
exactly as before.

Two fast-path features additionally drive HiGHS through the *bundled* binding
(``scipy.optimize._highspy``), because SciPy's public ``milp`` wrapper cannot
express them:

* **warm starts** — a (possibly partial) incumbent from a previous, related
  solve is injected with ``Highs.setSolution`` so the MIP search starts from
  a good primal bound instead of hunting for a first feasible point, and
* **progressive solves** — the time budget is split into slices; after each
  slice the incumbent is carried into the next as a warm start, and the solve
  stops early once an additional slice no longer improves the incumbent
  meaningfully.  The soft phase models of the progressive flow have a
  structurally weak LP bound (their big-M relaxation bounds the objective by
  zero), so the MIP gap criterion never fires and the stall criterion is what
  actually ends the solve.

When the bundled binding is unavailable the backend silently degrades to the
plain ``milp`` path; warm starts are then ignored.
"""

from __future__ import annotations

import time
from typing import Mapping, Optional, Tuple, Union

import numpy as np
from scipy import optimize, sparse

from repro.errors import SolverError
from repro.ilp.backends.base import SolverBackend
from repro.ilp.expr import Variable
from repro.ilp.solution import Solution, SolveStatus

#: Default number of budget slices of a progressive solve.
DEFAULT_PROGRESSIVE_SLICES = 4

#: A slice must improve the incumbent by this relative amount for the
#: progressive solve to keep going.
DEFAULT_MIN_IMPROVEMENT = 0.01


def _highspy_core():
    """Return SciPy's bundled HiGHS binding, or ``None`` if unavailable."""
    try:  # pragma: no cover - exercised indirectly
        import scipy.optimize._highspy._core as core

        # The private binding has changed names across SciPy releases; only
        # use it when everything the warm-start path needs is present.
        required = ("HighsLp", "HighsOptions", "HighsSolution", "MatrixFormat")
        if not all(hasattr(core, name) for name in required):
            return None
        if not (hasattr(core, "_Highs") or hasattr(core, "Highs")):
            return None
        return core
    except Exception:  # pragma: no cover - defensive
        return None


class HighsBackend(SolverBackend):
    """Solve models with SciPy's HiGHS mixed-integer solver."""

    name = "highs"

    def solve(
        self,
        model,
        time_limit: float | None = None,
        mip_gap: float | None = None,
        warm_start: Mapping[Union[Variable, str], float] | None = None,
        **options,
    ) -> Solution:
        form = model.to_standard_form()
        start = time.perf_counter()

        if form.num_variables == 0:
            # An empty model is trivially optimal with objective == constant.
            return Solution(
                status=SolveStatus.OPTIMAL,
                objective=form.objective_constant,
                values={},
                solve_time=0.0,
                backend=self.name,
            )

        display = bool(options.pop("display", False))
        node_limit = options.pop("node_limit", None)
        presolve = options.pop("presolve", None)
        progressive = options.pop("progressive", None)
        slices = int(options.pop("progressive_slices", DEFAULT_PROGRESSIVE_SLICES))
        min_improvement = float(
            options.pop("min_improvement", DEFAULT_MIN_IMPROVEMENT)
        )
        if options:
            raise SolverError(
                f"unknown options for the HiGHS backend: {sorted(options)}"
            )

        warm_vector = None
        if warm_start is not None:
            warm_vector = self.warm_start_vector(form, warm_start)

        core = _highspy_core()
        is_mip = int(np.count_nonzero(form.integrality)) > 0
        use_direct = core is not None and is_mip and (
            warm_vector is not None or bool(progressive)
        )
        if use_direct:
            return self._solve_direct(
                core,
                form,
                start,
                time_limit=time_limit,
                mip_gap=mip_gap,
                warm_vector=warm_vector,
                display=display,
                presolve=presolve,
                node_limit=node_limit,
                progressive=bool(progressive),
                slices=max(1, slices),
                min_improvement=min_improvement,
            )
        return self._solve_scipy(
            form,
            start,
            time_limit=time_limit,
            mip_gap=mip_gap,
            display=display,
            node_limit=node_limit,
            presolve=presolve,
        )

    # ------------------------------------------------------------------ #
    # the classic scipy.optimize.milp path (cold solves)
    # ------------------------------------------------------------------ #

    def _solve_scipy(
        self,
        form,
        start: float,
        time_limit,
        mip_gap,
        display: bool,
        node_limit,
        presolve,
    ) -> Solution:
        objective = form.objective.copy()
        if form.maximize:
            objective = -objective

        constraints = []
        if form.a_ub.shape[0] > 0:
            constraints.append(
                optimize.LinearConstraint(
                    form.a_ub, -np.inf * np.ones(form.a_ub.shape[0]), form.b_ub
                )
            )
        if form.a_eq.shape[0] > 0:
            constraints.append(
                optimize.LinearConstraint(form.a_eq, form.b_eq, form.b_eq)
            )

        bounds = optimize.Bounds(form.lower, form.upper)

        milp_options = {"disp": display}
        if time_limit is not None:
            milp_options["time_limit"] = float(time_limit)
        if mip_gap is not None:
            milp_options["mip_rel_gap"] = float(mip_gap)
        if node_limit is not None:
            milp_options["node_limit"] = int(node_limit)
        if presolve is not None:
            milp_options["presolve"] = bool(presolve)

        try:
            result = optimize.milp(
                c=objective,
                constraints=constraints,
                integrality=form.integrality,
                bounds=bounds,
                options=milp_options,
            )
        except Exception as exc:  # pragma: no cover - defensive
            raise SolverError(f"HiGHS backend failed: {exc}") from exc

        elapsed = time.perf_counter() - start
        return self._interpret(form, result, elapsed)

    # ------------------------------------------------------------------ #
    # the direct (warm-started / progressive) path
    # ------------------------------------------------------------------ #

    def _build_lp(self, core, form):
        """Lower a StandardForm to a ``HighsLp`` (built once, reused)."""
        num_ub = form.a_ub.shape[0]
        num_eq = form.a_eq.shape[0]
        if num_ub and num_eq:
            a = sparse.vstack([form.a_ub, form.a_eq], format="csc")
        elif num_ub:
            a = form.a_ub.tocsc()
        else:
            a = form.a_eq.tocsc()
        row_lower = np.concatenate(
            [np.full(num_ub, -core.kHighsInf), form.b_eq]
        )
        row_upper = np.concatenate([form.b_ub, form.b_eq])

        objective = form.objective.copy()
        if form.maximize:
            objective = -objective

        lp = core.HighsLp()
        lp.num_col_ = form.num_variables
        lp.num_row_ = num_ub + num_eq
        lp.col_cost_ = objective
        lp.col_lower_ = form.lower
        lp.col_upper_ = form.upper
        lp.row_lower_ = row_lower
        lp.row_upper_ = row_upper
        lp.a_matrix_.format_ = core.MatrixFormat.kColwise
        lp.a_matrix_.num_col_ = form.num_variables
        lp.a_matrix_.num_row_ = num_ub + num_eq
        lp.a_matrix_.start_ = a.indptr
        lp.a_matrix_.index_ = a.indices
        lp.a_matrix_.value_ = a.data
        lp.integrality_ = [
            core.HighsVarType.kInteger if flag else core.HighsVarType.kContinuous
            for flag in form.integrality
        ]
        return lp

    def _run_direct_once(
        self,
        core,
        lp,
        time_limit,
        mip_gap,
        warm_vector,
        display: bool,
        presolve,
        node_limit=None,
    ) -> Tuple[object, Optional[np.ndarray], Optional[float], Optional[int]]:
        """One HiGHS run; returns ``(model_status, x, gap, nodes)``."""
        highs_cls = getattr(core, "_Highs", None) or getattr(core, "Highs")
        highs = highs_cls()
        opts = core.HighsOptions()
        opts.output_flag = display
        if time_limit is not None:
            opts.time_limit = float(time_limit)
        if mip_gap is not None:
            opts.mip_rel_gap = float(mip_gap)
        if presolve is not None:
            opts.presolve = "on" if presolve else "off"
        if node_limit is not None:
            opts.mip_max_nodes = int(node_limit)
        if highs.passOptions(opts) == core.HighsStatus.kError:
            raise SolverError("HiGHS rejected the solver options")
        if highs.passModel(lp) == core.HighsStatus.kError:
            raise SolverError("HiGHS rejected the model")
        if warm_vector is not None:
            sol = core.HighsSolution()
            sol.col_value = np.asarray(warm_vector, dtype=float)
            highs.setSolution(sol)
        if highs.run() == core.HighsStatus.kError:
            return highs.getModelStatus(), None, None, None

        status = highs.getModelStatus()
        info = highs.getInfo()
        has_solution = np.isfinite(info.objective_function_value)
        x = None
        if has_solution:
            x = np.asarray(highs.getSolution().col_value, dtype=float)
            if x.size == 0 or not np.all(np.isfinite(x)):
                x = None
        gap = getattr(info, "mip_gap", None)
        gap = float(gap) if gap is not None and np.isfinite(gap) else None
        nodes = getattr(info, "mip_node_count", None)
        nodes = int(nodes) if nodes is not None and nodes >= 0 else None
        return status, x, gap, nodes

    def _solve_direct(
        self,
        core,
        form,
        start: float,
        time_limit,
        mip_gap,
        warm_vector,
        display: bool,
        presolve,
        node_limit,
        progressive: bool,
        slices: int,
        min_improvement: float,
    ) -> Solution:
        lp = self._build_lp(core, form)
        sign = -1.0 if form.maximize else 1.0

        if not progressive or time_limit is None or slices <= 1:
            status, x, gap, nodes = self._run_direct_once(
                core, lp, time_limit, mip_gap, warm_vector, display, presolve,
                node_limit,
            )
            return self._interpret_direct(
                core, form, status, x, gap, time.perf_counter() - start,
                iterations=nodes,
            )

        # Progressive: spend the budget in slices, warm-starting each from
        # the best incumbent so far, and stop once a slice stalls.  The
        # caller-provided warm start is only ever a *seed* — it may be
        # infeasible, so it never becomes the returned incumbent itself.
        deadline = start + float(time_limit)
        slice_budget = float(time_limit) / slices
        best_x: Optional[np.ndarray] = None
        best_signed = np.inf
        last_status, last_gap = None, None
        total_nodes: Optional[int] = None
        used_slices = 0
        stalled = False
        while True:
            remaining = deadline - time.perf_counter()
            if used_slices > 0 and remaining <= 0.05:
                break
            # The first slice always runs, even on a microscopic budget, so
            # an exhausted clock reports TIME_LIMIT rather than ERROR.
            budget = min(slice_budget, max(remaining, 0.05))
            seed = best_x if best_x is not None else warm_vector
            status, x, gap, nodes = self._run_direct_once(
                core, lp, budget, mip_gap, seed, display, presolve, node_limit
            )
            used_slices += 1
            last_status, last_gap = status, gap
            if nodes is not None:
                total_nodes = (total_nodes or 0) + nodes
            if status == core.HighsModelStatus.kInfeasible:
                # Infeasibility is terminal.
                return self._interpret_direct(
                    core, form, status, None, gap, time.perf_counter() - start,
                    iterations=total_nodes,
                )
            if x is None and status not in (
                core.HighsModelStatus.kTimeLimit,
                core.HighsModelStatus.kIterationLimit,
                core.HighsModelStatus.kSolutionLimit,
            ):
                # A solver error (not a budget limit) would repeat identically
                # on every retry — fail now instead of hot-looping until the
                # deadline.
                break
            if x is not None:
                signed = sign * float(form.objective @ x)
                improvement = best_signed - signed
                threshold = min_improvement * max(1.0, abs(best_signed))
                improved_enough = (
                    not np.isfinite(best_signed) or improvement > threshold
                )
                if signed < best_signed:
                    best_x, best_signed = x, signed
                if status == core.HighsModelStatus.kOptimal:
                    break
                if not improved_enough:
                    stalled = True
                    break
            elif best_x is not None:
                # The slice found nothing new; keep the previous incumbent.
                stalled = True
                break

        elapsed = time.perf_counter() - start
        solution = self._interpret_direct(
            core, form, last_status, best_x, last_gap, elapsed,
            iterations=total_nodes,
        )
        if stalled and solution.is_feasible:
            solution = Solution(
                status=SolveStatus.FEASIBLE,
                objective=solution.objective,
                values=solution.values,
                solve_time=elapsed,
                backend=self.name,
                gap=solution.gap,
                message=(
                    f"progressive solve stalled after {used_slices} slice(s); "
                    f"{solution.message}"
                ).strip("; "),
                iterations=total_nodes,
            )
        return solution

    def _interpret_direct(
        self, core, form, status, x, gap, elapsed: float,
        iterations: Optional[int] = None,
    ) -> Solution:
        """Map a direct HiGHS run to a :class:`Solution`."""
        has_solution = x is not None
        hs = core.HighsModelStatus
        if status == hs.kOptimal and has_solution:
            our_status = SolveStatus.OPTIMAL
        elif status in (hs.kTimeLimit, hs.kIterationLimit) and has_solution:
            our_status = SolveStatus.FEASIBLE
        elif status in (hs.kTimeLimit, hs.kIterationLimit):
            our_status = SolveStatus.TIME_LIMIT
        elif status == hs.kInfeasible:
            our_status = SolveStatus.INFEASIBLE
        elif status in (hs.kUnbounded, hs.kUnboundedOrInfeasible):
            our_status = SolveStatus.UNBOUNDED
        elif has_solution:
            our_status = SolveStatus.FEASIBLE
        else:
            our_status = SolveStatus.ERROR

        message = f"HiGHS status: {status}" if status is not None else ""
        if not has_solution:
            return Solution(
                status=our_status,
                solve_time=elapsed,
                backend=self.name,
                message=message,
                gap=gap,
                iterations=iterations,
            )
        values = self.assignment_from_vector(form, x)
        vector = np.array([values[var] for var in form.variables])
        objective = self.objective_value(form, vector)
        return Solution(
            status=our_status,
            objective=objective,
            values=values,
            solve_time=elapsed,
            backend=self.name,
            message=message,
            gap=gap,
            iterations=iterations,
        )

    # ------------------------------------------------------------------ #

    def _interpret(self, form, result, elapsed: float) -> Solution:
        """Map SciPy's ``OptimizeResult`` to a :class:`Solution`."""
        # scipy.optimize.milp status codes:
        #   0 optimal, 1 iteration/time limit, 2 infeasible, 3 unbounded, 4 other
        status_code = int(getattr(result, "status", 4))
        x = getattr(result, "x", None)
        message = str(getattr(result, "message", ""))
        gap = getattr(result, "mip_gap", None)
        gap = float(gap) if gap is not None else None
        nodes = getattr(result, "mip_node_count", None)
        nodes = int(nodes) if nodes is not None and np.isfinite(nodes) else None

        has_solution = x is not None and np.all(np.isfinite(x))

        if status_code == 0 and has_solution:
            status = SolveStatus.OPTIMAL
        elif status_code == 1 and has_solution:
            status = SolveStatus.FEASIBLE
        elif status_code == 1:
            status = SolveStatus.TIME_LIMIT
        elif status_code == 2:
            status = SolveStatus.INFEASIBLE
        elif status_code == 3:
            status = SolveStatus.UNBOUNDED
        elif has_solution:
            status = SolveStatus.FEASIBLE
        else:
            status = SolveStatus.ERROR

        if not has_solution:
            return Solution(
                status=status,
                solve_time=elapsed,
                backend=self.name,
                message=message,
                gap=gap,
                iterations=nodes,
            )

        values = self.assignment_from_vector(form, np.asarray(x, dtype=float))
        vector = np.array([values[var] for var in form.variables])
        objective = self.objective_value(form, vector)
        return Solution(
            status=status,
            objective=objective,
            values=values,
            solve_time=elapsed,
            backend=self.name,
            message=message,
            gap=gap,
            iterations=nodes,
        )
