"""HiGHS MILP backend built on :func:`scipy.optimize.milp`.

This is the default backend.  SciPy ships the open-source HiGHS solver, which
plays the role that Gurobi played in the original paper: an exact
branch-and-cut MILP solver.  The backend translates the model's standard form
into SciPy's ``LinearConstraint``/``Bounds`` objects, forwards time-limit and
gap options, and converts the result back into a :class:`Solution`.
"""

from __future__ import annotations

import time

import numpy as np
from scipy import optimize, sparse

from repro.errors import SolverError
from repro.ilp.backends.base import SolverBackend
from repro.ilp.solution import Solution, SolveStatus


class HighsBackend(SolverBackend):
    """Solve models with SciPy's HiGHS mixed-integer solver."""

    name = "highs"

    def solve(
        self,
        model,
        time_limit: float | None = None,
        mip_gap: float | None = None,
        **options,
    ) -> Solution:
        form = model.to_standard_form()
        start = time.perf_counter()

        if form.num_variables == 0:
            # An empty model is trivially optimal with objective == constant.
            return Solution(
                status=SolveStatus.OPTIMAL,
                objective=form.objective_constant,
                values={},
                solve_time=0.0,
                backend=self.name,
            )

        objective = form.objective.copy()
        if form.maximize:
            objective = -objective

        constraints = []
        if form.a_ub.shape[0] > 0:
            constraints.append(
                optimize.LinearConstraint(
                    form.a_ub, -np.inf * np.ones(form.a_ub.shape[0]), form.b_ub
                )
            )
        if form.a_eq.shape[0] > 0:
            constraints.append(
                optimize.LinearConstraint(form.a_eq, form.b_eq, form.b_eq)
            )

        bounds = optimize.Bounds(form.lower, form.upper)

        milp_options = {"disp": bool(options.pop("display", False))}
        if time_limit is not None:
            milp_options["time_limit"] = float(time_limit)
        if mip_gap is not None:
            milp_options["mip_rel_gap"] = float(mip_gap)
        node_limit = options.pop("node_limit", None)
        if node_limit is not None:
            milp_options["node_limit"] = int(node_limit)
        presolve = options.pop("presolve", None)
        if presolve is not None:
            milp_options["presolve"] = bool(presolve)
        if options:
            raise SolverError(
                f"unknown options for the HiGHS backend: {sorted(options)}"
            )

        try:
            result = optimize.milp(
                c=objective,
                constraints=constraints,
                integrality=form.integrality,
                bounds=bounds,
                options=milp_options,
            )
        except Exception as exc:  # pragma: no cover - defensive
            raise SolverError(f"HiGHS backend failed: {exc}") from exc

        elapsed = time.perf_counter() - start
        return self._interpret(form, result, elapsed)

    # ------------------------------------------------------------------ #

    def _interpret(self, form, result, elapsed: float) -> Solution:
        """Map SciPy's ``OptimizeResult`` to a :class:`Solution`."""
        # scipy.optimize.milp status codes:
        #   0 optimal, 1 iteration/time limit, 2 infeasible, 3 unbounded, 4 other
        status_code = int(getattr(result, "status", 4))
        x = getattr(result, "x", None)
        message = str(getattr(result, "message", ""))
        gap = getattr(result, "mip_gap", None)
        gap = float(gap) if gap is not None else None

        has_solution = x is not None and np.all(np.isfinite(x))

        if status_code == 0 and has_solution:
            status = SolveStatus.OPTIMAL
        elif status_code == 1 and has_solution:
            status = SolveStatus.FEASIBLE
        elif status_code == 1:
            status = SolveStatus.TIME_LIMIT
        elif status_code == 2:
            status = SolveStatus.INFEASIBLE
        elif status_code == 3:
            status = SolveStatus.UNBOUNDED
        elif has_solution:
            status = SolveStatus.FEASIBLE
        else:
            status = SolveStatus.ERROR

        if not has_solution:
            return Solution(
                status=status,
                solve_time=elapsed,
                backend=self.name,
                message=message,
                gap=gap,
            )

        values = self.assignment_from_vector(form, np.asarray(x, dtype=float))
        vector = np.array([values[var] for var in form.variables])
        objective = self.objective_value(form, vector)
        return Solution(
            status=status,
            objective=objective,
            values=values,
            solve_time=elapsed,
            backend=self.name,
            message=message,
            gap=gap,
        )


def _ensure_csr(matrix) -> sparse.csr_matrix:  # pragma: no cover - helper
    if sparse.issparse(matrix):
        return matrix.tocsr()
    return sparse.csr_matrix(matrix)
