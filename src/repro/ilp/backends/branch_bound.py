"""Pure-Python branch-and-bound MILP backend.

This backend exists for two reasons:

1. It demonstrates that the paper's formulation can be solved without any
   external MILP engine: LP relaxations are solved with
   :func:`scipy.optimize.linprog` (dual simplex / interior point via HiGHS'
   LP code, which is exposed through ``method="highs"``), and integrality is
   enforced by branching.
2. It provides an independent cross-check of the HiGHS MILP backend in the
   test-suite: both backends must agree on optimal objective values for small
   models.

The implementation is a classic best-first branch-and-bound with
most-fractional branching, bound-based pruning, optional time limits and a
simple rounding heuristic to obtain early incumbents.  Performance details
worth knowing:

* every node's LP relaxation is solved exactly once — when the node is
  created — and the solution is carried on the node, so popping a node never
  re-solves its LP;
* a caller-provided warm start is rounded and repaired into an initial
  incumbent before the search begins, which both prunes the tree and
  guarantees the progressive flow a feasible fallback;
* the node ordering is fully deterministic: ties in the LP bound are broken
  by node creation sequence, so identical models explore identical trees.

It is not meant to be competitive with HiGHS on the large Phase-1 models —
the progressive flow uses the HiGHS backend by default — but it solves the
unit-test sized models in milliseconds and medium models in seconds.
"""

from __future__ import annotations

import heapq
import itertools
import math
import time
from dataclasses import dataclass, field
from typing import List, Mapping, Optional, Tuple, Union

import numpy as np
from scipy import optimize

from repro.ilp.backends.base import SolverBackend
from repro.ilp.expr import Variable
from repro.ilp.solution import Solution, SolveStatus

#: Integrality tolerance: an LP value within this distance of an integer is
#: treated as integral.
_INT_TOL = 1.0e-6

#: Optimality tolerance when comparing node bounds against the incumbent.
_BOUND_TOL = 1.0e-9


@dataclass(order=True)
class _Node:
    """A subproblem in the branch-and-bound tree.

    Ordering is ``(bound, sequence)``: best-first on the LP bound with the
    creation sequence as a deterministic tie-break, so runs are reproducible
    node-for-node.
    """

    bound: float
    sequence: int
    lower: np.ndarray = field(compare=False)
    upper: np.ndarray = field(compare=False)
    x: np.ndarray = field(compare=False)
    depth: int = field(compare=False, default=0)


class BranchAndBoundBackend(SolverBackend):
    """Best-first branch-and-bound over HiGHS LP relaxations."""

    name = "branch-and-bound"

    def __init__(
        self,
        max_nodes: int = 200_000,
        rounding_heuristic: bool = True,
    ) -> None:
        self.max_nodes = max_nodes
        self.rounding_heuristic = rounding_heuristic

    # ------------------------------------------------------------------ #

    def solve(
        self,
        model,
        time_limit: float | None = None,
        mip_gap: float | None = None,
        warm_start: Mapping[Union[Variable, str], float] | None = None,
        **options,
    ) -> Solution:
        max_nodes = int(options.pop("max_nodes", self.max_nodes))
        if options:
            from repro.errors import SolverError

            raise SolverError(
                f"unknown options for the branch-and-bound backend: {sorted(options)}"
            )

        form = model.to_standard_form()
        start = time.perf_counter()
        deadline = start + time_limit if time_limit is not None else None

        if form.num_variables == 0:
            return Solution(
                status=SolveStatus.OPTIMAL,
                objective=form.objective_constant,
                values={},
                backend=self.name,
                iterations=0,
            )

        objective = form.objective.copy()
        if form.maximize:
            objective = -objective

        integer_indices = np.flatnonzero(form.integrality)

        root_lower = form.lower.copy()
        root_upper = form.upper.copy()

        incumbent_x: Optional[np.ndarray] = None
        incumbent_value = math.inf
        best_bound = -math.inf
        proven_infeasible = False

        # Seed the incumbent from a caller-provided warm start: round its
        # integer components, fix them, and let the LP repair the rest.
        if warm_start is not None:
            vector = self.warm_start_vector(form, warm_start)
            if vector is not None:
                seeded = self._round_and_check(
                    form, objective, vector, integer_indices, deadline
                )
                if seeded is not None:
                    incumbent_value, incumbent_x = seeded

        counter = itertools.count()
        heap: List[_Node] = []

        def deadline_expired() -> bool:
            # A failed LP right at the budget boundary is a timeout, not a
            # proof of infeasibility (linprog may stop on its own
            # time_limit slightly before our clock does).
            return deadline is not None and time.perf_counter() > deadline - 0.1

        nodes_explored = 0
        hit_limit = False

        root_result = self._solve_lp(objective, form, root_lower, root_upper, deadline)
        if root_result is None:
            if deadline_expired():
                hit_limit = True
            else:
                proven_infeasible = True
        else:
            root_bound, root_x = root_result
            best_bound = root_bound
            heapq.heappush(
                heap,
                _Node(root_bound, next(counter), root_lower, root_upper, root_x, 0),
            )
            if self.rounding_heuristic:
                rounded = self._round_and_check(
                    form, objective, root_x, integer_indices, deadline
                )
                if rounded is not None and rounded[0] < incumbent_value:
                    incumbent_value, incumbent_x = rounded

        while heap:
            if deadline is not None and time.perf_counter() > deadline:
                hit_limit = True
                break
            if nodes_explored >= max_nodes:
                hit_limit = True
                break

            node = heapq.heappop(heap)
            best_bound = node.bound
            if node.bound >= incumbent_value - _BOUND_TOL:
                # Everything remaining is at least as bad as the incumbent.
                best_bound = incumbent_value
                break
            if mip_gap is not None and incumbent_x is not None:
                gap = _relative_gap(incumbent_value, node.bound)
                if gap <= mip_gap:
                    break

            # The node's LP was solved when it was created; reuse it.
            nodes_explored += 1
            x = node.x

            branch_index = self._most_fractional(x, integer_indices)
            if branch_index is None:
                # Integral solution: new incumbent.
                if node.bound < incumbent_value:
                    incumbent_value = node.bound
                    incumbent_x = x
                continue

            if self.rounding_heuristic and node.depth % 4 == 0:
                rounded = self._round_and_check(
                    form, objective, x, integer_indices, deadline
                )
                if rounded is not None and rounded[0] < incumbent_value:
                    incumbent_value, incumbent_x = rounded

            value = x[branch_index]
            floor_value = math.floor(value)

            down_lower = node.lower.copy()
            down_upper = node.upper.copy()
            down_upper[branch_index] = floor_value

            up_lower = node.lower.copy()
            up_upper = node.upper.copy()
            up_lower[branch_index] = floor_value + 1

            for child_lower, child_upper in ((down_lower, down_upper), (up_lower, up_upper)):
                if child_lower[branch_index] > child_upper[branch_index]:
                    continue
                child_result = self._solve_lp(
                    objective, form, child_lower, child_upper, deadline
                )
                if child_result is None:
                    if deadline_expired():
                        # Don't treat a timed-out child LP as pruned: its
                        # subtree was never bounded, so optimality can no
                        # longer be claimed.
                        hit_limit = True
                        break
                    continue
                child_bound, child_x = child_result
                if child_bound >= incumbent_value - _BOUND_TOL:
                    continue
                if self._most_fractional(child_x, integer_indices) is None:
                    if child_bound < incumbent_value:
                        incumbent_value = child_bound
                        incumbent_x = child_x
                    continue
                heapq.heappush(
                    heap,
                    _Node(
                        child_bound,
                        next(counter),
                        child_lower,
                        child_upper,
                        child_x,
                        node.depth + 1,
                    ),
                )
            if hit_limit:
                break

        elapsed = time.perf_counter() - start

        if incumbent_x is None:
            if proven_infeasible or not hit_limit:
                return Solution(
                    status=SolveStatus.INFEASIBLE,
                    solve_time=elapsed,
                    backend=self.name,
                    message=f"explored {nodes_explored} nodes",
                    iterations=nodes_explored,
                )
            return Solution(
                status=SolveStatus.TIME_LIMIT,
                solve_time=elapsed,
                backend=self.name,
                message=f"no incumbent after {nodes_explored} nodes",
                iterations=nodes_explored,
            )

        values = self.assignment_from_vector(form, incumbent_x)
        vector = np.array([values[var] for var in form.variables])
        signed_objective = float(objective @ vector)
        gap = _relative_gap(incumbent_value, min(best_bound, incumbent_value))
        if form.maximize:
            true_objective = -signed_objective + form.objective_constant
        else:
            true_objective = signed_objective + form.objective_constant

        optimal = not hit_limit and not heap or (
            not hit_limit and best_bound >= incumbent_value - _BOUND_TOL
        )
        status = SolveStatus.OPTIMAL if optimal else SolveStatus.FEASIBLE
        return Solution(
            status=status,
            objective=true_objective,
            values=values,
            solve_time=elapsed,
            backend=self.name,
            gap=gap if not optimal else 0.0,
            message=f"explored {nodes_explored} nodes",
            iterations=nodes_explored,
        )

    # ------------------------------------------------------------------ #

    def _solve_lp(
        self,
        objective: np.ndarray,
        form,
        lower: np.ndarray,
        upper: np.ndarray,
        deadline: Optional[float] = None,
    ) -> Optional[Tuple[float, np.ndarray]]:
        """Solve the LP relaxation over the given bounds.

        Returns ``(objective_value, x)`` or ``None`` when infeasible (or when
        the deadline has already passed).
        """
        lp_options = {}
        if deadline is not None:
            remaining = deadline - time.perf_counter()
            if remaining <= 0:
                return None
            lp_options["time_limit"] = max(0.05, remaining)
        bounds = np.column_stack([lower, upper])
        result = optimize.linprog(
            c=objective,
            A_ub=form.a_ub if form.a_ub.shape[0] else None,
            b_ub=form.b_ub if form.a_ub.shape[0] else None,
            A_eq=form.a_eq if form.a_eq.shape[0] else None,
            b_eq=form.b_eq if form.a_eq.shape[0] else None,
            bounds=bounds,
            method="highs",
            options=lp_options,
        )
        if not result.success:
            return None
        return float(result.fun), np.asarray(result.x, dtype=float)

    @staticmethod
    def _most_fractional(
        x: np.ndarray, integer_indices: np.ndarray
    ) -> Optional[int]:
        """Return the index of the integer variable farthest from integrality."""
        if integer_indices.size == 0:
            return None
        fractional = np.abs(x[integer_indices] - np.round(x[integer_indices]))
        worst = int(np.argmax(fractional))
        if fractional[worst] <= _INT_TOL:
            return None
        return int(integer_indices[worst])

    def _round_and_check(
        self,
        form,
        objective: np.ndarray,
        x: np.ndarray,
        integer_indices: np.ndarray,
        deadline: Optional[float] = None,
    ) -> Optional[Tuple[float, np.ndarray]]:
        """Try rounding the LP solution; re-solve the LP with integers fixed.

        Returns ``(objective, x)`` of a feasible integral solution or
        ``None``.  The time limit is honoured *inside* the heuristic: when
        the deadline has passed the heuristic LP is skipped entirely rather
        than blowing the budget between node checks.
        """
        if deadline is not None and time.perf_counter() > deadline:
            return None
        if integer_indices.size == 0:
            return float(objective @ x), x
        lower = form.lower.copy()
        upper = form.upper.copy()
        rounded = np.round(x[integer_indices])
        lower[integer_indices] = np.maximum(rounded, form.lower[integer_indices])
        upper[integer_indices] = np.minimum(rounded, form.upper[integer_indices])
        if np.any(lower > upper):
            return None
        result = self._solve_lp(objective, form, lower, upper, deadline)
        if result is None:
            return None
        return result


def _relative_gap(incumbent: float, bound: float) -> float:
    """Relative optimality gap between an incumbent and a lower bound."""
    if not math.isfinite(incumbent) or not math.isfinite(bound):
        return math.inf
    denom = max(1.0, abs(incumbent))
    return max(0.0, (incumbent - bound) / denom)
