"""Mixed integer linear programming modelling layer.

This subpackage is the solver substrate that replaces Gurobi in the paper's
flow.  It provides a small modelling language (:class:`Model`,
:class:`Variable`, :class:`LinExpr`, :class:`Constraint`), the standard
linearisation tricks the paper relies on (:mod:`repro.ilp.linearize`) and two
interchangeable backends (HiGHS via SciPy, and a pure-Python
branch-and-bound).

Quick example
-------------
>>> from repro.ilp import Model
>>> m = Model()
>>> x = m.add_continuous("x", lb=0, ub=4)
>>> y = m.add_binary("y")
>>> _ = m.add_constraint(x + 3 * y <= 5)
>>> m.set_objective(2 * x + y, sense="max")
>>> sol = m.solve()
>>> sol.status.value
'optimal'
"""

from repro.ilp.compile import ColumnExpr, ConstraintBatch
from repro.ilp.expr import (
    Constraint,
    LinExpr,
    Sense,
    Variable,
    VarType,
    lin_sum,
    quicksum,
)
from repro.ilp.linearize import (
    absolute_value,
    at_most_one,
    disjunction_at_least_one,
    equal_if,
    exactly_one,
    geq_if,
    leq_if,
    max_envelope,
    product_binary_continuous,
)
from repro.ilp.model import Model, StandardForm
from repro.ilp.solution import Solution, SolveStatus
from repro.ilp.backends import available_backends, get_backend

__all__ = [
    "Model",
    "StandardForm",
    "Variable",
    "VarType",
    "LinExpr",
    "Constraint",
    "Sense",
    "quicksum",
    "lin_sum",
    "ColumnExpr",
    "ConstraintBatch",
    "Solution",
    "SolveStatus",
    "get_backend",
    "available_backends",
    "equal_if",
    "leq_if",
    "geq_if",
    "product_binary_continuous",
    "absolute_value",
    "max_envelope",
    "exactly_one",
    "at_most_one",
    "disjunction_at_least_one",
]
