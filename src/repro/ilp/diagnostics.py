"""Infeasibility diagnostics: elastic relaxation of a model.

When a phase model comes back infeasible it is rarely obvious which of the
thousands of constraints conflict.  :func:`elastic_relaxation` rebuilds the
model with a non-negative slack added to every constraint and minimises the
total slack; constraints that still need slack at the optimum form (a cover
of) an irreducible infeasible subsystem and are reported by name.  The same
mechanism is reused by the tests to assert that particular constraint groups
are the ones causing deliberate infeasibility.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import SolverError
from repro.ilp.expr import LinExpr, Sense
from repro.ilp.model import Model
from repro.ilp.solution import SolveStatus


@dataclass(frozen=True)
class ElasticViolation:
    """A constraint that had to be relaxed to restore feasibility."""

    constraint_name: str
    slack: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.constraint_name}: needs {self.slack:.4g} of slack"


@dataclass
class ElasticReport:
    """Outcome of an elastic relaxation run."""

    feasible_without_slack: bool
    total_slack: float
    violations: List[ElasticViolation]

    def violated_names(self) -> List[str]:
        return [violation.constraint_name for violation in self.violations]


def elastic_relaxation(
    model: Model,
    time_limit: Optional[float] = 60.0,
    backend: str = "highs",
    slack_tolerance: float = 1.0e-4,
    relax_integrality: bool = True,
) -> ElasticReport:
    """Diagnose an infeasible model by minimally relaxing its constraints.

    Parameters
    ----------
    model:
        The model to diagnose.  It is not modified.
    time_limit, backend:
        Solver settings for the relaxation problem.
    slack_tolerance:
        Slack below this value is treated as zero.
    relax_integrality:
        Solve the relaxation as an LP (much faster; sufficient when the
        infeasibility is already present in the linear relaxation, which is
        the common case for conflicting equality/window constraints).
    """
    elastic = Model(f"{model.name}.elastic")
    variable_map = {}
    for var in model.variables:
        if relax_integrality or not var.is_integer:
            new_var = elastic.add_continuous(var.name, lb=var.lb, ub=var.ub)
        elif var.is_binary:
            new_var = elastic.add_binary(var.name)
        else:
            new_var = elastic.add_integer(var.name, lb=var.lb, ub=var.ub)
        variable_map[var] = new_var

    slack_vars = []
    slack_names: Dict[str, str] = {}
    for index, constraint in enumerate(model.constraints):
        expr = LinExpr(
            {variable_map[var]: coeff for var, coeff in constraint.expr.coeffs.items()},
            constraint.expr.constant,
        )
        name = constraint.name or f"c{index}"
        slack = elastic.add_continuous(f"_slack[{name}]#{index}", lb=0.0)
        slack_vars.append((slack, name))
        if constraint.sense is Sense.LE:
            elastic.add_constraint(expr <= LinExpr.from_value(slack), name=name)
        elif constraint.sense is Sense.GE:
            elastic.add_constraint(expr >= -1.0 * LinExpr.from_value(slack), name=name)
        else:
            elastic.add_constraint(expr <= LinExpr.from_value(slack), name=f"{name}.le")
            elastic.add_constraint(expr >= -1.0 * LinExpr.from_value(slack), name=f"{name}.ge")

    elastic.set_objective(LinExpr.sum(var for var, _ in slack_vars), sense="min")
    solution = elastic.solve(backend=backend, time_limit=time_limit)
    if solution.status not in (SolveStatus.OPTIMAL, SolveStatus.FEASIBLE):
        raise SolverError(
            f"elastic relaxation itself failed with status {solution.status.value}"
        )

    violations = []
    total = 0.0
    for slack, name in slack_vars:
        value = solution.value(slack)
        if value > slack_tolerance:
            violations.append(ElasticViolation(name, value))
            total += value
    violations.sort(key=lambda violation: violation.slack, reverse=True)
    return ElasticReport(
        feasible_without_slack=not violations,
        total_slack=total,
        violations=violations,
    )
