"""Solution objects returned by the MILP backends."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Mapping

from repro.errors import ModelError
from repro.ilp.expr import ExprLike, LinExpr, Variable


class SolveStatus(enum.Enum):
    """Outcome of a solve call.

    ``OPTIMAL``
        The backend proved optimality of the returned assignment.
    ``FEASIBLE``
        A feasible assignment was found but optimality was not proven
        (typically because a time or node limit was hit).
    ``INFEASIBLE``
        The model has no feasible assignment.
    ``UNBOUNDED``
        The objective can be improved without bound.
    ``TIME_LIMIT``
        The time limit was reached before any feasible assignment was found.
    ``ERROR``
        The backend failed for an unexpected reason.
    """

    OPTIMAL = "optimal"
    FEASIBLE = "feasible"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    TIME_LIMIT = "time_limit"
    ERROR = "error"


#: Statuses for which :attr:`Solution.values` carries a usable assignment.
_STATUSES_WITH_VALUES = (SolveStatus.OPTIMAL, SolveStatus.FEASIBLE)


@dataclass
class Solution:
    """Result of solving a :class:`repro.ilp.model.Model`.

    Attributes
    ----------
    status:
        Outcome of the solve.
    objective:
        Objective value of the returned assignment (``nan`` if none).
    values:
        Mapping from :class:`Variable` to its solved value.  Integer and
        binary variables are rounded to the nearest integer by the backends.
    solve_time:
        Wall-clock seconds spent inside the backend.
    backend:
        Name of the backend that produced this solution.
    gap:
        Relative MIP gap if the backend reports one, ``None`` otherwise.
    message:
        Free-form diagnostic text from the backend.
    iterations:
        Solver effort count when the backend reports one — branch-and-bound
        nodes explored for the bundled B&B and HiGHS direct paths, ``None``
        when the backend exposes no such counter (e.g. SciPy's milp).
    """

    status: SolveStatus
    objective: float = float("nan")
    values: Dict[Variable, float] = field(default_factory=dict)
    solve_time: float = 0.0
    backend: str = ""
    gap: float | None = None
    message: str = ""
    iterations: int | None = None

    @property
    def is_feasible(self) -> bool:
        """True when the solution carries a usable variable assignment."""
        return self.status in _STATUSES_WITH_VALUES and bool(self.values)

    @property
    def is_optimal(self) -> bool:
        """True when the backend proved optimality."""
        return self.status is SolveStatus.OPTIMAL

    def value(self, item: ExprLike) -> float:
        """Return the solved value of a variable or linear expression."""
        if not self.is_feasible:
            raise ModelError(
                f"no variable assignment available (status={self.status.value})"
            )
        if isinstance(item, Variable):
            try:
                return self.values[item]
            except KeyError as exc:
                raise ModelError(
                    f"variable {item.name!r} is not part of this solution"
                ) from exc
        expr = LinExpr.from_value(item)
        return expr.value(self.values)

    def as_name_dict(self) -> Dict[str, float]:
        """Return the assignment keyed by variable name (for reporting)."""
        return {var.name: value for var, value in self.values.items()}

    def summary(self) -> str:
        """One-line human readable description of the solve outcome."""
        parts = [f"status={self.status.value}"]
        if self.is_feasible:
            parts.append(f"objective={self.objective:.6g}")
        if self.gap is not None:
            parts.append(f"gap={self.gap:.3%}")
        parts.append(f"time={self.solve_time:.2f}s")
        if self.backend:
            parts.append(f"backend={self.backend}")
        return ", ".join(parts)


def infeasible_solution(backend: str, message: str = "") -> Solution:
    """Convenience constructor for an infeasible outcome."""
    return Solution(status=SolveStatus.INFEASIBLE, backend=backend, message=message)


def error_solution(backend: str, message: str) -> Solution:
    """Convenience constructor for a backend failure."""
    return Solution(status=SolveStatus.ERROR, backend=backend, message=message)


def evaluate_assignment(
    assignment: Mapping[Variable, float], expr: ExprLike
) -> float:
    """Evaluate an expression under an explicit assignment mapping."""
    return LinExpr.from_value(expr).value(assignment)
