"""Linearisation helpers used throughout the paper's ILP formulation.

The formulation in Section 4 of the paper repeatedly needs constructs that are
not directly linear:

* equation (6) multiplies a 0-1 direction variable with a coordinate
  difference (binary x continuous product),
* equation (15) switches a pad coordinate between a discrete boundary value
  and a free continuous value depending on a 0-1 variable,
* equations (16)-(20) use the classic big-M disjunction for non-overlap,
* equations (24)-(25) need absolute values and a maximum.

The paper points to a textbook [13] for the standard transformations; this
module implements them once so that the model builders read like the paper's
equations.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.errors import ModelError
from repro.ilp.expr import Constraint, ExprLike, LinExpr, Variable
from repro.ilp.model import Model


def _require_binary(var: Variable, role: str) -> None:
    if not var.is_binary:
        raise ModelError(f"{role} must be a binary variable, got {var!r}")


def equal_if(
    model: Model,
    switch: Variable,
    lhs: ExprLike,
    rhs: ExprLike,
    big_m: float | None = None,
    name: str = "",
) -> List[Constraint]:
    """Add ``lhs == rhs`` enforced only when ``switch`` is 1.

    Implemented with the classic pair of big-M inequalities::

        lhs - rhs <=  M (1 - switch)
        rhs - lhs <=  M (1 - switch)

    When ``switch`` is 0 the constraints are vacuous.
    """
    _require_binary(switch, "switch")
    big_m = model.DEFAULT_BIG_M if big_m is None else float(big_m)
    lhs_expr = LinExpr.from_value(lhs)
    rhs_expr = LinExpr.from_value(rhs)
    slack = big_m * (1 - switch)
    c1 = model.add_constraint(lhs_expr - rhs_expr <= slack, name=f"{name}.eqif_le" if name else "")
    c2 = model.add_constraint(rhs_expr - lhs_expr <= slack, name=f"{name}.eqif_ge" if name else "")
    return [c1, c2]


def leq_if(
    model: Model,
    switch: Variable,
    lhs: ExprLike,
    rhs: ExprLike,
    big_m: float | None = None,
    name: str = "",
) -> Constraint:
    """Add ``lhs <= rhs`` enforced only when ``switch`` is 1."""
    _require_binary(switch, "switch")
    big_m = model.DEFAULT_BIG_M if big_m is None else float(big_m)
    lhs_expr = LinExpr.from_value(lhs)
    rhs_expr = LinExpr.from_value(rhs)
    return model.add_constraint(
        lhs_expr - rhs_expr <= big_m * (1 - switch),
        name=f"{name}.leqif" if name else "",
    )


def geq_if(
    model: Model,
    switch: Variable,
    lhs: ExprLike,
    rhs: ExprLike,
    big_m: float | None = None,
    name: str = "",
) -> Constraint:
    """Add ``lhs >= rhs`` enforced only when ``switch`` is 1."""
    _require_binary(switch, "switch")
    big_m = model.DEFAULT_BIG_M if big_m is None else float(big_m)
    lhs_expr = LinExpr.from_value(lhs)
    rhs_expr = LinExpr.from_value(rhs)
    return model.add_constraint(
        rhs_expr - lhs_expr <= big_m * (1 - switch),
        name=f"{name}.geqif" if name else "",
    )


def product_binary_continuous(
    model: Model,
    binary: Variable,
    continuous: ExprLike,
    lower: float,
    upper: float,
    name: str = "",
) -> Variable:
    """Return a variable equal to ``binary * continuous``.

    ``lower`` and ``upper`` must bound the continuous expression.  The
    standard McCormick-style linearisation is used::

        z <= upper * binary
        z >= lower * binary
        z <= continuous - lower * (1 - binary)
        z >= continuous - upper * (1 - binary)
    """
    _require_binary(binary, "binary")
    if lower > upper:
        raise ModelError(f"invalid bounds for product linearisation: [{lower}, {upper}]")
    expr = LinExpr.from_value(continuous)
    z_name = name or f"_prod_{binary.name}"
    z = model.add_continuous(z_name, lb=min(lower, 0.0), ub=max(upper, 0.0))
    model.add_constraint(z <= upper * binary, name=f"{z_name}.ub_sel")
    model.add_constraint(z >= lower * binary, name=f"{z_name}.lb_sel")
    model.add_constraint(z <= expr - lower * (1 - binary), name=f"{z_name}.ub_track")
    model.add_constraint(z >= expr - upper * (1 - binary), name=f"{z_name}.lb_track")
    return z


def absolute_value(
    model: Model,
    expr: ExprLike,
    bound: float,
    name: str = "",
    exact: bool = True,
) -> Variable:
    """Return a variable representing ``|expr|``.

    With ``exact=False`` only the envelope ``a >= expr`` and ``a >= -expr`` is
    added, which is sufficient when the absolute value is being minimised
    (e.g. the unmatched-length terms in equation (24) of the paper).  With
    ``exact=True`` an auxiliary binary selects the sign so the value is exact
    even when it is not pushed down by the objective.
    """
    value = LinExpr.from_value(expr)
    abs_name = name or "_abs"
    abs_var = model.add_continuous(abs_name, lb=0.0, ub=bound)
    model.add_constraint(abs_var >= value, name=f"{abs_name}.pos")
    model.add_constraint(abs_var >= -1.0 * value, name=f"{abs_name}.neg")
    if exact:
        sign = model.add_binary(f"{abs_name}.sign")
        # sign = 1 -> abs == expr, sign = 0 -> abs == -expr
        equal_if(model, sign, abs_var, value, big_m=2.0 * bound, name=f"{abs_name}.sel_pos")
        negative_sign = model.add_binary(f"{abs_name}.sign_neg")
        model.add_constraint(sign + negative_sign == 1, name=f"{abs_name}.sign_sum")
        equal_if(
            model,
            negative_sign,
            abs_var,
            -1.0 * value,
            big_m=2.0 * bound,
            name=f"{abs_name}.sel_neg",
        )
    return abs_var


def max_envelope(
    model: Model,
    exprs: Iterable[ExprLike],
    name: str = "",
    upper: float | None = None,
) -> Variable:
    """Return a variable constrained to be ``>= max(exprs)``.

    This is the construct used for ``l_u,max`` in equation (25) and for
    ``n_b,max`` in the objective: the variable is an upper envelope that the
    objective then minimises, so at the optimum it equals the maximum.
    """
    exprs = list(exprs)
    if not exprs:
        raise ModelError("max_envelope requires at least one expression")
    env_name = name or "_max"
    ub = float("inf") if upper is None else float(upper)
    env = model.add_continuous(env_name, lb=-float("inf"), ub=ub)
    for idx, expr in enumerate(exprs):
        model.add_constraint(env >= LinExpr.from_value(expr), name=f"{env_name}.ge[{idx}]")
    return env


def exactly_one(model: Model, binaries: Sequence[Variable], name: str = "") -> Constraint:
    """Add the SOS1-style constraint ``sum(binaries) == 1``."""
    for var in binaries:
        _require_binary(var, "member of exactly_one")
    return model.add_constraint(
        LinExpr.sum(binaries) == 1, name=name or "_exactly_one"
    )


def at_most_one(model: Model, binaries: Sequence[Variable], name: str = "") -> Constraint:
    """Add ``sum(binaries) <= 1``."""
    for var in binaries:
        _require_binary(var, "member of at_most_one")
    return model.add_constraint(
        LinExpr.sum(binaries) <= 1, name=name or "_at_most_one"
    )


def disjunction_at_least_one(
    model: Model,
    selectors: Sequence[Variable],
    name: str = "",
) -> Constraint:
    """Add the paper's constraint (20): at most ``len-1`` selectors may relax.

    Each selector binary relaxes one of the disjunctive big-M constraints; by
    requiring their sum to be at most ``len(selectors) - 1`` at least one of
    the alternatives is enforced.
    """
    for var in selectors:
        _require_binary(var, "disjunction selector")
    return model.add_constraint(
        LinExpr.sum(selectors) <= len(selectors) - 1,
        name=name or "_disjunction",
    )
