"""Linear expressions, variables and constraints for the MILP modelling layer.

The paper's formulation (Sections 4 and 5) is a mixed integer linear program.
Because the reproduction cannot depend on Gurobi, this module implements a
small but complete modelling language in the spirit of PuLP / gurobipy:

* :class:`Variable` — a continuous, integer or binary decision variable,
* :class:`LinExpr` — an affine expression ``sum(coeff * var) + constant``,
* :class:`Constraint` — ``expr <= rhs``, ``expr >= rhs`` or ``expr == rhs``.

Expressions support natural Python arithmetic (``2 * x + y - 3``) and the
comparison operators build constraints, so model-building code reads very
close to the equations in the paper.
"""

from __future__ import annotations

import enum
import math
from typing import Dict, Iterable, Mapping, Union

from repro.errors import ModelError

Number = Union[int, float]

#: Tolerance used when checking integrality or constraint satisfaction of
#: solved values.  MILP backends work in double precision; 1e-6 absolute is
#: the customary default (it matches Gurobi's ``IntFeasTol``).
DEFAULT_TOLERANCE = 1.0e-6


class VarType(enum.Enum):
    """Domain of a decision variable."""

    CONTINUOUS = "continuous"
    INTEGER = "integer"
    BINARY = "binary"


class Sense(enum.Enum):
    """Relational sense of a constraint."""

    LE = "<="
    GE = ">="
    EQ = "=="


class Variable:
    """A single decision variable owned by a :class:`~repro.ilp.model.Model`.

    Variables are created through :meth:`Model.add_var` (or the convenience
    wrappers ``add_binary`` / ``add_integer`` / ``add_continuous``); they
    should not be instantiated directly by user code.

    Parameters
    ----------
    name:
        Unique (per model) human-readable identifier, used in reports.
    index:
        Position of the variable in the model's column ordering.
    lb, ub:
        Lower / upper bounds.  ``-inf`` / ``+inf`` are allowed for
        continuous and integer variables.
    vartype:
        One of :class:`VarType`.
    """

    __slots__ = ("name", "index", "lb", "ub", "vartype", "_model_id")

    def __init__(
        self,
        name: str,
        index: int,
        lb: float,
        ub: float,
        vartype: VarType,
        model_id: int,
    ) -> None:
        if not name:
            raise ModelError("variable name must be a non-empty string")
        if math.isnan(lb) or math.isnan(ub):
            raise ModelError(f"variable {name!r} has NaN bounds")
        if lb > ub:
            raise ModelError(
                f"variable {name!r} has contradictory bounds [{lb}, {ub}]"
            )
        self.name = name
        self.index = index
        self.lb = float(lb)
        self.ub = float(ub)
        self.vartype = vartype
        self._model_id = model_id

    # -- introspection -----------------------------------------------------

    @property
    def is_integer(self) -> bool:
        """True for integer and binary variables."""
        return self.vartype in (VarType.INTEGER, VarType.BINARY)

    @property
    def is_binary(self) -> bool:
        """True only for binary variables."""
        return self.vartype is VarType.BINARY

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Variable({self.name!r}, lb={self.lb}, ub={self.ub}, "
            f"type={self.vartype.value})"
        )

    def __hash__(self) -> int:
        return hash((self._model_id, self.index))

    def __eq__(self, other: object):  # type: ignore[override]
        # ``==`` builds a constraint against expressions/numbers, mirroring
        # the behaviour of mainstream modelling libraries.  Identity of the
        # variable object itself is available through ``is``.
        if isinstance(other, Variable) and other is self:
            return True
        return self.to_expr() == other

    def __ne__(self, other: object):  # type: ignore[override]
        raise ModelError("'!=' constraints are not expressible in a MILP")

    # -- conversion and arithmetic ----------------------------------------

    def to_expr(self) -> "LinExpr":
        """Return this variable as a single-term :class:`LinExpr`."""
        return LinExpr({self: 1.0}, 0.0)

    def __add__(self, other: "ExprLike") -> "LinExpr":
        return self.to_expr() + other

    def __radd__(self, other: "ExprLike") -> "LinExpr":
        return self.to_expr() + other

    def __sub__(self, other: "ExprLike") -> "LinExpr":
        return self.to_expr() - other

    def __rsub__(self, other: "ExprLike") -> "LinExpr":
        return (-1.0) * self.to_expr() + other

    def __mul__(self, other: Number) -> "LinExpr":
        return self.to_expr() * other

    def __rmul__(self, other: Number) -> "LinExpr":
        return self.to_expr() * other

    def __truediv__(self, other: Number) -> "LinExpr":
        return self.to_expr() / other

    def __neg__(self) -> "LinExpr":
        return self.to_expr() * -1.0

    def __le__(self, other: "ExprLike") -> "Constraint":
        return self.to_expr() <= other

    def __ge__(self, other: "ExprLike") -> "Constraint":
        return self.to_expr() >= other


class LinExpr:
    """An affine expression ``sum_i coeff_i * var_i + constant``.

    Binary arithmetic returns new expressions, so shared sub-expressions are
    never mutated behind a caller's back.  The *in-place* operators
    (``+=`` / ``-=``) mutate the accumulator instead of copying it, which
    makes building a sum of ``n`` terms linear rather than quadratic — use
    them (or :func:`lin_sum`) for accumulation loops and treat the accumulator
    as exclusively owned until the loop finishes.  Coefficients with magnitude
    below 1e-15 are dropped to keep the expression sparse.
    """

    __slots__ = ("coeffs", "constant")

    _DROP_TOL = 1.0e-15

    def __init__(
        self,
        coeffs: Mapping[Variable, float] | None = None,
        constant: float = 0.0,
    ) -> None:
        cleaned: Dict[Variable, float] = {}
        if coeffs:
            for var, coeff in coeffs.items():
                if not isinstance(var, Variable):
                    raise ModelError(
                        f"LinExpr keys must be Variables, got {type(var).__name__}"
                    )
                value = float(coeff)
                if math.isnan(value):
                    raise ModelError(f"NaN coefficient for variable {var.name!r}")
                if abs(value) > self._DROP_TOL:
                    cleaned[var] = value
        constant = float(constant)
        if math.isnan(constant):
            raise ModelError("NaN constant in linear expression")
        self.coeffs = cleaned
        self.constant = constant

    # -- constructors ------------------------------------------------------

    @staticmethod
    def from_value(value: "ExprLike") -> "LinExpr":
        """Coerce a number, Variable or LinExpr to a LinExpr."""
        if isinstance(value, LinExpr):
            return value
        if isinstance(value, Variable):
            return value.to_expr()
        if isinstance(value, (int, float)):
            return LinExpr({}, float(value))
        raise ModelError(
            f"cannot interpret {type(value).__name__} as a linear expression"
        )

    @staticmethod
    def sum(terms: Iterable["ExprLike"]) -> "LinExpr":
        """Sum an iterable of expressions, variables and numbers."""
        return lin_sum(terms)

    # -- arithmetic --------------------------------------------------------

    def _combine(self, other: "ExprLike", sign: float) -> "LinExpr":
        other_expr = LinExpr.from_value(other)
        coeffs = dict(self.coeffs)
        for var, coeff in other_expr.coeffs.items():
            coeffs[var] = coeffs.get(var, 0.0) + sign * coeff
        return LinExpr(coeffs, self.constant + sign * other_expr.constant)

    def _combine_inplace(self, other: "ExprLike", sign: float) -> "LinExpr":
        """Accumulate ``other`` into this expression without copying.

        Only safe on an accumulator this code path exclusively owns; the
        public ``+=`` / ``-=`` operators route here so that summation loops
        cost O(total terms) instead of O(terms^2).
        """
        other_expr = LinExpr.from_value(other)
        coeffs = self.coeffs
        for var, coeff in other_expr.coeffs.items():
            merged = coeffs.get(var, 0.0) + sign * coeff
            if abs(merged) > self._DROP_TOL:
                coeffs[var] = merged
            elif var in coeffs:
                del coeffs[var]
        self.constant += sign * other_expr.constant
        return self

    def __add__(self, other: "ExprLike") -> "LinExpr":
        return self._combine(other, 1.0)

    def __radd__(self, other: "ExprLike") -> "LinExpr":
        return self._combine(other, 1.0)

    def __iadd__(self, other: "ExprLike") -> "LinExpr":
        return self._combine_inplace(other, 1.0)

    def __sub__(self, other: "ExprLike") -> "LinExpr":
        return self._combine(other, -1.0)

    def __isub__(self, other: "ExprLike") -> "LinExpr":
        return self._combine_inplace(other, -1.0)

    def __rsub__(self, other: "ExprLike") -> "LinExpr":
        return (self * -1.0)._combine(other, 1.0)

    def __mul__(self, factor: Number) -> "LinExpr":
        if isinstance(factor, (Variable, LinExpr)):
            raise ModelError(
                "products of expressions are non-linear; use "
                "repro.ilp.linearize helpers instead"
            )
        factor = float(factor)
        return LinExpr(
            {var: coeff * factor for var, coeff in self.coeffs.items()},
            self.constant * factor,
        )

    def __rmul__(self, factor: Number) -> "LinExpr":
        return self.__mul__(factor)

    def __truediv__(self, divisor: Number) -> "LinExpr":
        if isinstance(divisor, (Variable, LinExpr)):
            raise ModelError("division by an expression is non-linear")
        divisor = float(divisor)
        if divisor == 0.0:
            raise ZeroDivisionError("division of a linear expression by zero")
        return self.__mul__(1.0 / divisor)

    def __neg__(self) -> "LinExpr":
        return self.__mul__(-1.0)

    # -- comparisons build constraints --------------------------------------

    def __le__(self, other: "ExprLike") -> "Constraint":
        return Constraint(self - other, Sense.LE)

    def __ge__(self, other: "ExprLike") -> "Constraint":
        return Constraint(self - other, Sense.GE)

    def __eq__(self, other: object):  # type: ignore[override]
        return Constraint(self - LinExpr.from_value(other), Sense.EQ)

    def __ne__(self, other: object):  # type: ignore[override]
        raise ModelError("'!=' constraints are not expressible in a MILP")

    __hash__ = None  # type: ignore[assignment]

    # -- evaluation ----------------------------------------------------------

    def value(self, assignment: Mapping[Variable, float]) -> float:
        """Evaluate the expression under a variable assignment."""
        total = self.constant
        for var, coeff in self.coeffs.items():
            total += coeff * assignment[var]
        return total

    def variables(self) -> list[Variable]:
        """Return the variables appearing with a non-zero coefficient."""
        return list(self.coeffs.keys())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = [f"{coeff:+g}*{var.name}" for var, coeff in self.coeffs.items()]
        if self.constant or not parts:
            parts.append(f"{self.constant:+g}")
        return " ".join(parts)


class Constraint:
    """A linear constraint in the canonical form ``expr (<=|>=|==) 0``.

    The right-hand side is folded into the expression's constant term when the
    constraint is created from a comparison, so ``x + y <= 3`` is stored as the
    expression ``x + y - 3`` with sense ``LE``.
    """

    __slots__ = ("expr", "sense", "name")

    def __init__(self, expr: LinExpr, sense: Sense, name: str = "") -> None:
        if not isinstance(expr, LinExpr):
            raise ModelError("constraint expression must be a LinExpr")
        if not isinstance(sense, Sense):
            raise ModelError(f"invalid constraint sense: {sense!r}")
        self.expr = expr
        self.sense = sense
        self.name = name

    def with_name(self, name: str) -> "Constraint":
        """Return the same constraint carrying a descriptive name."""
        return Constraint(self.expr, self.sense, name)

    def is_satisfied(
        self,
        assignment: Mapping[Variable, float],
        tolerance: float = DEFAULT_TOLERANCE,
    ) -> bool:
        """Check whether an assignment satisfies this constraint."""
        value = self.expr.value(assignment)
        if self.sense is Sense.LE:
            return value <= tolerance
        if self.sense is Sense.GE:
            return value >= -tolerance
        return abs(value) <= tolerance

    def violation(self, assignment: Mapping[Variable, float]) -> float:
        """Return the non-negative amount by which the constraint is violated."""
        value = self.expr.value(assignment)
        if self.sense is Sense.LE:
            return max(0.0, value)
        if self.sense is Sense.GE:
            return max(0.0, -value)
        return abs(value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = f" [{self.name}]" if self.name else ""
        return f"Constraint({self.expr!r} {self.sense.value} 0{label})"


ExprLike = Union[Number, Variable, LinExpr]


def lin_sum(terms: Iterable[ExprLike]) -> LinExpr:
    """Sum expressions in linear time.

    Unlike the builtin ``sum()``, which copies the accumulator on every
    ``+`` and is therefore quadratic in the number of terms, this accumulates
    into a single dictionary.  It is the preferred spelling in hot
    model-building loops.
    """
    total: Dict[Variable, float] = {}
    constant = 0.0
    for term in terms:
        if isinstance(term, Variable):
            total[term] = total.get(term, 0.0) + 1.0
            continue
        if isinstance(term, (int, float)):
            constant += term
            continue
        expr = LinExpr.from_value(term)
        constant += expr.constant
        for var, coeff in expr.coeffs.items():
            total[var] = total.get(var, 0.0) + coeff
    return LinExpr(total, constant)


def quicksum(terms: Iterable[ExprLike]) -> LinExpr:
    """Alias of :meth:`LinExpr.sum`, matching the gurobipy naming."""
    return LinExpr.sum(terms)
