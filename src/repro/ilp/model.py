"""The MILP :class:`Model` container and its standard-form export.

A model owns a set of variables, a set of linear constraints and a linear
objective.  It can be exported to the standard matrix form

    minimise    c^T x
    subject to  A_ub x <= b_ub
                A_eq x == b_eq
                lb <= x <= ub
                x_i integer for i in `integrality`

which is the interface shared by the HiGHS backend (``scipy.optimize.milp``)
and the pure-Python branch-and-bound backend.

Two performance features back the progressive flow's fast path:

* constraints may be ingested in bulk from a pre-lowered
  :class:`~repro.ilp.compile.ConstraintBatch` (COO triplets) instead of one
  dict-backed :class:`Constraint` at a time, and
* ``to_standard_form()`` caches its result and — because the model API is
  append-only — patches new rows/columns onto the cached CSR matrices
  instead of re-lowering every constraint when the model grew between
  solves.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Union

import numpy as np
from scipy import sparse

from repro.errors import ModelError
from repro.ilp.compile import ConstraintBatch
from repro.ilp.expr import (
    DEFAULT_TOLERANCE,
    Constraint,
    ExprLike,
    LinExpr,
    Sense,
    Variable,
    VarType,
)
from repro.ilp.solution import Solution

_model_counter = itertools.count()

#: A warm start maps variables (or their names) to suggested values.
WarmStart = Mapping[Union[Variable, str], float]


@dataclass
class StandardForm:
    """Matrix representation of a model, consumed by solver backends.

    All arrays are indexed consistently with ``variables``: column ``j`` of the
    constraint matrices corresponds to ``variables[j]``.
    """

    variables: List[Variable]
    objective: np.ndarray
    objective_constant: float
    a_ub: sparse.csr_matrix
    b_ub: np.ndarray
    a_eq: sparse.csr_matrix
    b_eq: np.ndarray
    lower: np.ndarray
    upper: np.ndarray
    integrality: np.ndarray
    maximize: bool

    @property
    def num_variables(self) -> int:
        return len(self.variables)

    @property
    def num_constraints(self) -> int:
        return int(self.a_ub.shape[0] + self.a_eq.shape[0])

    @property
    def num_integer_variables(self) -> int:
        return int(np.count_nonzero(self.integrality))


class Model:
    """A mixed integer linear programming model.

    Example
    -------
    >>> from repro.ilp import Model
    >>> m = Model("demo")
    >>> x = m.add_continuous("x", lb=0, ub=10)
    >>> b = m.add_binary("b")
    >>> m.add_constraint(x + 4 * b <= 8, name="cap")
    >>> m.set_objective(x + 2 * b, sense="max")
    >>> solution = m.solve()
    >>> round(solution.objective, 6)
    8.0
    """

    #: Default big-M constant used by linearisation helpers when the caller
    #: does not provide a tighter bound.  Layout coordinates in this project
    #: are bounded by the layout area (at most a few thousand micrometres),
    #: so 1e5 is safely larger than any honest bound while staying small
    #: enough not to wreck LP conditioning.
    DEFAULT_BIG_M = 1.0e5

    def __init__(self, name: str = "model") -> None:
        self.name = name
        self._id = next(_model_counter)
        self._variables: List[Variable] = []
        self._var_names: Dict[str, Variable] = {}
        #: Interleaved Constraint objects and snapshotted batch blocks
        #: (_CompiledRows), in insertion order (the model API is
        #: append-only).
        self._entries: List[Union[Constraint, "_CompiledRows"]] = []
        self._num_rows = 0
        self._objective: LinExpr = LinExpr()
        self._maximize = False
        self._aux_counter = itertools.count()
        # Materialised-constraint and standard-form caches (see the
        # respective accessors); both rely on the append-only guarantee.
        self._constraints_cache: Optional[List[Constraint]] = None
        self._form_cache: Optional[StandardForm] = None
        self._form_entries = 0
        self._form_vars = 0
        self._form_obj_token = -1
        self._obj_token = 0

    # ------------------------------------------------------------------ #
    # variables
    # ------------------------------------------------------------------ #

    def add_var(
        self,
        name: str = "",
        lb: float = 0.0,
        ub: float = float("inf"),
        vartype: VarType = VarType.CONTINUOUS,
    ) -> Variable:
        """Create and register a new decision variable.

        Variable names must be unique within the model; an empty name is
        replaced by an automatically generated one.
        """
        if not name:
            name = f"_v{next(self._aux_counter)}"
        if name in self._var_names:
            raise ModelError(f"duplicate variable name {name!r} in model {self.name!r}")
        if vartype is VarType.BINARY:
            lb = max(0.0, float(lb))
            ub = min(1.0, float(ub))
        var = Variable(name, len(self._variables), lb, ub, vartype, self._id)
        self._variables.append(var)
        self._var_names[name] = var
        return var

    def add_continuous(
        self, name: str = "", lb: float = 0.0, ub: float = float("inf")
    ) -> Variable:
        """Add a continuous variable with the given bounds."""
        return self.add_var(name, lb, ub, VarType.CONTINUOUS)

    def add_integer(
        self, name: str = "", lb: float = 0.0, ub: float = float("inf")
    ) -> Variable:
        """Add a general integer variable with the given bounds."""
        return self.add_var(name, lb, ub, VarType.INTEGER)

    def add_binary(self, name: str = "") -> Variable:
        """Add a 0-1 variable."""
        return self.add_var(name, 0.0, 1.0, VarType.BINARY)

    def get_var(self, name: str) -> Variable:
        """Look up a variable by name."""
        try:
            return self._var_names[name]
        except KeyError as exc:
            raise ModelError(f"no variable named {name!r} in model {self.name!r}") from exc

    @property
    def variables(self) -> Sequence[Variable]:
        return tuple(self._variables)

    @property
    def num_variables(self) -> int:
        return len(self._variables)

    # ------------------------------------------------------------------ #
    # constraints and objective
    # ------------------------------------------------------------------ #

    def add_constraint(self, constraint: Constraint, name: str = "") -> Constraint:
        """Register a constraint built from a comparison expression."""
        if not isinstance(constraint, Constraint):
            raise ModelError(
                "add_constraint expects a Constraint (build one with <=, >= or ==)"
            )
        self._check_ownership(constraint.expr)
        if name:
            constraint = constraint.with_name(name)
        elif not constraint.name:
            constraint = constraint.with_name(f"c{self._num_rows}")
        self._entries.append(constraint)
        self._num_rows += 1
        self._constraints_cache = None
        return constraint

    def add_linear_batch(self, batch: ConstraintBatch) -> int:
        """Ingest a whole :class:`ConstraintBatch` of compiled rows at once.

        This is the fast path used by the hot model builders: the rows are
        kept in their compiled COO form and lowered straight into the
        standard-form matrices without ever materialising per-constraint
        dictionaries.  The rows are snapshotted, so the caller may keep
        filling (or re-use) the batch afterwards without affecting this
        model.  Returns the number of rows added.
        """
        if not isinstance(batch, ConstraintBatch):
            raise ModelError("add_linear_batch expects a ConstraintBatch")
        if len(batch) == 0:
            return 0
        num_vars = len(self._variables)
        rows = []
        for sense, cols, vals, rhs, name in batch.iter_rows():
            # min/max are C-level passes — much cheaper than a Python loop
            # over every coefficient on this declared fast path.
            if cols and (min(cols) < 0 or max(cols) >= num_vars):
                bad = min(cols) if min(cols) < 0 else max(cols)
                raise ModelError(
                    f"batch references column {bad} outside model "
                    f"{self.name!r} ({num_vars} variables)"
                )
            if not name:
                name = f"c{self._num_rows + len(rows)}"
            rows.append((sense, tuple(cols), tuple(vals), rhs, name))
        compiled = _CompiledRows(tuple(rows))
        self._entries.append(compiled)
        self._num_rows += len(rows)
        self._constraints_cache = None
        return len(rows)

    def add_constraints(
        self, constraints: Iterable[Constraint], prefix: str = ""
    ) -> List[Constraint]:
        """Register several constraints, optionally sharing a name prefix."""
        added = []
        for idx, constraint in enumerate(constraints):
            name = f"{prefix}[{idx}]" if prefix else ""
            added.append(self.add_constraint(constraint, name))
        return added

    @property
    def constraints(self) -> Sequence[Constraint]:
        """All constraints, materialising compiled batch rows on demand."""
        if self._constraints_cache is None:
            materialised: List[Constraint] = []
            for entry in self._entries:
                if isinstance(entry, _CompiledRows):
                    materialised.extend(entry.to_constraints(self._variables))
                else:
                    materialised.append(entry)
            self._constraints_cache = materialised
        return tuple(self._constraints_cache)

    @property
    def num_constraints(self) -> int:
        return self._num_rows

    def set_objective(self, objective: ExprLike, sense: str = "min") -> None:
        """Set the linear objective.

        ``sense`` is ``"min"`` or ``"max"``.
        """
        expr = LinExpr.from_value(objective)
        self._check_ownership(expr)
        if sense not in ("min", "max"):
            raise ModelError(f"objective sense must be 'min' or 'max', got {sense!r}")
        self._objective = expr
        self._maximize = sense == "max"
        self._obj_token += 1

    @property
    def objective(self) -> LinExpr:
        # A copy: LinExpr supports in-place += / -=, and mutating the
        # model's internal objective would bypass the standard-form cache
        # invalidation that set_objective performs.
        return LinExpr(dict(self._objective.coeffs), self._objective.constant)

    @property
    def is_maximization(self) -> bool:
        return self._maximize

    def _check_ownership(self, expr: LinExpr) -> None:
        for var in expr.coeffs:
            if var._model_id != self._id:
                raise ModelError(
                    f"variable {var.name!r} belongs to a different model and "
                    f"cannot be used in model {self.name!r}"
                )

    # ------------------------------------------------------------------ #
    # export
    # ------------------------------------------------------------------ #

    def to_standard_form(self) -> StandardForm:
        """Export the model to the matrix form used by solver backends.

        The compiled form is cached.  Because the model API is append-only
        (constraints and variables are never removed or edited in place), a
        model that grew since the last export only lowers its *new*
        constraints: fresh CSR rows are stacked under the cached matrices and
        the bound/integrality vectors are extended, instead of re-lowering
        the whole model.  Callers must treat the returned arrays as
        read-only — solver backends copy before mutating.
        """
        n = len(self._variables)
        num_entries = len(self._entries)
        cache = self._form_cache
        if (
            cache is not None
            and self._form_entries == num_entries
            and self._form_vars == n
            and self._form_obj_token == self._obj_token
        ):
            return cache

        if cache is not None:
            form = self._extend_form(cache, n)
        else:
            form = self._assemble_form(self._entries, n)
        self._form_cache = form
        self._form_entries = num_entries
        self._form_vars = n
        self._form_obj_token = self._obj_token
        return form

    def _objective_vector(self, n: int) -> np.ndarray:
        objective = np.zeros(n)
        for var, coeff in self._objective.coeffs.items():
            objective[var.index] = coeff
        return objective

    def _lower_entries(self, entries: Sequence[Union[Constraint, "_CompiledRows"]]):
        """Lower entries to COO triplets, split into <= and == families."""
        ub = _CooAccumulator()
        eq = _CooAccumulator()
        for entry in entries:
            if isinstance(entry, _CompiledRows):
                for sense, cols, vals, rhs, _ in entry.iter_rows():
                    if sense is Sense.LE:
                        ub.add_row(cols, vals, rhs)
                    elif sense is Sense.GE:
                        ub.add_row(cols, [-v for v in vals], -rhs)
                    else:
                        eq.add_row(cols, vals, rhs)
            else:
                coeffs = entry.expr.coeffs
                cols = [var.index for var in coeffs]
                rhs = -entry.expr.constant
                if entry.sense is Sense.LE:
                    ub.add_row(cols, list(coeffs.values()), rhs)
                elif entry.sense is Sense.GE:
                    ub.add_row(cols, [-v for v in coeffs.values()], -rhs)
                else:
                    eq.add_row(cols, list(coeffs.values()), rhs)
        return ub, eq

    def _assemble_form(
        self, entries: Sequence[Union[Constraint, "_CompiledRows"]], n: int
    ) -> StandardForm:
        """Compile a standard form from scratch over the given entries."""
        ub, eq = self._lower_entries(entries)
        lower = np.array([var.lb for var in self._variables], dtype=float)
        upper = np.array([var.ub for var in self._variables], dtype=float)
        integrality = np.array(
            [1 if var.is_integer else 0 for var in self._variables], dtype=int
        )
        return StandardForm(
            variables=list(self._variables),
            objective=self._objective_vector(n),
            objective_constant=self._objective.constant,
            a_ub=ub.to_csr(n),
            b_ub=ub.rhs_array(),
            a_eq=eq.to_csr(n),
            b_eq=eq.rhs_array(),
            lower=lower,
            upper=upper,
            integrality=integrality,
            maximize=self._maximize,
        )

    def _extend_form(self, cache: StandardForm, n: int) -> StandardForm:
        """Patch a cached form with the rows/columns added since compilation.

        Row order is preserved: appended constraints land strictly after the
        cached ones within their (<= / ==) family, exactly as a full rebuild
        would order them.
        """
        new_entries = self._entries[self._form_entries :]
        ub, eq = self._lower_entries(new_entries)

        a_ub = _widen_csr(cache.a_ub, n)
        a_eq = _widen_csr(cache.a_eq, n)
        b_ub, b_eq = cache.b_ub, cache.b_eq
        if len(ub.rhs):
            a_ub = sparse.vstack([a_ub, ub.to_csr(n)], format="csr")
            b_ub = np.concatenate([b_ub, ub.rhs_array()])
        if len(eq.rhs):
            a_eq = sparse.vstack([a_eq, eq.to_csr(n)], format="csr")
            b_eq = np.concatenate([b_eq, eq.rhs_array()])

        if n > self._form_vars:
            added = self._variables[self._form_vars :]
            lower = np.concatenate(
                [cache.lower, np.array([v.lb for v in added], dtype=float)]
            )
            upper = np.concatenate(
                [cache.upper, np.array([v.ub for v in added], dtype=float)]
            )
            integrality = np.concatenate(
                [
                    cache.integrality,
                    np.array([1 if v.is_integer else 0 for v in added], dtype=int),
                ]
            )
        else:
            lower, upper, integrality = cache.lower, cache.upper, cache.integrality

        return StandardForm(
            variables=list(self._variables),
            objective=self._objective_vector(n),
            objective_constant=self._objective.constant,
            a_ub=a_ub,
            b_ub=b_ub,
            a_eq=a_eq,
            b_eq=b_eq,
            lower=lower,
            upper=upper,
            integrality=integrality,
            maximize=self._maximize,
        )

    # ------------------------------------------------------------------ #
    # solving and checking
    # ------------------------------------------------------------------ #

    def solve(
        self,
        backend: str = "highs",
        time_limit: float | None = None,
        mip_gap: float | None = None,
        warm_start: WarmStart | None = None,
        **options,
    ) -> Solution:
        """Solve the model with the requested backend.

        Parameters
        ----------
        backend:
            ``"highs"`` (default, SciPy's HiGHS MILP solver) or
            ``"branch-and-bound"`` (the pure-Python reference backend).
        time_limit:
            Wall-clock limit in seconds, or ``None`` for no limit.
        mip_gap:
            Relative optimality gap at which the backend may stop early.
        warm_start:
            Optional mapping of variables (or variable names) to suggested
            values.  Backends use it to seed an initial incumbent; unknown
            names are ignored, so a solution from a *related* model (the
            previous phase of the progressive flow) can be passed directly.
        options:
            Backend-specific keyword options.
        """
        from repro.ilp.backends import get_backend

        solver = get_backend(backend)
        return solver.solve(
            self,
            time_limit=time_limit,
            mip_gap=mip_gap,
            warm_start=warm_start,
            **options,
        )

    def check_solution(
        self, solution: Solution, tolerance: float = DEFAULT_TOLERANCE
    ) -> List[Constraint]:
        """Return the constraints violated by a solution (empty when clean)."""
        if not solution.is_feasible:
            raise ModelError("cannot check an infeasible/errored solution")
        violated = []
        for constraint in self.constraints:
            if not constraint.is_satisfied(solution.values, tolerance):
                violated.append(constraint)
        return violated

    def statistics(self) -> Dict[str, int]:
        """Return simple model size statistics for reporting."""
        num_binary = sum(1 for v in self._variables if v.vartype is VarType.BINARY)
        num_integer = sum(1 for v in self._variables if v.vartype is VarType.INTEGER)
        return {
            "variables": len(self._variables),
            "binary_variables": num_binary,
            "integer_variables": num_integer,
            "continuous_variables": len(self._variables) - num_binary - num_integer,
            "constraints": self._num_rows,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        stats = self.statistics()
        return (
            f"Model({self.name!r}, {stats['variables']} vars "
            f"[{stats['binary_variables']} bin, {stats['integer_variables']} int], "
            f"{stats['constraints']} constraints)"
        )


class _CompiledRows:
    """An immutable snapshot of batch rows owned by one model.

    Mirrors the read side of :class:`ConstraintBatch` (``__len__``,
    ``iter_rows``, ``to_constraints``) so the compile pipeline treats both
    uniformly, while guaranteeing the ingested rows can no longer change
    under the model's caches.
    """

    __slots__ = ("rows",)

    def __init__(self, rows) -> None:
        self.rows = rows

    def __len__(self) -> int:
        return len(self.rows)

    def iter_rows(self):
        return iter(self.rows)

    def to_constraints(self, variables: Sequence[Variable]) -> List[Constraint]:
        from repro.ilp.compile import rows_to_constraints

        return rows_to_constraints(self.rows, variables)


class _CooAccumulator:
    """COO triplet accumulator for one constraint family (<= or ==)."""

    __slots__ = ("data", "rows", "cols", "rhs")

    def __init__(self) -> None:
        self.data: List[float] = []
        self.rows: List[int] = []
        self.cols: List[int] = []
        self.rhs: List[float] = []

    def add_row(self, cols: Sequence[int], vals: Sequence[float], rhs: float) -> None:
        row_index = len(self.rhs)
        self.rows.extend([row_index] * len(cols))
        self.cols.extend(cols)
        self.data.extend(vals)
        self.rhs.append(rhs)

    def to_csr(self, num_columns: int) -> sparse.csr_matrix:
        return sparse.csr_matrix(
            (self.data, (self.rows, self.cols)), shape=(len(self.rhs), num_columns)
        )

    def rhs_array(self) -> np.ndarray:
        return np.array(self.rhs, dtype=float)


def _widen_csr(matrix: sparse.csr_matrix, num_columns: int) -> sparse.csr_matrix:
    """Reinterpret a CSR matrix with extra (empty) trailing columns.

    Shares the underlying data arrays — no copy is made.
    """
    if matrix.shape[1] == num_columns:
        return matrix
    return sparse.csr_matrix(
        (matrix.data, matrix.indices, matrix.indptr),
        shape=(matrix.shape[0], num_columns),
    )
