"""The MILP :class:`Model` container and its standard-form export.

A model owns a set of variables, a set of linear constraints and a linear
objective.  It can be exported to the standard matrix form

    minimise    c^T x
    subject to  A_ub x <= b_ub
                A_eq x == b_eq
                lb <= x <= ub
                x_i integer for i in `integrality`

which is the interface shared by the HiGHS backend (``scipy.optimize.milp``)
and the pure-Python branch-and-bound backend.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

import numpy as np
from scipy import sparse

from repro.errors import ModelError
from repro.ilp.expr import (
    DEFAULT_TOLERANCE,
    Constraint,
    ExprLike,
    LinExpr,
    Sense,
    Variable,
    VarType,
)
from repro.ilp.solution import Solution

_model_counter = itertools.count()


@dataclass
class StandardForm:
    """Matrix representation of a model, consumed by solver backends.

    All arrays are indexed consistently with ``variables``: column ``j`` of the
    constraint matrices corresponds to ``variables[j]``.
    """

    variables: List[Variable]
    objective: np.ndarray
    objective_constant: float
    a_ub: sparse.csr_matrix
    b_ub: np.ndarray
    a_eq: sparse.csr_matrix
    b_eq: np.ndarray
    lower: np.ndarray
    upper: np.ndarray
    integrality: np.ndarray
    maximize: bool

    @property
    def num_variables(self) -> int:
        return len(self.variables)

    @property
    def num_constraints(self) -> int:
        return int(self.a_ub.shape[0] + self.a_eq.shape[0])

    @property
    def num_integer_variables(self) -> int:
        return int(np.count_nonzero(self.integrality))


class Model:
    """A mixed integer linear programming model.

    Example
    -------
    >>> from repro.ilp import Model
    >>> m = Model("demo")
    >>> x = m.add_continuous("x", lb=0, ub=10)
    >>> b = m.add_binary("b")
    >>> m.add_constraint(x + 4 * b <= 8, name="cap")
    >>> m.set_objective(x + 2 * b, sense="max")
    >>> solution = m.solve()
    >>> round(solution.objective, 6)
    8.0
    """

    #: Default big-M constant used by linearisation helpers when the caller
    #: does not provide a tighter bound.  Layout coordinates in this project
    #: are bounded by the layout area (at most a few thousand micrometres),
    #: so 1e5 is safely larger than any honest bound while staying small
    #: enough not to wreck LP conditioning.
    DEFAULT_BIG_M = 1.0e5

    def __init__(self, name: str = "model") -> None:
        self.name = name
        self._id = next(_model_counter)
        self._variables: List[Variable] = []
        self._var_names: Dict[str, Variable] = {}
        self._constraints: List[Constraint] = []
        self._objective: LinExpr = LinExpr()
        self._maximize = False
        self._aux_counter = itertools.count()

    # ------------------------------------------------------------------ #
    # variables
    # ------------------------------------------------------------------ #

    def add_var(
        self,
        name: str = "",
        lb: float = 0.0,
        ub: float = float("inf"),
        vartype: VarType = VarType.CONTINUOUS,
    ) -> Variable:
        """Create and register a new decision variable.

        Variable names must be unique within the model; an empty name is
        replaced by an automatically generated one.
        """
        if not name:
            name = f"_v{next(self._aux_counter)}"
        if name in self._var_names:
            raise ModelError(f"duplicate variable name {name!r} in model {self.name!r}")
        if vartype is VarType.BINARY:
            lb = max(0.0, float(lb))
            ub = min(1.0, float(ub))
        var = Variable(name, len(self._variables), lb, ub, vartype, self._id)
        self._variables.append(var)
        self._var_names[name] = var
        return var

    def add_continuous(
        self, name: str = "", lb: float = 0.0, ub: float = float("inf")
    ) -> Variable:
        """Add a continuous variable with the given bounds."""
        return self.add_var(name, lb, ub, VarType.CONTINUOUS)

    def add_integer(
        self, name: str = "", lb: float = 0.0, ub: float = float("inf")
    ) -> Variable:
        """Add a general integer variable with the given bounds."""
        return self.add_var(name, lb, ub, VarType.INTEGER)

    def add_binary(self, name: str = "") -> Variable:
        """Add a 0-1 variable."""
        return self.add_var(name, 0.0, 1.0, VarType.BINARY)

    def get_var(self, name: str) -> Variable:
        """Look up a variable by name."""
        try:
            return self._var_names[name]
        except KeyError as exc:
            raise ModelError(f"no variable named {name!r} in model {self.name!r}") from exc

    @property
    def variables(self) -> Sequence[Variable]:
        return tuple(self._variables)

    @property
    def num_variables(self) -> int:
        return len(self._variables)

    # ------------------------------------------------------------------ #
    # constraints and objective
    # ------------------------------------------------------------------ #

    def add_constraint(self, constraint: Constraint, name: str = "") -> Constraint:
        """Register a constraint built from a comparison expression."""
        if not isinstance(constraint, Constraint):
            raise ModelError(
                "add_constraint expects a Constraint (build one with <=, >= or ==)"
            )
        self._check_ownership(constraint.expr)
        if name:
            constraint = constraint.with_name(name)
        elif not constraint.name:
            constraint = constraint.with_name(f"c{len(self._constraints)}")
        self._constraints.append(constraint)
        return constraint

    def add_constraints(
        self, constraints: Iterable[Constraint], prefix: str = ""
    ) -> List[Constraint]:
        """Register several constraints, optionally sharing a name prefix."""
        added = []
        for idx, constraint in enumerate(constraints):
            name = f"{prefix}[{idx}]" if prefix else ""
            added.append(self.add_constraint(constraint, name))
        return added

    @property
    def constraints(self) -> Sequence[Constraint]:
        return tuple(self._constraints)

    @property
    def num_constraints(self) -> int:
        return len(self._constraints)

    def set_objective(self, objective: ExprLike, sense: str = "min") -> None:
        """Set the linear objective.

        ``sense`` is ``"min"`` or ``"max"``.
        """
        expr = LinExpr.from_value(objective)
        self._check_ownership(expr)
        if sense not in ("min", "max"):
            raise ModelError(f"objective sense must be 'min' or 'max', got {sense!r}")
        self._objective = expr
        self._maximize = sense == "max"

    @property
    def objective(self) -> LinExpr:
        return self._objective

    @property
    def is_maximization(self) -> bool:
        return self._maximize

    def _check_ownership(self, expr: LinExpr) -> None:
        for var in expr.coeffs:
            if var._model_id != self._id:
                raise ModelError(
                    f"variable {var.name!r} belongs to a different model and "
                    f"cannot be used in model {self.name!r}"
                )

    # ------------------------------------------------------------------ #
    # export
    # ------------------------------------------------------------------ #

    def to_standard_form(self) -> StandardForm:
        """Export the model to the matrix form used by solver backends."""
        n = len(self._variables)
        objective = np.zeros(n)
        for var, coeff in self._objective.coeffs.items():
            objective[var.index] = coeff

        ub_rows: List[Dict[int, float]] = []
        ub_rhs: List[float] = []
        eq_rows: List[Dict[int, float]] = []
        eq_rhs: List[float] = []

        for constraint in self._constraints:
            row = {var.index: coeff for var, coeff in constraint.expr.coeffs.items()}
            rhs = -constraint.expr.constant
            if constraint.sense is Sense.LE:
                ub_rows.append(row)
                ub_rhs.append(rhs)
            elif constraint.sense is Sense.GE:
                ub_rows.append({idx: -coeff for idx, coeff in row.items()})
                ub_rhs.append(-rhs)
            else:
                eq_rows.append(row)
                eq_rhs.append(rhs)

        a_ub = _rows_to_csr(ub_rows, n)
        a_eq = _rows_to_csr(eq_rows, n)

        lower = np.array([var.lb for var in self._variables], dtype=float)
        upper = np.array([var.ub for var in self._variables], dtype=float)
        integrality = np.array(
            [1 if var.is_integer else 0 for var in self._variables], dtype=int
        )

        return StandardForm(
            variables=list(self._variables),
            objective=objective,
            objective_constant=self._objective.constant,
            a_ub=a_ub,
            b_ub=np.array(ub_rhs, dtype=float),
            a_eq=a_eq,
            b_eq=np.array(eq_rhs, dtype=float),
            lower=lower,
            upper=upper,
            integrality=integrality,
            maximize=self._maximize,
        )

    # ------------------------------------------------------------------ #
    # solving and checking
    # ------------------------------------------------------------------ #

    def solve(
        self,
        backend: str = "highs",
        time_limit: float | None = None,
        mip_gap: float | None = None,
        **options,
    ) -> Solution:
        """Solve the model with the requested backend.

        Parameters
        ----------
        backend:
            ``"highs"`` (default, SciPy's HiGHS MILP solver) or
            ``"branch-and-bound"`` (the pure-Python reference backend).
        time_limit:
            Wall-clock limit in seconds, or ``None`` for no limit.
        mip_gap:
            Relative optimality gap at which the backend may stop early.
        options:
            Backend-specific keyword options.
        """
        from repro.ilp.backends import get_backend

        solver = get_backend(backend)
        return solver.solve(self, time_limit=time_limit, mip_gap=mip_gap, **options)

    def check_solution(
        self, solution: Solution, tolerance: float = DEFAULT_TOLERANCE
    ) -> List[Constraint]:
        """Return the constraints violated by a solution (empty when clean)."""
        if not solution.is_feasible:
            raise ModelError("cannot check an infeasible/errored solution")
        violated = []
        for constraint in self._constraints:
            if not constraint.is_satisfied(solution.values, tolerance):
                violated.append(constraint)
        return violated

    def statistics(self) -> Dict[str, int]:
        """Return simple model size statistics for reporting."""
        num_binary = sum(1 for v in self._variables if v.vartype is VarType.BINARY)
        num_integer = sum(1 for v in self._variables if v.vartype is VarType.INTEGER)
        return {
            "variables": len(self._variables),
            "binary_variables": num_binary,
            "integer_variables": num_integer,
            "continuous_variables": len(self._variables) - num_binary - num_integer,
            "constraints": len(self._constraints),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        stats = self.statistics()
        return (
            f"Model({self.name!r}, {stats['variables']} vars "
            f"[{stats['binary_variables']} bin, {stats['integer_variables']} int], "
            f"{stats['constraints']} constraints)"
        )


def _rows_to_csr(rows: List[Dict[int, float]], num_columns: int) -> sparse.csr_matrix:
    """Assemble a CSR matrix from sparse row dictionaries."""
    data: List[float] = []
    row_indices: List[int] = []
    col_indices: List[int] = []
    for row_index, row in enumerate(rows):
        for col_index, value in row.items():
            row_indices.append(row_index)
            col_indices.append(col_index)
            data.append(value)
    return sparse.csr_matrix(
        (data, (row_indices, col_indices)), shape=(len(rows), num_columns)
    )
