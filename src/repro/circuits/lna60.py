"""Reconstruction of the paper's 60 GHz low-noise amplifier benchmark.

Published statistics (Table 1): 19 microstrips, 28 devices, manual layout
area 600 µm x 855 µm, second area setting 570 µm x 810 µm.  This circuit is
only evaluated for layout quality in the paper (it does not appear in
Figure 11).
"""

from __future__ import annotations

from repro.circuit.netlist import LayoutArea
from repro.circuits.generator import AmplifierSpec, BenchmarkCircuit, build_amplifier_circuit
from repro.tech.technology import Technology

#: Layout area of the manual design (first area setting in Table 1).
MANUAL_AREA = LayoutArea(600.0, 855.0)

#: Smaller stress-test area (second area setting in Table 1).
SMALL_AREA = LayoutArea(570.0, 810.0)


def lna60_spec(area: LayoutArea = MANUAL_AREA) -> AmplifierSpec:
    """Full-size specification matching the published counts."""
    return AmplifierSpec(
        name="lna60",
        num_stages=3,
        operating_frequency_ghz=60.0,
        area=area,
        num_microstrips=19,
        num_devices=28,
        stage_gm_ms=50.0,
    )


def build_lna60(
    area: LayoutArea = MANUAL_AREA,
    technology: Technology | None = None,
    seed: int | None = None,
) -> BenchmarkCircuit:
    """Build the full-size 60 GHz LNA reconstruction."""
    return build_amplifier_circuit(lna60_spec(area), technology, seed=seed)


def build_lna60_reduced(
    area: LayoutArea | None = None,
    technology: Technology | None = None,
    seed: int | None = None,
) -> BenchmarkCircuit:
    """A reduced 60 GHz LNA (1 stage, 6 microstrips, 8 devices)."""
    spec = AmplifierSpec(
        name="lna60_reduced",
        num_stages=1,
        operating_frequency_ghz=60.0,
        area=area or LayoutArea(560.0, 640.0),
        num_microstrips=6,
        num_devices=8,
        stage_gm_ms=50.0,
    )
    return build_amplifier_circuit(spec, technology, seed=seed)
