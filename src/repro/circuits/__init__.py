"""Reconstructed benchmark circuits (the paper's three RF circuits)."""

from repro.circuits.generator import (
    AmplifierSpec,
    BenchmarkCircuit,
    build_amplifier_circuit,
)
from repro.circuits.lna94 import build_lna94, build_lna94_reduced, lna94_spec
from repro.circuits.buffer60 import build_buffer60, build_buffer60_reduced, buffer60_spec
from repro.circuits.lna60 import build_lna60, build_lna60_reduced, lna60_spec
from repro.circuits.registry import (
    FULL_SIZE_ENV,
    area_settings,
    circuit_names,
    get_circuit,
    pilp_area,
    use_full_size,
)

__all__ = [
    "AmplifierSpec",
    "BenchmarkCircuit",
    "build_amplifier_circuit",
    "build_lna94",
    "build_lna94_reduced",
    "lna94_spec",
    "build_buffer60",
    "build_buffer60_reduced",
    "buffer60_spec",
    "build_lna60",
    "build_lna60_reduced",
    "lna60_spec",
    "get_circuit",
    "circuit_names",
    "area_settings",
    "pilp_area",
    "use_full_size",
    "FULL_SIZE_ENV",
]
