"""Reconstruction of the paper's 60 GHz buffer benchmark.

Published statistics (Table 1): 14 microstrips, 26 devices, manual layout
area 595 µm x 850 µm, second area setting 505 µm x 720 µm, P-ILP layout
500 µm x 800 µm.  Figure 11(b) reports a gain of 17.0 dB (P-ILP) vs 16.8 dB
(manual) at 60 GHz.
"""

from __future__ import annotations

from repro.circuit.netlist import LayoutArea
from repro.circuits.generator import AmplifierSpec, BenchmarkCircuit, build_amplifier_circuit
from repro.tech.technology import Technology

#: Layout area of the manual design (first area setting in Table 1).
MANUAL_AREA = LayoutArea(595.0, 850.0)

#: Smaller stress-test area (second area setting in Table 1).
SMALL_AREA = LayoutArea(505.0, 720.0)

#: Area of the layout the paper's P-ILP flow produced (Figure 11(b)).
PILP_AREA = LayoutArea(500.0, 800.0)


def buffer60_spec(area: LayoutArea = MANUAL_AREA) -> AmplifierSpec:
    """Full-size specification matching the published counts."""
    return AmplifierSpec(
        name="buffer60",
        num_stages=2,
        operating_frequency_ghz=60.0,
        area=area,
        num_microstrips=14,
        num_devices=26,
        # Calibrated so the designed two-stage response lands near the
        # ~17 dB gain Figure 11(b) reports at 60 GHz.
        stage_gm_ms=68.0,
    )


def build_buffer60(
    area: LayoutArea = MANUAL_AREA,
    technology: Technology | None = None,
    seed: int | None = None,
) -> BenchmarkCircuit:
    """Build the full-size 60 GHz buffer reconstruction."""
    return build_amplifier_circuit(buffer60_spec(area), technology, seed=seed)


def build_buffer60_reduced(
    area: LayoutArea | None = None,
    technology: Technology | None = None,
    seed: int | None = None,
) -> BenchmarkCircuit:
    """A reduced 60 GHz buffer (1 stage, 6 microstrips, 8 devices)."""
    spec = AmplifierSpec(
        name="buffer60_reduced",
        num_stages=1,
        operating_frequency_ghz=60.0,
        area=area or LayoutArea(460.0, 560.0),
        num_microstrips=6,
        num_devices=8,
        stage_gm_ms=68.0,
    )
    return build_amplifier_circuit(spec, technology, seed=seed)
