"""Parametric reconstruction of mm-wave amplifier benchmark circuits.

The paper evaluates on three proprietary industrial circuits; only their
aggregate statistics are published (number of microstrips, number of
devices, layout area, operating frequency).  This generator reconstructs
circuits with exactly those statistics:

* a multi-stage common-source/cascode RF chain (input pad, per-stage gate
  matching stub, inter-stage DC-block capacitors and series lines, output
  pad) whose microstrip target lengths are derived from the guided
  wavelength at the operating frequency,
* per-stage gate-bias and drain-supply branches (DC pads, resistors,
  decoupling capacitors) which account for the bulk of the device count in
  real mm-wave layouts,
* additional decoupling capacitors / ground-stub nets to top the counts up
  to the published numbers.

The generator returns both the :class:`~repro.circuit.netlist.Netlist` and
the :class:`~repro.rf.amplifier.SignalChain` describing the circuit's RF
path, so the same object drives Table 1 (layout quality) and Figure 11
(S-parameters).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.errors import NetlistError
from repro.circuit.device import (
    Device,
    make_capacitor,
    make_dc_pad,
    make_resistor,
    make_rf_pad,
    make_transistor,
)
from repro.circuit.microstrip_net import MicrostripNet, Terminal
from repro.circuit.netlist import LayoutArea, Netlist
from repro.rf.amplifier import ChainElement, SignalChain
from repro.rf.microstrip import MicrostripLine
from repro.tech.technology import Technology, default_technology


@dataclass(frozen=True)
class AmplifierSpec:
    """Parameters of a reconstructed benchmark circuit.

    Attributes
    ----------
    name:
        Circuit name (``"lna94"``...).
    num_stages:
        Number of gain stages in the RF chain.
    operating_frequency_ghz:
        Centre frequency.
    area:
        Layout area (the paper's first area setting).
    num_microstrips, num_devices:
        Published counts the reconstruction must match exactly.
    stage_gm_ms:
        Transconductance per stage (mS); tuned so that the designed response
        lands in the paper's gain range.
    pad_size, dc_pad_size:
        Pad outline dimensions in micrometres.
    transistor_size, capacitor_size:
        Device outline dimensions in micrometres.
    seed:
        Optional RNG seed.  When set, every microstrip's target length is
        jittered by a deterministic ±6% (``random.Random(seed)``), so one
        specification yields a family of distinct-but-plausible instances —
        the scenario sweeps use this to mass-produce workloads.  ``None``
        (the default) disables the jitter entirely and reproduces the
        published reconstructions bit-for-bit.
    """

    name: str
    num_stages: int
    operating_frequency_ghz: float
    area: LayoutArea
    num_microstrips: int
    num_devices: int
    stage_gm_ms: float = 48.0
    pad_size: float = 70.0
    dc_pad_size: float = 55.0
    transistor_size: Tuple[float, float] = (42.0, 32.0)
    capacitor_size: Tuple[float, float] = (34.0, 34.0)
    resistor_size: Tuple[float, float] = (22.0, 12.0)
    seed: Optional[int] = None


@dataclass
class BenchmarkCircuit:
    """A reconstructed benchmark: netlist + RF signal chain + metadata."""

    netlist: Netlist
    chain: SignalChain
    spec: AmplifierSpec

    @property
    def name(self) -> str:
        return self.netlist.name

    def summary(self) -> Dict[str, object]:
        data = self.netlist.summary()
        data["num_stages"] = self.spec.num_stages
        return data


def build_amplifier_circuit(
    spec: AmplifierSpec,
    technology: Optional[Technology] = None,
    seed: Optional[int] = None,
) -> BenchmarkCircuit:
    """Construct a benchmark circuit from its specification.

    ``seed`` overrides ``spec.seed`` (see :class:`AmplifierSpec`); the
    construction is fully deterministic given the specification and seed.

    Raises :class:`NetlistError` if the requested device / microstrip counts
    are too small to hold the RF chain of ``num_stages`` stages.
    """
    if seed is not None:
        spec = replace(spec, seed=seed)
    rng = random.Random(spec.seed) if spec.seed is not None else None
    technology = technology or default_technology()
    line = MicrostripLine.from_technology(technology)
    wavelength_um = line.guided_wavelength(spec.operating_frequency_ghz * 1.0e9) * 1.0e6

    # Length scale: keep series lines and stubs to fractions of the guided
    # wavelength, but never so long that the netlist cannot fit in its area.
    budget = 0.38 * spec.area.area / (
        technology.microstrip_width + technology.spacing
    )

    devices: List[Device] = []
    nets: List[MicrostripNet] = []
    chain_elements: List[ChainElement] = []

    def add_device(device: Device) -> Device:
        devices.append(device)
        return device

    def add_net(
        name: str,
        start: Tuple[str, str],
        end: Tuple[str, str],
        length: float,
    ) -> MicrostripNet:
        if rng is not None:
            length *= rng.uniform(0.94, 1.06)
        net = MicrostripNet(
            name,
            Terminal(*start),
            Terminal(*end),
            target_length=round(length, 1),
        )
        nets.append(net)
        return net

    # ------------------------------------------------------------------ #
    # the RF chain
    # ------------------------------------------------------------------ #

    series_length = min(0.22 * wavelength_um, 0.55 * min(spec.area.width, spec.area.height))
    stub_length = min(0.12 * wavelength_um, 0.35 * min(spec.area.width, spec.area.height))
    bias_length = 0.45 * stub_length + 60.0

    pad_in = add_device(make_rf_pad("P_IN", size=spec.pad_size))
    pad_out = add_device(make_rf_pad("P_OUT", size=spec.pad_size))

    chain_elements.append(ChainElement("device", pad_in.name))
    previous_node: Tuple[str, str] = (pad_in.name, "SIG")

    transistor_w, transistor_h = spec.transistor_size
    cap_w, cap_h = spec.capacitor_size

    for stage in range(1, spec.num_stages + 1):
        transistor = add_device(
            make_transistor(
                f"M{stage}", width=transistor_w, height=transistor_h, gm_ms=spec.stage_gm_ms
            )
        )
        # Series line into the gate.
        ms_in = add_net(
            f"ms_g{stage}", previous_node, (transistor.name, "G"), series_length
        )
        chain_elements.append(ChainElement("line", ms_in.name))

        # Gate matching stub terminated in a MIM capacitor (RF ground).
        stub_cap = add_device(
            make_capacitor(f"C_g{stage}", width=cap_w, height=cap_h, c_ff=180.0)
        )
        stub = add_net(
            f"stub_g{stage}", (transistor.name, "G"), (stub_cap.name, "P1"), stub_length
        )
        chain_elements.append(ChainElement("stub", stub.name))
        chain_elements.append(ChainElement("device", transistor.name))

        if stage < spec.num_stages:
            # Inter-stage DC block.
            block = add_device(
                make_capacitor(f"C_b{stage}", width=cap_w, height=cap_h, c_ff=90.0)
            )
            ms_d = add_net(
                f"ms_d{stage}", (transistor.name, "D"), (block.name, "P1"),
                0.6 * series_length,
            )
            chain_elements.append(ChainElement("line", ms_d.name))
            chain_elements.append(ChainElement("device", block.name))
            previous_node = (block.name, "P2")
        else:
            previous_node = (transistor.name, "D")

    ms_out = add_net("ms_out", previous_node, (pad_out.name, "SIG"), series_length)
    chain_elements.append(ChainElement("line", ms_out.name))
    chain_elements.append(ChainElement("device", pad_out.name))

    # ------------------------------------------------------------------ #
    # bias and supply branches (not part of the RF chain)
    # ------------------------------------------------------------------ #

    remaining_devices = spec.num_devices - len(devices)
    remaining_nets = spec.num_microstrips - len(nets)
    if remaining_devices < 0 or remaining_nets < 0:
        raise NetlistError(
            f"circuit {spec.name!r}: published counts "
            f"({spec.num_devices} devices, {spec.num_microstrips} microstrips) are "
            f"smaller than the RF chain alone "
            f"({len(devices)} devices, {len(nets)} microstrips)"
        )

    resistor_w, resistor_h = spec.resistor_size
    stage_cycle = list(range(1, spec.num_stages + 1))
    branch_index = 0
    # Gate-bias then drain-supply branches, round-robin over the stages, for
    # as long as both budgets allow a 2-device / 2-net branch.
    while remaining_devices >= 2 and remaining_nets >= 2:
        stage = stage_cycle[branch_index % len(stage_cycle)]
        flavour = "g" if branch_index % 2 == 0 else "d"
        suffix = f"{flavour}{stage}_{branch_index}"
        pad = add_device(make_dc_pad(f"P_{suffix}", size=spec.dc_pad_size))
        if flavour == "g":
            element = add_device(
                make_resistor(f"R_{suffix}", width=resistor_w, height=resistor_h)
            )
            add_net(f"bias_{suffix}a", (pad.name, "SIG"), (element.name, "P1"), bias_length)
            add_net(
                f"bias_{suffix}b", (element.name, "P2"), (f"M{stage}", "G"), bias_length
            )
        else:
            element = add_device(
                make_capacitor(f"C_{suffix}", width=cap_w, height=cap_h, c_ff=400.0)
            )
            add_net(f"vdd_{suffix}a", (pad.name, "SIG"), (element.name, "P1"), bias_length)
            add_net(
                f"vdd_{suffix}b", (element.name, "P2"), (f"M{stage}", "D"), bias_length
            )
        remaining_devices -= 2
        remaining_nets -= 2
        branch_index += 1

    # Decap + single net pairs.
    decap_index = 0
    dc_pads = [device for device in devices if device.device_type.value == "dc_pad"]
    while remaining_devices >= 1 and remaining_nets >= 1 and dc_pads:
        decap = add_device(
            make_capacitor(f"C_dec{decap_index}", width=cap_w, height=cap_h, c_ff=500.0)
        )
        anchor = dc_pads[decap_index % len(dc_pads)]
        add_net(
            f"dec_net{decap_index}", (anchor.name, "SIG"), (decap.name, "P1"),
            0.8 * bias_length,
        )
        remaining_devices -= 1
        remaining_nets -= 1
        decap_index += 1

    # Standalone decoupling capacitors (devices only).
    while remaining_devices >= 1:
        add_device(
            make_capacitor(
                f"C_fill{remaining_devices}", width=cap_w, height=cap_h, c_ff=500.0
            )
        )
        remaining_devices -= 1

    # Extra ground-stub nets between existing capacitors (nets only).
    capacitors = [
        device for device in devices
        if device.device_type.value == "capacitor" and not device.name.startswith("C_b")
    ]
    extra_index = 0
    while remaining_nets >= 1 and len(capacitors) >= 2:
        first = capacitors[extra_index % len(capacitors)]
        second = capacitors[(extra_index + 1) % len(capacitors)]
        add_net(
            f"gnd_stub{extra_index}", (first.name, "P2"), (second.name, "P2"),
            0.6 * bias_length,
        )
        remaining_nets -= 1
        extra_index += 1

    if remaining_nets > 0 or remaining_devices > 0:
        raise NetlistError(
            f"circuit {spec.name!r}: could not reach the published counts "
            f"({remaining_devices} devices, {remaining_nets} microstrips left over)"
        )

    # Keep the total metal demand within the area budget by scaling lengths
    # down if the reconstruction overshoots (never scales the RF chain below
    # half of its nominal electrical lengths).
    total_length = sum(net.target_length for net in nets)
    if total_length > budget:
        scale = max(0.5, budget / total_length)
        nets = [
            MicrostripNet(
                net.name,
                net.start,
                net.end,
                target_length=round(net.target_length * scale, 1),
                width=net.width,
                max_chain_points=net.max_chain_points,
                impedance_ohm=net.impedance_ohm,
            )
            for net in nets
        ]

    netlist = Netlist(
        name=spec.name,
        devices=devices,
        microstrips=nets,
        area=spec.area,
        technology=technology,
        operating_frequency_ghz=spec.operating_frequency_ghz,
    )
    chain = SignalChain(spec.name, chain_elements)
    return BenchmarkCircuit(netlist=netlist, chain=chain, spec=spec)
