"""Registry of the reconstructed benchmark circuits.

Keys follow the paper's circuit names; every circuit is available in a
``full`` variant (published microstrip / device counts and areas) and a
``reduced`` variant sized so the complete Table 1 harness runs quickly on a
laptop.  The Table 1 experiment also needs each circuit's *second* (smaller,
stress-test) area, which :func:`area_settings` provides.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, List, Optional

from repro.errors import ExperimentError
from repro.circuit.netlist import LayoutArea
from repro.circuits import buffer60, lna60, lna94
from repro.circuits.generator import BenchmarkCircuit
from repro.tech.technology import Technology

#: Environment variable that switches the experiments to the full-size
#: reconstructions (long solver runtimes).
FULL_SIZE_ENV = "RFIC_FULL_SIZE"

_BUILDERS: Dict[str, Dict[str, Callable[..., BenchmarkCircuit]]] = {
    "lna94": {"full": lna94.build_lna94, "reduced": lna94.build_lna94_reduced},
    "buffer60": {"full": buffer60.build_buffer60, "reduced": buffer60.build_buffer60_reduced},
    "lna60": {"full": lna60.build_lna60, "reduced": lna60.build_lna60_reduced},
}

_AREAS: Dict[str, Dict[str, LayoutArea]] = {
    "lna94": {
        "manual": lna94.MANUAL_AREA,
        "small": lna94.SMALL_AREA,
        "pilp": lna94.PILP_AREA,
    },
    "buffer60": {
        "manual": buffer60.MANUAL_AREA,
        "small": buffer60.SMALL_AREA,
        "pilp": buffer60.PILP_AREA,
    },
    "lna60": {"manual": lna60.MANUAL_AREA, "small": lna60.SMALL_AREA},
}


def circuit_names() -> List[str]:
    """Names of the available benchmark circuits (Table 1 order)."""
    return ["lna94", "buffer60", "lna60"]


def use_full_size() -> bool:
    """Whether the full-size reconstructions were requested via environment."""
    return os.environ.get(FULL_SIZE_ENV, "").strip().lower() in ("1", "true", "yes", "on")


def get_circuit(
    name: str,
    variant: Optional[str] = None,
    area: Optional[LayoutArea] = None,
    technology: Optional[Technology] = None,
    seed: Optional[int] = None,
) -> BenchmarkCircuit:
    """Build a benchmark circuit by name.

    Parameters
    ----------
    name:
        One of :func:`circuit_names`.
    variant:
        ``"full"`` or ``"reduced"``; defaults to ``"full"`` when the
        ``RFIC_FULL_SIZE`` environment variable is set and ``"reduced"``
        otherwise.
    area:
        Optional layout-area override (used for the second area setting of
        Table 1; only meaningful for the ``full`` variant).
    seed:
        Optional RNG seed forwarded to the generator (deterministic
        target-length jitter; ``None`` reproduces the published
        reconstruction exactly).
    """
    try:
        builders = _BUILDERS[name]
    except KeyError as exc:
        raise ExperimentError(
            f"unknown benchmark circuit {name!r}; available: {circuit_names()}"
        ) from exc
    if variant is None:
        variant = "full" if use_full_size() else "reduced"
    if variant not in builders:
        raise ExperimentError(
            f"unknown variant {variant!r} for circuit {name!r}; use 'full' or 'reduced'"
        )
    builder = builders[variant]
    if area is not None:
        return builder(area=area, technology=technology, seed=seed)
    return builder(technology=technology, seed=seed)


def area_settings(name: str, variant: Optional[str] = None) -> List[LayoutArea]:
    """The two area settings of Table 1 for a circuit.

    For the reduced variants the second setting is derived by shrinking the
    reduced circuit's own area by the same ratio the paper applied to the
    full circuit.
    """
    if name not in _AREAS:
        raise ExperimentError(
            f"unknown benchmark circuit {name!r}; available: {circuit_names()}"
        )
    if variant is None:
        variant = "full" if use_full_size() else "reduced"
    manual = _AREAS[name]["manual"]
    small = _AREAS[name]["small"]
    if variant == "full":
        return [manual, small]
    reduced_default = get_circuit(name, "reduced").netlist.area
    ratio = (small.width * small.height) / (manual.width * manual.height)
    scale = ratio**0.5
    return [reduced_default, reduced_default.scaled(scale)]


def pilp_area(name: str, variant: Optional[str] = None) -> LayoutArea:
    """The area the paper's generated (P-ILP) layout used for Figure 11."""
    if name not in _AREAS:
        raise ExperimentError(f"unknown benchmark circuit {name!r}")
    if variant is None:
        variant = "full" if use_full_size() else "reduced"
    full_pilp = _AREAS[name].get("pilp", _AREAS[name]["manual"])
    if variant == "full":
        return full_pilp
    manual = _AREAS[name]["manual"]
    reduced_default = get_circuit(name, "reduced").netlist.area
    ratio = (full_pilp.width * full_pilp.height) / (manual.width * manual.height)
    return reduced_default.scaled(ratio**0.5)
