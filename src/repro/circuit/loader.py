"""JSON serialisation of netlists.

The on-disk format is a single JSON document containing the technology, the
layout area, the devices (with pins) and the microstrips (with their exact
target lengths).  It is deliberately simple: the reconstructed benchmark
circuits ship as generator code, but users bring their own circuits as JSON.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Mapping, Union

from repro.errors import NetlistError
from repro.circuit.device import Device
from repro.circuit.microstrip_net import MicrostripNet
from repro.circuit.netlist import LayoutArea, Netlist
from repro.tech.technology import Technology

#: Current schema version written by :func:`netlist_to_dict`.
SCHEMA_VERSION = 1

PathLike = Union[str, Path]


def netlist_to_dict(netlist: Netlist) -> Dict[str, object]:
    """Serialise a netlist to a JSON-compatible dictionary."""
    return {
        "schema_version": SCHEMA_VERSION,
        "name": netlist.name,
        "operating_frequency_ghz": netlist.operating_frequency_ghz,
        "area": {"width": netlist.area.width, "height": netlist.area.height},
        "technology": netlist.technology.as_dict(),
        "devices": [device.as_dict() for device in netlist.devices],
        "microstrips": [net.as_dict() for net in netlist.microstrips],
    }


def netlist_from_dict(data: Mapping[str, object]) -> Netlist:
    """Deserialise a netlist from :func:`netlist_to_dict` output."""
    try:
        version = int(data.get("schema_version", SCHEMA_VERSION))
        if version != SCHEMA_VERSION:
            raise NetlistError(
                f"unsupported netlist schema version {version}; expected {SCHEMA_VERSION}"
            )
        area_data = data["area"]
        area = LayoutArea(float(area_data["width"]), float(area_data["height"]))
        technology_data = data.get("technology")
        technology = (
            Technology.from_dict(dict(technology_data)) if technology_data else None
        )
        devices = [Device.from_dict(entry) for entry in data.get("devices", [])]
        microstrips = [
            MicrostripNet.from_dict(entry) for entry in data.get("microstrips", [])
        ]
        return Netlist(
            name=str(data["name"]),
            devices=devices,
            microstrips=microstrips,
            area=area,
            technology=technology,
            operating_frequency_ghz=float(data.get("operating_frequency_ghz", 60.0)),
        )
    except NetlistError:
        raise
    except (KeyError, ValueError, TypeError) as exc:
        raise NetlistError(f"malformed netlist document: {exc}") from exc


def save_netlist(netlist: Netlist, path: PathLike, indent: int = 2) -> Path:
    """Write a netlist to a JSON file and return the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        json.dump(netlist_to_dict(netlist), handle, indent=indent, sort_keys=True)
        handle.write("\n")
    return path


def load_netlist(path: PathLike) -> Netlist:
    """Read a netlist from a JSON file."""
    path = Path(path)
    if not path.exists():
        raise NetlistError(f"netlist file not found: {path}")
    try:
        with path.open("r", encoding="utf-8") as handle:
            data = json.load(handle)
    except json.JSONDecodeError as exc:
        raise NetlistError(f"invalid JSON in {path}: {exc}") from exc
    return netlist_from_dict(data)


def dumps_netlist(netlist: Netlist) -> str:
    """Serialise a netlist to a JSON string."""
    return json.dumps(netlist_to_dict(netlist), indent=2, sort_keys=True)


def loads_netlist(text: str) -> Netlist:
    """Deserialise a netlist from a JSON string."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise NetlistError(f"invalid JSON: {exc}") from exc
    return netlist_from_dict(data)
