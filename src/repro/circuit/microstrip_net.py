"""Microstrip nets: two-terminal transmission-line connections.

In mm-wave RFICs every signal interconnect is a microstrip transmission line
whose electrical length is fixed during circuit design (it is part of the
matching networks).  A :class:`MicrostripNet` therefore carries not just its
two terminals but also the *exact* length the routed line must realise —
constraint (13) of the paper.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

from repro.errors import NetlistError


@dataclass(frozen=True)
class Terminal:
    """One end of a microstrip: a (device, pin) pair."""

    device: str
    pin: str

    def __post_init__(self) -> None:
        if not self.device or not self.pin:
            raise NetlistError(
                f"terminal must name a device and a pin, got ({self.device!r}, {self.pin!r})"
            )

    def as_tuple(self) -> Tuple[str, str]:
        return (self.device, self.pin)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.device}.{self.pin}"


@dataclass(frozen=True)
class MicrostripNet:
    """A two-terminal microstrip with a required electrical length.

    Attributes
    ----------
    name:
        Unique net identifier.
    start, end:
        The two :class:`Terminal` connections.
    target_length:
        Required equivalent (electrical) length in micrometres.  The routed
        line's equivalent length (geometric + bends * δ) must equal this.
    width:
        Microstrip width override in micrometres; ``None`` means "use the
        technology default".
    max_chain_points:
        Initial number of chain points the ILP model allocates for this net
        (Phase 3 may insert more).  ``None`` lets the flow choose.
    impedance_ohm:
        Nominal characteristic impedance used by the RF substrate.
    """

    name: str
    start: Terminal
    end: Terminal
    target_length: float
    width: Optional[float] = None
    max_chain_points: Optional[int] = None
    impedance_ohm: float = 50.0

    def __post_init__(self) -> None:
        if not self.name:
            raise NetlistError("microstrip name must be non-empty")
        if not math.isfinite(self.target_length) or self.target_length <= 0:
            raise NetlistError(
                f"microstrip {self.name!r}: target_length must be positive, got "
                f"{self.target_length!r}"
            )
        if self.width is not None and self.width <= 0:
            raise NetlistError(
                f"microstrip {self.name!r}: width must be positive when given"
            )
        if self.max_chain_points is not None and self.max_chain_points < 2:
            raise NetlistError(
                f"microstrip {self.name!r}: at least two chain points are required"
            )
        if self.impedance_ohm <= 0:
            raise NetlistError(
                f"microstrip {self.name!r}: impedance must be positive"
            )
        if self.start == self.end:
            raise NetlistError(
                f"microstrip {self.name!r} connects a pin to itself"
            )

    # ------------------------------------------------------------------ #

    @property
    def terminals(self) -> Tuple[Terminal, Terminal]:
        return (self.start, self.end)

    def connects(self, device_name: str) -> bool:
        """True when either terminal lands on the named device."""
        return self.start.device == device_name or self.end.device == device_name

    def other_terminal(self, device_name: str) -> Terminal:
        """The terminal *not* on the named device.

        Raises :class:`NetlistError` if the device is on neither or both ends.
        """
        on_start = self.start.device == device_name
        on_end = self.end.device == device_name
        if on_start and not on_end:
            return self.end
        if on_end and not on_start:
            return self.start
        raise NetlistError(
            f"microstrip {self.name!r} does not connect {device_name!r} exactly once"
        )

    # -- serialisation ------------------------------------------------------ #

    def as_dict(self) -> Dict[str, object]:
        """Serialise to a JSON-friendly dictionary."""
        return {
            "name": self.name,
            "start": {"device": self.start.device, "pin": self.start.pin},
            "end": {"device": self.end.device, "pin": self.end.pin},
            "target_length": self.target_length,
            "width": self.width,
            "max_chain_points": self.max_chain_points,
            "impedance_ohm": self.impedance_ohm,
        }

    @staticmethod
    def from_dict(data: Mapping[str, object]) -> "MicrostripNet":
        """Deserialise from :meth:`as_dict` output."""
        try:
            start = data["start"]
            end = data["end"]
            width = data.get("width")
            chain_points = data.get("max_chain_points")
            return MicrostripNet(
                name=str(data["name"]),
                start=Terminal(str(start["device"]), str(start["pin"])),
                end=Terminal(str(end["device"]), str(end["pin"])),
                target_length=float(data["target_length"]),
                width=float(width) if width is not None else None,
                max_chain_points=int(chain_points) if chain_points is not None else None,
                impedance_ohm=float(data.get("impedance_ohm", 50.0)),
            )
        except (KeyError, ValueError, TypeError) as exc:
            raise NetlistError(f"malformed microstrip record: {exc}") from exc
