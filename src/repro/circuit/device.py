"""Devices, pads and their pins.

An RFIC netlist in this paper contains only a handful of device kinds:
transistors (often cascode pairs), MIM capacitors, spiral inductors,
resistors, and the RF / DC pads along the chip boundary.  For layout
generation a device is simply a rectangle with named pin locations; the
device type matters only for the RF simulation substrate and for reporting.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.errors import NetlistError
from repro.geometry.point import Point
from repro.geometry.rect import Rect


class DeviceType(enum.Enum):
    """Kind of a circuit device.

    The layout engine treats every kind identically (a rectangle with pins);
    the RF substrate uses the type to pick an electrical model, and pads get
    the boundary-placement constraint of equation (15).
    """

    TRANSISTOR = "transistor"
    CAPACITOR = "capacitor"
    INDUCTOR = "inductor"
    RESISTOR = "resistor"
    RF_PAD = "rf_pad"
    DC_PAD = "dc_pad"
    GENERIC = "generic"

    @property
    def is_pad(self) -> bool:
        return self in (DeviceType.RF_PAD, DeviceType.DC_PAD)


class Rotation(enum.IntEnum):
    """Device orientation in quarter turns counter-clockwise."""

    R0 = 0
    R90 = 1
    R180 = 2
    R270 = 3

    @property
    def degrees(self) -> int:
        return 90 * int(self)

    @staticmethod
    def from_degrees(value: int) -> "Rotation":
        if value % 90 != 0:
            raise NetlistError(f"rotation must be a multiple of 90 degrees, got {value}")
        return Rotation((value // 90) % 4)


@dataclass(frozen=True)
class Pin:
    """A connection point on a device.

    Attributes
    ----------
    name:
        Pin name, unique within its device (e.g. ``"G"``, ``"D"``, ``"S"``).
    offset_x, offset_y:
        Offset of the pin from the device centre in the unrotated (R0)
        orientation, in micrometres.
    equivalence_group:
        Pins sharing a non-empty group label are electrically interchangeable
        (the paper notes that such pins may be swapped by the model, e.g. the
        two terminals of a capacitor).
    """

    name: str
    offset_x: float
    offset_y: float
    equivalence_group: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise NetlistError("pin name must be non-empty")
        if not (math.isfinite(self.offset_x) and math.isfinite(self.offset_y)):
            raise NetlistError(f"pin {self.name!r} has non-finite offsets")

    def offset(self, rotation: Rotation = Rotation.R0) -> Point:
        """Pin offset from the device centre for a given orientation."""
        return Point(self.offset_x, self.offset_y).rotated(int(rotation))


@dataclass(frozen=True)
class Device:
    """A placeable circuit component.

    Attributes
    ----------
    name:
        Unique device identifier within the netlist.
    device_type:
        One of :class:`DeviceType`.
    width, height:
        Outline dimensions in the unrotated orientation, micrometres.
    pins:
        Mapping of pin name to :class:`Pin`.
    rotatable:
        Whether Phase 3 of the flow may rotate this device.  Pads are not
        rotatable (their orientation is fixed by the boundary).
    parameters:
        Free-form electrical parameters consumed by the RF substrate
        (e.g. ``{"gm_ms": 45.0}`` for a transistor or ``{"c_ff": 50.0}`` for
        a capacitor).
    """

    name: str
    device_type: DeviceType
    width: float
    height: float
    pins: Mapping[str, Pin] = field(default_factory=dict)
    rotatable: bool = True
    parameters: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise NetlistError("device name must be non-empty")
        if self.width <= 0 or self.height <= 0:
            raise NetlistError(
                f"device {self.name!r} must have positive dimensions, got "
                f"{self.width} x {self.height}"
            )
        object.__setattr__(self, "pins", dict(self.pins))
        object.__setattr__(self, "parameters", dict(self.parameters))
        for pin_name, pin in self.pins.items():
            if pin_name != pin.name:
                raise NetlistError(
                    f"device {self.name!r}: pin dict key {pin_name!r} does not match "
                    f"pin name {pin.name!r}"
                )
            half_w = self.width / 2.0
            half_h = self.height / 2.0
            margin = 1.0e-6
            if abs(pin.offset_x) > half_w + margin or abs(pin.offset_y) > half_h + margin:
                raise NetlistError(
                    f"device {self.name!r}: pin {pin.name!r} offset "
                    f"({pin.offset_x}, {pin.offset_y}) lies outside the outline"
                )

    # ------------------------------------------------------------------ #

    @property
    def is_pad(self) -> bool:
        """True for RF and DC pads (boundary-constrained devices)."""
        return self.device_type.is_pad

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def half_perimeter(self) -> float:
        """Half of the outline perimeter; used by the blurred-device model."""
        return self.width + self.height

    def dimensions(self, rotation: Rotation = Rotation.R0) -> Tuple[float, float]:
        """Outline dimensions after rotation (odd turns swap width/height)."""
        if int(rotation) % 2 == 0:
            return (self.width, self.height)
        return (self.height, self.width)

    def pin(self, name: str) -> Pin:
        """Look up a pin by name."""
        try:
            return self.pins[name]
        except KeyError as exc:
            raise NetlistError(
                f"device {self.name!r} has no pin {name!r}; available: {sorted(self.pins)}"
            ) from exc

    def pin_names(self) -> List[str]:
        return sorted(self.pins)

    def pin_position(
        self, pin_name: str, center: Point, rotation: Rotation = Rotation.R0
    ) -> Point:
        """Absolute pin location for a device placed at ``center``."""
        offset = self.pin(pin_name).offset(rotation)
        return Point(center.x + offset.x, center.y + offset.y)

    def outline(self, center: Point, rotation: Rotation = Rotation.R0) -> Rect:
        """Outline rectangle for a device placed at ``center``."""
        width, height = self.dimensions(rotation)
        return Rect.from_center(center, width, height)

    def equivalent_pins(self, pin_name: str) -> List[str]:
        """Names of pins interchangeable with ``pin_name`` (including itself)."""
        pin = self.pin(pin_name)
        if not pin.equivalence_group:
            return [pin_name]
        return sorted(
            name
            for name, candidate in self.pins.items()
            if candidate.equivalence_group == pin.equivalence_group
        )

    # -- serialisation ----------------------------------------------------- #

    def as_dict(self) -> Dict[str, object]:
        """Serialise to a JSON-friendly dictionary."""
        return {
            "name": self.name,
            "type": self.device_type.value,
            "width": self.width,
            "height": self.height,
            "rotatable": self.rotatable,
            "parameters": dict(self.parameters),
            "pins": [
                {
                    "name": pin.name,
                    "offset_x": pin.offset_x,
                    "offset_y": pin.offset_y,
                    "equivalence_group": pin.equivalence_group,
                }
                for pin in self.pins.values()
            ],
        }

    @staticmethod
    def from_dict(data: Mapping[str, object]) -> "Device":
        """Deserialise from :meth:`as_dict` output."""
        try:
            pins_data = data.get("pins", [])
            pins = {
                entry["name"]: Pin(
                    name=entry["name"],
                    offset_x=float(entry["offset_x"]),
                    offset_y=float(entry["offset_y"]),
                    equivalence_group=str(entry.get("equivalence_group", "")),
                )
                for entry in pins_data
            }
            return Device(
                name=str(data["name"]),
                device_type=DeviceType(str(data["type"])),
                width=float(data["width"]),
                height=float(data["height"]),
                pins=pins,
                rotatable=bool(data.get("rotatable", True)),
                parameters={
                    str(key): float(value)
                    for key, value in dict(data.get("parameters", {})).items()
                },
            )
        except (KeyError, ValueError, TypeError) as exc:
            raise NetlistError(f"malformed device record: {exc}") from exc


# --------------------------------------------------------------------------- #
# convenience factories used by the benchmark-circuit generator and tests
# --------------------------------------------------------------------------- #


def make_transistor(
    name: str,
    width: float = 40.0,
    height: float = 30.0,
    gm_ms: float = 40.0,
) -> Device:
    """A common-source RF transistor with gate / drain / source pins."""
    pins = {
        "G": Pin("G", -width / 2.0, 0.0),
        "D": Pin("D", width / 2.0, height / 4.0),
        "S": Pin("S", width / 2.0, -height / 4.0),
    }
    return Device(
        name,
        DeviceType.TRANSISTOR,
        width,
        height,
        pins,
        parameters={"gm_ms": gm_ms},
    )


def make_capacitor(
    name: str,
    width: float = 30.0,
    height: float = 30.0,
    c_ff: float = 60.0,
) -> Device:
    """A MIM capacitor with two interchangeable plates."""
    pins = {
        "P1": Pin("P1", -width / 2.0, 0.0, equivalence_group="plate"),
        "P2": Pin("P2", width / 2.0, 0.0, equivalence_group="plate"),
    }
    return Device(
        name,
        DeviceType.CAPACITOR,
        width,
        height,
        pins,
        parameters={"c_ff": c_ff},
    )


def make_rf_pad(name: str, size: float = 60.0) -> Device:
    """A ground-signal-ground RF pad.

    The signal pin sits at the pad centre: the microstrip runs onto the pad
    metal and terminates there, which keeps the line inside the layout area
    regardless of which boundary edge the pad is attached to.
    """
    pins = {"SIG": Pin("SIG", 0.0, 0.0)}
    return Device(
        name,
        DeviceType.RF_PAD,
        size,
        size,
        pins,
        rotatable=False,
    )


def make_dc_pad(name: str, size: float = 50.0) -> Device:
    """A DC supply / bias pad (signal pin at the pad centre)."""
    pins = {"SIG": Pin("SIG", 0.0, 0.0)}
    return Device(
        name,
        DeviceType.DC_PAD,
        size,
        size,
        pins,
        rotatable=False,
    )


def make_inductor(name: str, size: float = 45.0, l_ph: float = 120.0) -> Device:
    """A small spiral inductor with two interchangeable terminals."""
    pins = {
        "P1": Pin("P1", -size / 2.0, 0.0, equivalence_group="terminal"),
        "P2": Pin("P2", size / 2.0, 0.0, equivalence_group="terminal"),
    }
    return Device(
        name,
        DeviceType.INDUCTOR,
        size,
        size,
        pins,
        parameters={"l_ph": l_ph},
    )


def make_resistor(name: str, width: float = 20.0, height: float = 10.0, r_ohm: float = 1000.0) -> Device:
    """A bias resistor."""
    pins = {
        "P1": Pin("P1", -width / 2.0, 0.0, equivalence_group="terminal"),
        "P2": Pin("P2", width / 2.0, 0.0, equivalence_group="terminal"),
    }
    return Device(
        name,
        DeviceType.RESISTOR,
        width,
        height,
        pins,
        parameters={"r_ohm": r_ohm},
    )
