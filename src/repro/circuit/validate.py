"""Netlist sanity checks run before layout generation.

The constructor of :class:`~repro.circuit.netlist.Netlist` already rejects
structurally broken inputs (dangling references, duplicate names).  The
checks here are *feasibility* warnings: conditions under which the layout
problem is ill-posed or obviously unsolvable, such as devices larger than the
layout area or a total metal demand exceeding the available area.  They are
reported as issues rather than exceptions so that experiments can stress-test
the optimiser on deliberately tight instances (the paper's second, smaller
area setting does exactly that).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List

import networkx as nx

from repro.errors import NetlistError
from repro.circuit.netlist import Netlist


class Severity(enum.Enum):
    """How serious a validation finding is."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"


@dataclass(frozen=True)
class ValidationIssue:
    """A single validation finding."""

    severity: Severity
    code: str
    message: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.severity.value}] {self.code}: {self.message}"


def validate_netlist(netlist: Netlist) -> List[ValidationIssue]:
    """Run all checks and return the list of findings (possibly empty)."""
    issues: List[ValidationIssue] = []
    issues.extend(_check_device_sizes(netlist))
    issues.extend(_check_pads(netlist))
    issues.extend(_check_lengths(netlist))
    issues.extend(_check_area_budget(netlist))
    issues.extend(_check_connectivity(netlist))
    return issues


def assert_valid(netlist: Netlist) -> None:
    """Raise :class:`NetlistError` if any ERROR-severity issue is found."""
    errors = [
        issue for issue in validate_netlist(netlist) if issue.severity is Severity.ERROR
    ]
    if errors:
        summary = "; ".join(str(issue) for issue in errors)
        raise NetlistError(f"netlist {netlist.name!r} failed validation: {summary}")


# ------------------------------------------------------------------------- #
# individual checks
# ------------------------------------------------------------------------- #


def _check_device_sizes(netlist: Netlist) -> List[ValidationIssue]:
    issues = []
    area = netlist.area
    clearance = netlist.technology.clearance
    for device in netlist.devices:
        if (
            device.width + 2 * clearance > area.width
            or device.height + 2 * clearance > area.height
        ) and (
            device.height + 2 * clearance > area.width
            or device.width + 2 * clearance > area.height
        ):
            issues.append(
                ValidationIssue(
                    Severity.ERROR,
                    "device-too-large",
                    f"device {device.name!r} ({device.width}x{device.height} um) "
                    f"cannot fit in the layout area in any orientation",
                )
            )
    return issues


def _check_pads(netlist: Netlist) -> List[ValidationIssue]:
    issues = []
    pads = netlist.pads()
    if not pads:
        issues.append(
            ValidationIssue(
                Severity.WARNING,
                "no-pads",
                "netlist has no pads; boundary constraints will not apply",
            )
        )
    perimeter = 2 * (netlist.area.width + netlist.area.height)
    pad_extent = sum(max(pad.width, pad.height) for pad in pads)
    if pad_extent > perimeter:
        issues.append(
            ValidationIssue(
                Severity.ERROR,
                "pads-exceed-perimeter",
                f"pads need {pad_extent:.0f} um of boundary but only "
                f"{perimeter:.0f} um is available",
            )
        )
    return issues


def _check_lengths(netlist: Netlist) -> List[ValidationIssue]:
    issues = []
    technology = netlist.technology
    for net in netlist.microstrips:
        width = netlist.microstrip_width(net)
        if net.target_length < width:
            issues.append(
                ValidationIssue(
                    Severity.WARNING,
                    "length-below-width",
                    f"microstrip {net.name!r} target length {net.target_length} um is "
                    f"shorter than its width {width} um",
                )
            )
        diagonal = netlist.area.width + netlist.area.height
        # A single net folded into serpentines can exceed the half-perimeter
        # many times over, but a target beyond ~6x the half-perimeter will not
        # fit in practice once spacing is honoured.
        if net.target_length > 6.0 * diagonal:
            issues.append(
                ValidationIssue(
                    Severity.ERROR,
                    "length-unreachable",
                    f"microstrip {net.name!r} target length {net.target_length:.0f} um "
                    f"greatly exceeds what fits in the area (half-perimeter "
                    f"{diagonal:.0f} um)",
                )
            )
        if abs(technology.bend_compensation) > net.target_length:
            issues.append(
                ValidationIssue(
                    Severity.WARNING,
                    "delta-dominates-length",
                    f"microstrip {net.name!r}: |bend compensation| exceeds the target "
                    f"length; bend counting will dominate the length budget",
                )
            )
    return issues


def _check_area_budget(netlist: Netlist) -> List[ValidationIssue]:
    issues = []
    utilisation = netlist.area_utilisation()
    if utilisation > 1.0:
        issues.append(
            ValidationIssue(
                Severity.ERROR,
                "over-capacity",
                f"estimated metal area exceeds the layout area "
                f"(utilisation {utilisation:.2f})",
            )
        )
    elif utilisation > 0.8:
        issues.append(
            ValidationIssue(
                Severity.WARNING,
                "high-utilisation",
                f"estimated utilisation {utilisation:.2f} is high; the solver may "
                f"need more chain points or a longer time limit",
            )
        )
    return issues


def _check_connectivity(netlist: Netlist) -> List[ValidationIssue]:
    issues = []
    graph = netlist.connectivity_graph()
    if netlist.num_devices and not nx.is_connected(nx.Graph(graph)):
        components = list(nx.connected_components(nx.Graph(graph)))
        issues.append(
            ValidationIssue(
                Severity.INFO,
                "disconnected",
                f"netlist has {len(components)} connected components; isolated "
                f"devices (e.g. decoupling structures) are placed but not routed",
            )
        )
    for device in netlist.devices:
        degree = len(netlist.microstrips_at(device.name))
        if degree == 0 and not device.is_pad:
            issues.append(
                ValidationIssue(
                    Severity.INFO,
                    "unconnected-device",
                    f"device {device.name!r} has no microstrip connections",
                )
            )
        if degree > len(device.pins):
            issues.append(
                ValidationIssue(
                    Severity.WARNING,
                    "pin-contention",
                    f"device {device.name!r} has {degree} microstrips but only "
                    f"{len(device.pins)} pins; several lines share a pin",
                )
            )
    return issues
