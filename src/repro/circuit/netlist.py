"""The netlist: devices, microstrips and the layout area they must fit in.

This corresponds to the *input* of the paper's problem formulation
(Section 3): the circuit netlist, the layout area dimensions, device
dimensions, microstrip width / spacing / ``δ`` (via the technology), and the
required exact length of every microstrip.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

import networkx as nx

from repro.errors import NetlistError
from repro.circuit.device import Device, DeviceType
from repro.circuit.microstrip_net import MicrostripNet, Terminal
from repro.geometry.rect import Rect
from repro.tech.technology import Technology, default_technology


@dataclass(frozen=True)
class LayoutArea:
    """The rectangular area the layout must fit into, in micrometres."""

    width: float
    height: float

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise NetlistError(
                f"layout area must have positive dimensions, got {self.width} x {self.height}"
            )

    @property
    def rect(self) -> Rect:
        """The area as a rectangle anchored at the origin."""
        return Rect(0.0, 0.0, self.width, self.height)

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def aspect_ratio(self) -> float:
        return self.width / self.height

    def scaled(self, factor: float) -> "LayoutArea":
        """Return an area scaled uniformly by ``factor`` (same aspect ratio)."""
        if factor <= 0:
            raise NetlistError(f"scale factor must be positive, got {factor}")
        return LayoutArea(self.width * factor, self.height * factor)

    def as_tuple(self) -> Tuple[float, float]:
        return (self.width, self.height)


class Netlist:
    """A complete RFIC circuit description ready for layout generation.

    Parameters
    ----------
    name:
        Circuit name (e.g. ``"lna94"``).
    devices:
        The circuit's devices and pads.
    microstrips:
        The microstrip nets connecting them.
    area:
        Target layout area.
    technology:
        Design rules; defaults to the 90 nm CMOS technology.
    operating_frequency_ghz:
        Centre frequency of the circuit, used by the RF experiments.
    """

    def __init__(
        self,
        name: str,
        devices: Iterable[Device],
        microstrips: Iterable[MicrostripNet],
        area: LayoutArea,
        technology: Technology | None = None,
        operating_frequency_ghz: float = 60.0,
    ) -> None:
        if not name:
            raise NetlistError("netlist name must be non-empty")
        if operating_frequency_ghz <= 0:
            raise NetlistError("operating frequency must be positive")

        self.name = name
        self.area = area
        self.technology = technology or default_technology()
        self.operating_frequency_ghz = float(operating_frequency_ghz)

        self._devices: Dict[str, Device] = {}
        for device in devices:
            if device.name in self._devices:
                raise NetlistError(f"duplicate device name {device.name!r}")
            self._devices[device.name] = device

        self._microstrips: Dict[str, MicrostripNet] = {}
        for net in microstrips:
            if net.name in self._microstrips:
                raise NetlistError(f"duplicate microstrip name {net.name!r}")
            self._microstrips[net.name] = net

        self._check_references()

    # ------------------------------------------------------------------ #
    # consistency
    # ------------------------------------------------------------------ #

    def _check_references(self) -> None:
        for net in self._microstrips.values():
            for terminal in net.terminals:
                device = self._devices.get(terminal.device)
                if device is None:
                    raise NetlistError(
                        f"microstrip {net.name!r} references unknown device "
                        f"{terminal.device!r}"
                    )
                if terminal.pin not in device.pins:
                    raise NetlistError(
                        f"microstrip {net.name!r} references unknown pin "
                        f"{terminal.pin!r} on device {terminal.device!r}"
                    )

    # ------------------------------------------------------------------ #
    # accessors
    # ------------------------------------------------------------------ #

    @property
    def devices(self) -> List[Device]:
        """All devices in deterministic (insertion) order."""
        return list(self._devices.values())

    @property
    def microstrips(self) -> List[MicrostripNet]:
        """All microstrip nets in deterministic (insertion) order."""
        return list(self._microstrips.values())

    @property
    def device_names(self) -> List[str]:
        return list(self._devices)

    @property
    def microstrip_names(self) -> List[str]:
        return list(self._microstrips)

    @property
    def num_devices(self) -> int:
        return len(self._devices)

    @property
    def num_microstrips(self) -> int:
        return len(self._microstrips)

    def device(self, name: str) -> Device:
        try:
            return self._devices[name]
        except KeyError as exc:
            raise NetlistError(f"no device named {name!r} in netlist {self.name!r}") from exc

    def microstrip(self, name: str) -> MicrostripNet:
        try:
            return self._microstrips[name]
        except KeyError as exc:
            raise NetlistError(
                f"no microstrip named {name!r} in netlist {self.name!r}"
            ) from exc

    def has_device(self, name: str) -> bool:
        return name in self._devices

    def pads(self) -> List[Device]:
        """Devices that must sit on the layout boundary."""
        return [device for device in self._devices.values() if device.is_pad]

    def non_pads(self) -> List[Device]:
        """Devices free to move inside the layout area."""
        return [device for device in self._devices.values() if not device.is_pad]

    def microstrips_at(self, device_name: str) -> List[MicrostripNet]:
        """All microstrips with a terminal on the named device."""
        self.device(device_name)
        return [net for net in self._microstrips.values() if net.connects(device_name)]

    def microstrip_width(self, net: MicrostripNet | str) -> float:
        """Effective width of a microstrip (net override or technology default)."""
        if isinstance(net, str):
            net = self.microstrip(net)
        return net.width if net.width is not None else self.technology.microstrip_width

    # ------------------------------------------------------------------ #
    # derived quantities
    # ------------------------------------------------------------------ #

    def total_target_length(self) -> float:
        """Sum of all required microstrip lengths (µm)."""
        return sum(net.target_length for net in self._microstrips.values())

    def total_device_area(self) -> float:
        """Sum of device outline areas (µm²)."""
        return sum(device.area for device in self._devices.values())

    def estimated_metal_area(self) -> float:
        """Rough area demand: devices + microstrip metal (µm²)."""
        strip_area = sum(
            net.target_length * self.microstrip_width(net)
            for net in self._microstrips.values()
        )
        return self.total_device_area() + strip_area

    def area_utilisation(self) -> float:
        """Estimated metal area divided by the layout area."""
        return self.estimated_metal_area() / self.area.area

    def connectivity_graph(self) -> nx.MultiGraph:
        """Device-level connectivity as a networkx multigraph.

        Nodes are device names; each microstrip contributes one edge keyed by
        its name.  Used by the baseline floorplanner (wirelength estimation)
        and by netlist validation (detached components).
        """
        graph = nx.MultiGraph()
        graph.add_nodes_from(self._devices)
        for net in self._microstrips.values():
            graph.add_edge(
                net.start.device,
                net.end.device,
                key=net.name,
                target_length=net.target_length,
            )
        return graph

    def with_area(self, area: LayoutArea) -> "Netlist":
        """Return a copy of the netlist targeting a different layout area.

        Table 1 evaluates every circuit under two area settings; this helper
        produces the second setting without rebuilding the whole netlist.
        """
        return Netlist(
            name=self.name,
            devices=self.devices,
            microstrips=self.microstrips,
            area=area,
            technology=self.technology,
            operating_frequency_ghz=self.operating_frequency_ghz,
        )

    def summary(self) -> Dict[str, object]:
        """Key statistics for reports (matches the columns of Table 1)."""
        return {
            "name": self.name,
            "num_microstrips": self.num_microstrips,
            "num_devices": self.num_devices,
            "area_um": f"{self.area.width:.0f}x{self.area.height:.0f}",
            "operating_frequency_ghz": self.operating_frequency_ghz,
            "total_target_length_um": round(self.total_target_length(), 3),
            "area_utilisation": round(self.area_utilisation(), 4),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Netlist({self.name!r}, {self.num_devices} devices, "
            f"{self.num_microstrips} microstrips, "
            f"area {self.area.width:.0f}x{self.area.height:.0f} um)"
        )
