"""Circuit netlist model: devices, pads, microstrip nets and their I/O."""

from repro.circuit.device import (
    Device,
    DeviceType,
    Pin,
    Rotation,
    make_capacitor,
    make_dc_pad,
    make_inductor,
    make_resistor,
    make_rf_pad,
    make_transistor,
)
from repro.circuit.microstrip_net import MicrostripNet, Terminal
from repro.circuit.netlist import LayoutArea, Netlist
from repro.circuit.loader import (
    dumps_netlist,
    load_netlist,
    loads_netlist,
    netlist_from_dict,
    netlist_to_dict,
    save_netlist,
)
from repro.circuit.validate import (
    Severity,
    ValidationIssue,
    assert_valid,
    validate_netlist,
)

__all__ = [
    "Device",
    "DeviceType",
    "Pin",
    "Rotation",
    "make_transistor",
    "make_capacitor",
    "make_inductor",
    "make_resistor",
    "make_rf_pad",
    "make_dc_pad",
    "MicrostripNet",
    "Terminal",
    "Netlist",
    "LayoutArea",
    "netlist_to_dict",
    "netlist_from_dict",
    "save_netlist",
    "load_netlist",
    "dumps_netlist",
    "loads_netlist",
    "validate_netlist",
    "assert_valid",
    "ValidationIssue",
    "Severity",
]
