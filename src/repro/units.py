"""Unit conventions and small conversion helpers.

The geometric parts of the library work in **micrometres** (µm), matching the
dimensions quoted in the paper (layout areas such as 890 µm x 615 µm, ground
plane distance t ~ 5 µm).  The RF parts work in SI units: Hertz for
frequencies, Ohms for impedances, metres for physical lengths used in
electrical calculations.  This module centralises the conversions so the two
worlds meet in exactly one place.
"""

from __future__ import annotations

import math

#: Number of metres in one micrometre.
METERS_PER_MICRON = 1.0e-6

#: Number of micrometres in one millimetre.
MICRONS_PER_MM = 1000.0

#: Hertz per Gigahertz.
HZ_PER_GHZ = 1.0e9

#: Free-space speed of light in metres per second.
SPEED_OF_LIGHT = 299_792_458.0

#: Free-space permittivity in Farads per metre.
EPSILON_0 = 8.854_187_8128e-12

#: Free-space permeability in Henry per metre.
MU_0 = 4.0e-7 * math.pi

#: Free-space wave impedance in Ohms.
ETA_0 = math.sqrt(MU_0 / EPSILON_0)


def microns_to_meters(value_um: float) -> float:
    """Convert a length in micrometres to metres."""
    return value_um * METERS_PER_MICRON


def meters_to_microns(value_m: float) -> float:
    """Convert a length in metres to micrometres."""
    return value_m / METERS_PER_MICRON


def mm_to_microns(value_mm: float) -> float:
    """Convert a length in millimetres to micrometres."""
    return value_mm * MICRONS_PER_MM


def ghz_to_hz(value_ghz: float) -> float:
    """Convert a frequency in Gigahertz to Hertz."""
    return value_ghz * HZ_PER_GHZ


def hz_to_ghz(value_hz: float) -> float:
    """Convert a frequency in Hertz to Gigahertz."""
    return value_hz / HZ_PER_GHZ


def db(value: float) -> float:
    """Return ``20 log10(|value|)`` — magnitude of a ratio in decibels.

    Used for S-parameter magnitudes.  A zero magnitude maps to ``-inf``.
    """
    magnitude = abs(value)
    if magnitude == 0.0:
        return float("-inf")
    return 20.0 * math.log10(magnitude)


def db_power(value: float) -> float:
    """Return ``10 log10(value)`` — a power ratio in decibels."""
    if value <= 0.0:
        return float("-inf")
    return 10.0 * math.log10(value)


def from_db(value_db: float) -> float:
    """Inverse of :func:`db`: convert decibels back to a magnitude ratio."""
    return 10.0 ** (value_db / 20.0)


def wavelength(frequency_hz: float, eps_eff: float = 1.0) -> float:
    """Return the guided wavelength in metres.

    Parameters
    ----------
    frequency_hz:
        Operating frequency in Hertz.  Must be positive.
    eps_eff:
        Effective relative permittivity of the guiding medium.
    """
    if frequency_hz <= 0.0:
        raise ValueError(f"frequency must be positive, got {frequency_hz!r}")
    if eps_eff <= 0.0:
        raise ValueError(f"eps_eff must be positive, got {eps_eff!r}")
    return SPEED_OF_LIGHT / (frequency_hz * math.sqrt(eps_eff))
