"""Greedy length-matching router (baseline routing).

The routing half of the *manual-like* baseline: given fixed device
placements, every microstrip is routed independently with an L-shaped
connection, and whatever length is missing relative to the required value is
absorbed in serpentine / U-shaped detours — the standard length-matching
practice on PCBs and in hand-drawn RFIC layouts.  Each detour costs bends,
which is exactly the behaviour the paper's concurrent formulation avoids;
the bend statistics of this router therefore play the role of the "Manual"
column of Table 1.

The router iterates the detour depth so that the *equivalent* length
(geometric + bends x δ) matches the target, because that is the quantity the
design actually cares about.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import RoutingError
from repro.circuit.microstrip_net import MicrostripNet
from repro.circuit.netlist import Netlist
from repro.geometry.path import ManhattanPath, serpentine_path
from repro.geometry.point import GEOM_TOL, Point
from repro.layout.layout import Layout
from repro.layout.routing import RoutedMicrostrip


@dataclass
class GreedyRouterConfig:
    """Tuning knobs of the baseline router."""

    #: Maximum number of detour lobes per net (each lobe costs 4 bends).  A
    #: careful manual designer folds the missing length into one deep detour
    #: rather than many shallow ones, so the default is a single lobe.
    max_lobes: int = 1
    #: Number of equivalent-length correction iterations per net.
    length_iterations: int = 4
    #: Acceptable equivalent-length error in micrometres.
    length_tolerance: float = 2.0


class GreedyRouter:
    """Route every net independently with serpentine length matching."""

    def __init__(self, config: Optional[GreedyRouterConfig] = None) -> None:
        self.config = config or GreedyRouterConfig()

    # ------------------------------------------------------------------ #

    def route(self, layout: Layout) -> Tuple[Dict[str, RoutedMicrostrip], float]:
        """Route all nets of a placed layout; returns routes and runtime."""
        start_time = time.perf_counter()
        netlist = layout.netlist
        routes: Dict[str, RoutedMicrostrip] = {}
        # Long nets first: they need the most room for their detours.
        ordered = sorted(
            netlist.microstrips, key=lambda net: net.target_length, reverse=True
        )
        for net in ordered:
            routes[net.name] = self._route_net(layout, net)
        runtime = time.perf_counter() - start_time
        return routes, runtime

    def route_layout(self, layout: Layout) -> Layout:
        """Return a copy of ``layout`` with all microstrips routed."""
        routes, runtime = self.route(layout)
        routed = layout.copy()
        for route in routes.values():
            routed.set_route(route)
        routed.metadata["router"] = "greedy-serpentine"
        routed.metadata["routing_runtime_s"] = runtime
        return routed

    # ------------------------------------------------------------------ #

    def _route_net(self, layout: Layout, net: MicrostripNet) -> RoutedMicrostrip:
        netlist = layout.netlist
        delta = netlist.technology.bend_compensation
        width = netlist.microstrip_width(net)
        start, end = layout.terminal_positions(net)

        direct = start.manhattan_distance(end)
        if net.target_length < direct - GEOM_TOL:
            # The placement put the pins too far apart for the required
            # length; route the direct connection and accept the error (a
            # real manual flow would resize the circuit at this point).
            path = self._direct_path(start, end, width)
            return RoutedMicrostrip(net.name, path)

        geometric_target = net.target_length
        path = self._direct_path(start, end, width)
        for _ in range(self.config.length_iterations):
            path = self._path_with_length(start, end, geometric_target, width)
            equivalent = path.equivalent_length(delta)
            error = net.target_length - equivalent
            if abs(error) <= self.config.length_tolerance:
                break
            geometric_target = max(direct, geometric_target + error)
        return RoutedMicrostrip(net.name, path)

    def _direct_path(self, start: Point, end: Point, width: float) -> ManhattanPath:
        """Plain L-shaped connection (or straight when aligned)."""
        if abs(start.x - end.x) <= GEOM_TOL or abs(start.y - end.y) <= GEOM_TOL:
            return ManhattanPath([start, end], width)
        return ManhattanPath([start, Point(end.x, start.y), end], width)

    def _path_with_length(
        self, start: Point, end: Point, geometric_target: float, width: float
    ) -> ManhattanPath:
        direct = start.manhattan_distance(end)
        extra = geometric_target - direct
        if extra <= GEOM_TOL:
            return self._direct_path(start, end, width)
        # Choose an amplitude so at most ``max_lobes`` lobes are used; a
        # deeper lobe (rather than more lobes) is what a human designer draws.
        amplitude = max(extra / (2.0 * self.config.max_lobes), 15.0)
        try:
            return serpentine_path(
                start,
                end,
                geometric_target,
                width=width,
                amplitude=amplitude,
                max_lobes=self.config.max_lobes,
            )
        except Exception as exc:  # pragma: no cover - defensive
            raise RoutingError(
                f"failed to build a serpentine of length {geometric_target:.1f} um "
                f"between {start.as_tuple()} and {end.as_tuple()}: {exc}"
            ) from exc
