"""Baseline flows: the sequential place-then-route "manual-like" methodology."""

from repro.baselines.annealing import AnnealingConfig, AnnealingPlacer
from repro.baselines.greedy_router import GreedyRouter, GreedyRouterConfig
from repro.baselines.manual_like import ManualLikeFlow, generate_manual_like_layout

__all__ = [
    "AnnealingPlacer",
    "AnnealingConfig",
    "GreedyRouter",
    "GreedyRouterConfig",
    "ManualLikeFlow",
    "generate_manual_like_layout",
]
