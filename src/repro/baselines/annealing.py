"""Simulated-annealing device floorplanner (baseline placement).

This is the placement half of the *manual-like* baseline flow: devices are
placed first (ignoring the routing detail), then the router of
:mod:`repro.baselines.greedy_router` connects them.  The optimiser is a
plain simulated annealer over device centres:

* cost = estimated half-perimeter wirelength of all microstrips
  (weighted by how far each net's target length is from the pin distance)
  + a heavy penalty for outline overlaps and boundary violations,
* moves = translate a device, swap two devices, rotate a device,
* pads are restricted to the layout boundary throughout.

It is intentionally conventional — the point of the baseline is to represent
the separate place-then-route practice the paper argues against.
"""

from __future__ import annotations

import math
import random
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import PlacementError
from repro.circuit.device import Device, Rotation
from repro.circuit.netlist import Netlist
from repro.core.seed import seed_placement, spread_boundary_pads
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.layout.layout import Layout
from repro.layout.placement import Placement


@dataclass
class AnnealingConfig:
    """Tuning knobs of the simulated-annealing placer."""

    iterations: int = 6000
    initial_temperature: float = 300.0
    final_temperature: float = 0.5
    move_fraction: float = 0.25
    overlap_weight: float = 40.0
    boundary_weight: float = 60.0
    length_mismatch_weight: float = 0.4
    seed: int = 2016


class AnnealingPlacer:
    """Simulated-annealing floorplanner for RFIC devices."""

    def __init__(self, config: Optional[AnnealingConfig] = None) -> None:
        self.config = config or AnnealingConfig()

    # ------------------------------------------------------------------ #

    def place(self, netlist: Netlist) -> Tuple[Dict[str, Placement], float]:
        """Place all devices; returns the placements and the runtime."""
        start_time = time.perf_counter()
        config = self.config
        rng = random.Random(config.seed)

        placements = self._initial_placements(netlist)
        cost = self._cost(netlist, placements)
        best = dict(placements)
        best_cost = cost

        iterations = max(1, config.iterations)
        for iteration in range(iterations):
            temperature = self._temperature(iteration, iterations)
            candidate = self._propose(netlist, placements, rng, temperature)
            if candidate is None:
                continue
            candidate_cost = self._cost(netlist, candidate)
            accept = candidate_cost <= cost or rng.random() < math.exp(
                -(candidate_cost - cost) / max(temperature, 1e-9)
            )
            if accept:
                placements = candidate
                cost = candidate_cost
                if cost < best_cost:
                    best = dict(placements)
                    best_cost = cost

        runtime = time.perf_counter() - start_time
        return best, runtime

    def place_layout(self, netlist: Netlist) -> Layout:
        """Convenience wrapper returning a :class:`Layout` with placements only."""
        placements, runtime = self.place(netlist)
        layout = Layout(netlist, placements.values(), metadata={"placer": "annealing", "runtime_s": runtime})
        return layout

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #

    def _temperature(self, iteration: int, iterations: int) -> float:
        config = self.config
        progress = iteration / max(1, iterations - 1)
        ratio = config.final_temperature / config.initial_temperature
        return config.initial_temperature * (ratio**progress)

    def _initial_placements(self, netlist: Netlist) -> Dict[str, Placement]:
        seeds = spread_boundary_pads(seed_placement(netlist, self.config.seed), netlist)
        placements: Dict[str, Placement] = {}
        for device in netlist.devices:
            center = seeds.get(
                device.name,
                Point(netlist.area.width / 2.0, netlist.area.height / 2.0),
            )
            placements[device.name] = Placement(
                device.name, self._clamp_center(netlist, device, center), Rotation.R0
            )
        return placements

    def _clamp_center(self, netlist: Netlist, device: Device, center: Point) -> Point:
        area = netlist.area
        half_w = device.width / 2.0
        half_h = device.height / 2.0
        x = min(max(center.x, half_w), area.width - half_w)
        y = min(max(center.y, half_h), area.height - half_h)
        if device.is_pad:
            # Snap the pad onto the nearest boundary edge.
            distances = {
                "left": x - half_w,
                "right": area.width - half_w - x,
                "bottom": y - half_h,
                "top": area.height - half_h - y,
            }
            edge = min(distances, key=distances.get)
            if edge == "left":
                x = half_w
            elif edge == "right":
                x = area.width - half_w
            elif edge == "bottom":
                y = half_h
            else:
                y = area.height - half_h
        return Point(x, y)

    def _propose(
        self,
        netlist: Netlist,
        placements: Dict[str, Placement],
        rng: random.Random,
        temperature: float,
    ) -> Optional[Dict[str, Placement]]:
        candidate = dict(placements)
        devices = netlist.devices
        if not devices:
            return None
        move = rng.random()
        if move < 0.65:
            device = rng.choice(devices)
            placement = candidate[device.name]
            # Move amplitude shrinks as the annealer cools.
            reach = max(
                10.0,
                self.config.move_fraction
                * min(netlist.area.width, netlist.area.height)
                * (temperature / self.config.initial_temperature),
            )
            shifted = Point(
                placement.center.x + rng.uniform(-reach, reach),
                placement.center.y + rng.uniform(-reach, reach),
            )
            candidate[device.name] = placement.moved_to(
                self._clamp_center(netlist, device, shifted)
            )
        elif move < 0.85 and len(devices) >= 2:
            first, second = rng.sample(devices, 2)
            if first.is_pad != second.is_pad:
                return None
            first_placement = candidate[first.name]
            second_placement = candidate[second.name]
            candidate[first.name] = Placement(
                first.name,
                self._clamp_center(netlist, first, second_placement.center),
                first_placement.rotation,
            )
            candidate[second.name] = Placement(
                second.name,
                self._clamp_center(netlist, second, first_placement.center),
                second_placement.rotation,
            )
        else:
            rotatable = [device for device in devices if device.rotatable and not device.is_pad]
            if not rotatable:
                return None
            device = rng.choice(rotatable)
            placement = candidate[device.name]
            new_rotation = Rotation((int(placement.rotation) + rng.choice((1, 2, 3))) % 4)
            candidate[device.name] = placement.rotated(new_rotation)
        return candidate

    def _cost(self, netlist: Netlist, placements: Dict[str, Placement]) -> float:
        config = self.config
        area = netlist.area
        clearance = netlist.technology.clearance

        wirelength = 0.0
        mismatch = 0.0
        for net in netlist.microstrips:
            start_device = netlist.device(net.start.device)
            end_device = netlist.device(net.end.device)
            start = placements[net.start.device].pin_position(start_device, net.start.pin)
            end = placements[net.end.device].pin_position(end_device, net.end.pin)
            distance = start.manhattan_distance(end)
            wirelength += distance
            # A pin distance longer than the required length is unroutable at
            # that length; shorter only costs detours.
            if distance > net.target_length:
                mismatch += (distance - net.target_length) * 12.0
            else:
                mismatch += (net.target_length - distance) * 0.1

        overlap = 0.0
        outlines: List[Tuple[str, Rect]] = []
        for device in netlist.devices:
            outlines.append(
                (device.name, placements[device.name].outline(device).expanded(clearance))
            )
        for index, (name_a, rect_a) in enumerate(outlines):
            for name_b, rect_b in outlines[index + 1 :]:
                intersection = rect_a.intersection(rect_b)
                if intersection is not None:
                    overlap += min(intersection.width, intersection.height)

        boundary = 0.0
        area_rect = area.rect
        for device in netlist.devices:
            outline = placements[device.name].outline(device)
            if not area_rect.contains_rect(outline):
                boundary += 1.0

        return (
            wirelength
            + config.length_mismatch_weight * mismatch
            + config.overlap_weight * overlap
            + config.boundary_weight * boundary
        )
