"""The combined manual-like baseline flow: place first, then route.

This flow stands in for the paper's hand-crafted layouts in Table 1 and
Figure 11.  It follows the conventional methodology the paper contrasts
itself against: a floorplan is produced first (simulated annealing over the
device outlines), and the microstrips are then routed one by one, matching
their required lengths with serpentine detours.  Because placement never
sees the routing requirements, length matching costs many more bends than
the concurrent P-ILP formulation — which is precisely the qualitative gap
Table 1 reports.
"""

from __future__ import annotations

import time
from typing import Optional

from repro.circuit.netlist import Netlist
from repro.core.result import FlowResult
from repro.baselines.annealing import AnnealingConfig, AnnealingPlacer
from repro.baselines.greedy_router import GreedyRouter, GreedyRouterConfig
from repro.layout.drc import run_drc
from repro.layout.metrics import compute_metrics


class ManualLikeFlow:
    """Sequential place-then-route baseline ("Manual" column of Table 1)."""

    flow_name = "manual-like"

    def __init__(
        self,
        placer_config: Optional[AnnealingConfig] = None,
        router_config: Optional[GreedyRouterConfig] = None,
    ) -> None:
        self.placer = AnnealingPlacer(placer_config)
        self.router = GreedyRouter(router_config)

    def generate(self, netlist: Netlist) -> FlowResult:
        """Run the baseline flow and return its result."""
        start = time.perf_counter()
        placed = self.placer.place_layout(netlist)
        routed = self.router.route_layout(placed)
        runtime = time.perf_counter() - start
        routed.metadata.update(
            {
                "flow": self.flow_name,
                "circuit": netlist.name,
                "runtime_s": runtime,
            }
        )
        return FlowResult(
            flow=self.flow_name,
            circuit=netlist.name,
            layout=routed,
            metrics=compute_metrics(routed),
            drc=run_drc(routed),
            runtime=runtime,
            phases=[],
        )


def generate_manual_like_layout(
    netlist: Netlist,
    placer_config: Optional[AnnealingConfig] = None,
    router_config: Optional[GreedyRouterConfig] = None,
) -> FlowResult:
    """Convenience function wrapping :class:`ManualLikeFlow`."""
    return ManualLikeFlow(placer_config, router_config).generate(netlist)
