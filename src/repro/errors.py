"""Exception hierarchy shared across the repro package.

Every subsystem raises exceptions derived from :class:`ReproError` so that
callers can catch library failures without also swallowing programming errors
such as :class:`TypeError`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ModelError(ReproError):
    """Raised when an optimisation model is built or used incorrectly.

    Examples include adding a variable twice, referencing a variable that
    belongs to a different model, or requesting the value of a variable
    before the model has been solved.
    """


class SolverError(ReproError):
    """Raised when a solver backend fails unexpectedly.

    This covers internal backend failures (for instance SciPy reporting a
    numerical breakdown), not ordinary infeasible or unbounded outcomes,
    which are reported through the solution status instead.
    """


class InfeasibleModelError(SolverError):
    """Raised when a caller requires a feasible solution but none exists."""


class GeometryError(ReproError):
    """Raised for invalid geometric objects or operations.

    Examples include rectangles with negative dimensions or paths with
    fewer than two points.
    """


class NetlistError(ReproError):
    """Raised when a circuit netlist is malformed or inconsistent.

    Examples include microstrips referencing unknown devices or pins,
    duplicate device names, or non-positive target lengths.
    """


class TechnologyError(ReproError):
    """Raised when technology / design-rule parameters are invalid."""


class LayoutError(ReproError):
    """Raised when a layout object is inconsistent.

    Examples include routed microstrips whose nets are not part of the
    netlist, or placements referring to unknown devices.
    """


class DRCError(LayoutError):
    """Raised when a caller requires a DRC-clean layout but violations exist."""


class RoutingError(ReproError):
    """Raised when a router cannot produce a legal routing."""


class PlacementError(ReproError):
    """Raised when a placer cannot produce a legal placement."""


class RFError(ReproError):
    """Raised for invalid RF network operations.

    Examples include cascading networks with mismatched reference
    impedances or requesting S-parameters at non-positive frequencies.
    """


class ExperimentError(ReproError):
    """Raised when an experiment harness is misconfigured."""


class ConfigurationError(ReproError):
    """Raised when user-supplied configuration values are invalid."""
