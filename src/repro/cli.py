"""Command-line interface: ``rfic-layout`` (or ``python -m repro.cli``).

Sub-commands
------------
``generate``
    Run the P-ILP flow (or the exact / manual-like flow) on a netlist JSON
    file and write the resulting layout (JSON + SVG).
``table1``
    Regenerate (part of) the paper's Table 1 and print it.
``figure11``
    Regenerate (part of) the paper's Figure 11 and print the gain summary.
``circuits``
    List the reconstructed benchmark circuits and their statistics.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro import __version__
from repro.circuit.loader import load_netlist
from repro.circuits import circuit_names, get_circuit
from repro.core.config import PhaseSettings, PILPConfig
from repro.core.exact import ExactLayoutGenerator
from repro.core.pilp import PILPLayoutGenerator
from repro.baselines.manual_like import ManualLikeFlow
from repro.experiments.figure11 import FIGURE11_CIRCUITS, run_figure11
from repro.experiments.report import format_text_table, save_json
from repro.experiments.table1 import run_table1
from repro.layout.export_json import save_layout
from repro.layout.export_svg import save_svg


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed for the CLI tests)."""
    parser = argparse.ArgumentParser(
        prog="rfic-layout",
        description="RFIC layout generation with concurrent placement and "
        "fixed-length microstrip routing (DAC 2016 reproduction)",
    )
    parser.add_argument("--version", action="version", version=f"%(prog)s {__version__}")
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser("generate", help="run a layout flow on a netlist JSON")
    generate.add_argument("netlist", help="path to a netlist JSON file, or a benchmark circuit name")
    generate.add_argument(
        "--flow", choices=("pilp", "exact", "manual"), default="pilp",
        help="which flow to run (default: pilp)",
    )
    generate.add_argument("--output", "-o", default="layout.json", help="output layout JSON path")
    generate.add_argument("--svg", default=None, help="optional SVG output path")
    generate.add_argument("--time-limit", type=float, default=None, help="per-phase solver time limit (s)")
    generate.add_argument("--fast", action="store_true", help="use the fast (unit-test sized) configuration")

    table1 = subparsers.add_parser("table1", help="regenerate the paper's Table 1")
    table1.add_argument("--circuit", choices=circuit_names(), default=None, help="restrict to one circuit")
    table1.add_argument("--variant", choices=("full", "reduced"), default=None)
    table1.add_argument("--no-manual", action="store_true", help="skip the manual-like baseline")
    table1.add_argument("--fast", action="store_true", help="use the fast configuration")
    table1.add_argument("--json", default=None, help="write the rows to this JSON file")

    figure11 = subparsers.add_parser("figure11", help="regenerate the paper's Figure 11")
    figure11.add_argument("--circuit", choices=list(FIGURE11_CIRCUITS), default=None)
    figure11.add_argument("--variant", choices=("full", "reduced"), default=None)
    figure11.add_argument("--fast", action="store_true", help="use the fast configuration")
    figure11.add_argument("--json", default=None, help="write the series to this JSON file")

    circuits = subparsers.add_parser("circuits", help="list the benchmark circuits")
    circuits.add_argument("--variant", choices=("full", "reduced"), default=None)

    return parser


def _config_from_args(args: argparse.Namespace) -> PILPConfig:
    config = PILPConfig.fast() if getattr(args, "fast", False) else PILPConfig()
    time_limit = getattr(args, "time_limit", None)
    if time_limit is not None:
        config = config.with_updates(
            phase1=PhaseSettings(time_limit=time_limit),
            phase2=PhaseSettings(time_limit=time_limit),
            phase3=PhaseSettings(time_limit=time_limit),
            exact=PhaseSettings(time_limit=time_limit),
        )
    return config


def _load_netlist_argument(argument: str):
    path = Path(argument)
    if path.exists():
        return load_netlist(path)
    if argument in circuit_names():
        return get_circuit(argument).netlist
    raise SystemExit(
        f"error: {argument!r} is neither an existing netlist file nor one of the "
        f"benchmark circuits {circuit_names()}"
    )


def _command_generate(args: argparse.Namespace) -> int:
    netlist = _load_netlist_argument(args.netlist)
    config = _config_from_args(args)
    if args.flow == "pilp":
        result = PILPLayoutGenerator(config).generate(netlist)
    elif args.flow == "exact":
        result = ExactLayoutGenerator(config).generate(netlist)
    else:
        result = ManualLikeFlow().generate(netlist)

    output = save_layout(result.layout, args.output)
    print(format_text_table([result.summary()], title=f"{args.flow} flow result"))
    print(f"layout written to {output}")
    if args.svg:
        svg_path = save_svg(result.layout, args.svg)
        print(f"SVG written to {svg_path}")
    return 0


def _command_table1(args: argparse.Namespace) -> int:
    config = _config_from_args(args)
    circuits = [args.circuit] if args.circuit else None
    result = run_table1(
        circuits=circuits,
        variant=args.variant,
        config=config,
        include_manual=not args.no_manual,
    )
    print(result.to_text())
    print()
    print(f"paper's qualitative shape holds: {result.shape_holds()}")
    if args.json:
        save_json(result.as_dicts(), args.json)
        print(f"rows written to {args.json}")
    return 0


def _command_figure11(args: argparse.Namespace) -> int:
    config = _config_from_args(args)
    circuits = [args.circuit] if args.circuit else None
    results = run_figure11(circuits=circuits, variant=args.variant, config=config)
    for result in results:
        print(result.to_text())
        print(f"shape holds (p-ilp gain >= manual gain): {result.shape_holds()}")
        print()
    if args.json:
        save_json([result.series_dict() for result in results], args.json)
        print(f"series written to {args.json}")
    return 0


def _command_circuits(args: argparse.Namespace) -> int:
    rows = []
    for name in circuit_names():
        circuit = get_circuit(name, args.variant)
        rows.append(circuit.summary())
    print(format_text_table(rows, title="Reconstructed benchmark circuits"))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point of the ``rfic-layout`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "generate": _command_generate,
        "table1": _command_table1,
        "figure11": _command_figure11,
        "circuits": _command_circuits,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
