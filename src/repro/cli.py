"""Command-line interface: ``rfic-layout`` (or ``python -m repro.cli``).

Sub-commands
------------
``generate``
    Run the P-ILP flow (or the exact / manual-like flow) on a netlist JSON
    file and write the resulting layout (JSON + SVG).
``batch``
    Run many layout jobs through the :mod:`repro.runner` subsystem:
    parallel workers, a content-addressed result cache, optional portfolio
    racing of solver configurations, and parameter-grid sweeps.
``table1``
    Regenerate (part of) the paper's Table 1 and print it.
``figure11``
    Regenerate (part of) the paper's Figure 11 and print the gain summary.
``circuits``
    List the reconstructed benchmark circuits and their statistics.
``serve``
    Run the persistent layout-generation service: durable job queue,
    HTTP API, Server-Sent-Events progress streaming.
``submit``
    Submit a job to a running service (optionally wait / stream events).
``status``
    Query a running service: one job's record, or the ``/stats`` summary.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro import __version__
from repro.circuit.loader import load_netlist
from repro.circuits import circuit_names, get_circuit
from repro.core.config import PhaseSettings, PILPConfig
from repro.core.exact import ExactLayoutGenerator
from repro.core.pilp import PILPLayoutGenerator
from repro.baselines.manual_like import ManualLikeFlow
from repro.experiments.figure11 import FIGURE11_CIRCUITS, run_figure11
from repro.experiments.report import format_text_table, save_json
from repro.experiments.table1 import run_table1
from repro.layout.export_json import save_layout
from repro.layout.export_svg import save_svg


_EPILOG = """\
service sub-commands:
  serve    run the persistent layout-generation service.  Jobs submitted over
           HTTP are journaled to <data-dir>/journal.jsonl (they survive daemon
           restarts), deduplicated against in-flight work and the
           content-addressed result cache, and dispatched with priority
           classes (interactive > batch > background) and per-client fairness.
           Endpoints: POST /jobs, GET /jobs[/{hash}[/layout.json|layout.svg|
           events]], GET /stats.  /events is a Server-Sent-Events stream of
           the job lifecycle (queued -> running -> done).
  submit   submit one netlist/benchmark-circuit job to a running service;
           --wait polls to completion, --watch streams its SSE events.
           Both exit non-zero when the job settles failed/timeout/cancelled,
           and --watch survives a dropped stream by reconnecting and
           resuming from the last seen event (?after=<seq>).
  status   show one job's record, or the service-wide /stats summary
           (queue depth, per-state counts, cache hit/miss statistics,
           admission/supervision counters, health flags).

durability sub-commands:
  cache scrub    walk a result-cache directory re-verifying every entry's
                 artifact digests and every solve checkpoint; corrupt
                 entries are quarantined (never deleted), torn checkpoints
                 removed, stale staging swept.  Exits non-zero when this
                 run found corruption; the re-run after repair exits zero.
  cache verify   the same sweep, read-only (nothing quarantined/removed);
                 also served by the daemon as GET /cache/integrity.

robustness (PR 6):
  backpressure   serve --max-queue N bounds the number of queued jobs;
                 --class-limit CLASS=N bounds one priority class;
                 past --shed-ratio of capacity, background-class work is
                 shed early.  A refused submission gets HTTP 429 with a
                 Retry-After header; clients (ServiceClient, table1/figure11
                 --service, submit) retry with exponential backoff + jitter
                 and honour the hint.  Submission is content-hash
                 idempotent, so retries are always safe.
  supervision    dispatcher threads restart on crash; a job that kills its
                 worker --poison-threshold times is quarantined as
                 failed ("poisoned: ..."); journal/cache write failures
                 (ENOSPC, EIO) degrade the daemon (flagged in /healthz)
                 instead of crashing it.
  lifecycle      GET /healthz is liveness (always 200, degradation flags in
                 the body); GET /readyz is readiness (503 while draining or
                 saturated).  SIGTERM drains gracefully: admission stops,
                 running jobs finish within --drain-grace (leftovers are
                 requeued for the next epoch), the journal is compacted, and
                 SSE streams close with a "shutdown" event.

examples:
  rfic-layout serve --port 8080 --data-dir .rfic-service
  rfic-layout serve --max-queue 64 --class-limit background=8 --drain-grace 30
  rfic-layout submit buffer60 --flow manual --service http://127.0.0.1:8080 --wait
  rfic-layout status --service http://127.0.0.1:8080
  rfic-layout table1 --fast --service http://127.0.0.1:8080
"""


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed for the CLI tests)."""
    parser = argparse.ArgumentParser(
        prog="rfic-layout",
        description="RFIC layout generation with concurrent placement and "
        "fixed-length microstrip routing (DAC 2016 reproduction)",
        epilog=_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("--version", action="version", version=f"%(prog)s {__version__}")
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser("generate", help="run a layout flow on a netlist JSON")
    generate.add_argument("netlist", help="path to a netlist JSON file, or a benchmark circuit name")
    generate.add_argument(
        "--flow", choices=("pilp", "exact", "manual"), default="pilp",
        help="which flow to run (default: pilp)",
    )
    generate.add_argument("--output", "-o", default="layout.json", help="output layout JSON path")
    generate.add_argument("--svg", default=None, help="optional SVG output path")
    generate.add_argument("--time-limit", type=float, default=None, help="per-phase solver time limit (s)")
    generate.add_argument("--fast", action="store_true", help="use the fast (unit-test sized) configuration")
    generate.add_argument(
        "--seed", type=int, default=None,
        help="RNG seed for the flow heuristics (and, for benchmark circuit "
        "names, the generator's deterministic length jitter)",
    )

    batch = subparsers.add_parser(
        "batch", help="run many layout jobs in parallel with result caching"
    )
    batch.add_argument(
        "circuits", nargs="*", metavar="CIRCUIT",
        help="benchmark circuit names (default: all three, unless sweep "
        "options generate the workload instead)",
    )
    batch.add_argument(
        "--flow", choices=("pilp", "exact", "manual"), default="pilp",
        help="flow to run on every job (default: pilp)",
    )
    batch.add_argument("--variant", choices=("full", "reduced"), default=None)
    batch.add_argument(
        "--all-areas", action="store_true",
        help="also run each circuit's second (stress) area setting",
    )
    batch.add_argument(
        "--workers", type=int, default=None,
        help="worker processes (default: CPU count; 0 = run inline)",
    )
    batch.add_argument(
        "--cache-dir", default=".rfic-cache",
        help="content-addressed result cache directory (default: .rfic-cache)",
    )
    batch.add_argument(
        "--no-cache", action="store_true", help="disable the result cache"
    )
    batch.add_argument(
        "--timeout", type=float, default=None, help="per-job timeout in seconds"
    )
    batch.add_argument(
        "--portfolio", action="store_true",
        help="race solver-configuration variants per job and keep the first "
        "DRC-clean (or best-scoring) result",
    )
    batch.add_argument("--time-limit", type=float, default=None, help="per-phase solver time limit (s)")
    batch.add_argument("--fast", action="store_true", help="use the fast configuration")
    batch.add_argument("--seed", type=int, default=None, help="RNG seed for the flow heuristics")
    batch.add_argument(
        "--sweep-frequencies", default=None, metavar="GHZ[,GHZ...]",
        help="add sweep scenarios at these operating frequencies",
    )
    batch.add_argument(
        "--sweep-stages", default=None, metavar="N[,N...]",
        help="stage counts of the sweep scenarios (default: 2)",
    )
    batch.add_argument(
        "--sweep-area-scales", default=None, metavar="S[,S...]",
        help="area scale factors of the sweep scenarios (default: 1.0)",
    )
    batch.add_argument(
        "--sweep-seeds", default=None, metavar="N[,N...]",
        help="generator jitter seeds of the sweep scenarios",
    )
    batch.add_argument("--quiet", action="store_true", help="suppress per-job progress lines")
    batch.add_argument(
        "--json", default=None,
        help="write the results to this JSON file: an object with the outcome "
        "'rows' plus a 'cache' footer (hit/miss/store counters)",
    )
    batch.add_argument(
        "--keep-going", action="store_true",
        help="keep running the remaining jobs after a failure or timeout "
        "(default: the first broken job cancels the rest); either way the "
        "exit status is non-zero when any job failed or timed out",
    )

    table1 = subparsers.add_parser("table1", help="regenerate the paper's Table 1")
    table1.add_argument("--circuit", choices=circuit_names(), default=None, help="restrict to one circuit")
    table1.add_argument("--variant", choices=("full", "reduced"), default=None)
    table1.add_argument("--no-manual", action="store_true", help="skip the manual-like baseline")
    table1.add_argument("--fast", action="store_true", help="use the fast configuration")
    table1.add_argument("--time-limit", type=float, default=None, help="per-phase solver time limit (s)")
    table1.add_argument("--json", default=None, help="write the rows to this JSON file")
    table1.add_argument(
        "--workers", type=int, default=None,
        help="run the flows through the batch runner with this many workers",
    )
    table1.add_argument(
        "--cache-dir", default=None,
        help="result cache directory for the batch runner (implies runner use)",
    )
    table1.add_argument(
        "--service", default=None, metavar="URL",
        help="run the flows through a remote rfic-layout service at this URL",
    )

    figure11 = subparsers.add_parser("figure11", help="regenerate the paper's Figure 11")
    figure11.add_argument("--circuit", choices=list(FIGURE11_CIRCUITS), default=None)
    figure11.add_argument("--variant", choices=("full", "reduced"), default=None)
    figure11.add_argument("--fast", action="store_true", help="use the fast configuration")
    figure11.add_argument("--time-limit", type=float, default=None, help="per-phase solver time limit (s)")
    figure11.add_argument("--json", default=None, help="write the series to this JSON file")
    figure11.add_argument(
        "--workers", type=int, default=None,
        help="run the flows through the batch runner with this many workers",
    )
    figure11.add_argument(
        "--cache-dir", default=None,
        help="result cache directory for the batch runner (implies runner use)",
    )
    figure11.add_argument(
        "--service", default=None, metavar="URL",
        help="run the flows through a remote rfic-layout service at this URL",
    )

    circuits = subparsers.add_parser("circuits", help="list the benchmark circuits")
    circuits.add_argument("--variant", choices=("full", "reduced"), default=None)

    serve = subparsers.add_parser(
        "serve", help="run the persistent layout-generation service"
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port", type=int, default=8080,
        help="bind port (0 = ephemeral; see --port-file)",
    )
    serve.add_argument(
        "--port-file", default=None,
        help="write the bound port to this file once listening (atomic write; "
        "pair with --port 0)",
    )
    serve.add_argument(
        "--data-dir", default=".rfic-service",
        help="durable state: journal.jsonl plus the default cache location "
        "(default: .rfic-service)",
    )
    serve.add_argument(
        "--cache-dir", default=None,
        help="content-addressed result cache (default: <data-dir>/cache)",
    )
    serve.add_argument(
        "--dispatchers", type=int, default=2,
        help="concurrent dispatcher threads (default: 2)",
    )
    serve.add_argument(
        "--inline", action="store_true",
        help="run jobs inside the dispatcher threads instead of per-job worker "
        "processes (faster for tiny jobs; no crash isolation or timeouts)",
    )
    serve.add_argument(
        "--job-timeout", type=float, default=None, help="per-job timeout in seconds"
    )
    serve.add_argument(
        "--max-queue", type=int, default=0, metavar="N",
        help="maximum queued jobs before submissions get 429 (0 = unbounded)",
    )
    serve.add_argument(
        "--class-limit", action="append", default=None, metavar="CLASS=N",
        help="per-priority-class queued-job limit (repeatable), e.g. "
        "--class-limit background=8",
    )
    serve.add_argument(
        "--shed-ratio", type=float, default=0.5, metavar="R",
        help="fraction of --max-queue past which background-class work is "
        "shed early (default: 0.5)",
    )
    serve.add_argument(
        "--poison-threshold", type=int, default=3, metavar="N",
        help="worker crashes before a job is quarantined as failed(poisoned) "
        "(default: 3)",
    )
    serve.add_argument(
        "--drain-grace", type=float, default=30.0, metavar="S",
        help="seconds a SIGTERM drain waits for running jobs before "
        "requeueing them (default: 30)",
    )
    serve.add_argument("--quiet", action="store_true", help="suppress per-event log lines")
    serve.add_argument(
        "--log-json", action="store_true",
        help="emit structured JSON log lines (one object per line, with "
        "trace IDs) instead of the human-readable event log",
    )
    serve.add_argument(
        "--log-file", default=None, metavar="PATH",
        help="also append the structured JSON log to this file "
        "(implies --log-json plumbing; stderr stream only with --log-json)",
    )
    serve.add_argument(
        "--slo-availability", type=float, default=None, metavar="R",
        help="availability objective as a fraction in (0, 1), e.g. 0.99 = "
        "at most 1%% of admissions may be refused over the SLO window "
        "(enables the SLO monitor, rfic_slo_* gauges and GET /slo)",
    )
    serve.add_argument(
        "--slo-latency-p95", type=float, default=None, metavar="S",
        help="latency objective: windowed p95 settle latency must stay "
        "under S seconds (enables the SLO monitor)",
    )
    serve.add_argument(
        "--slo-window", type=float, default=300.0, metavar="S",
        help="rolling window the SLOs are evaluated over (default: 300)",
    )

    submit = subparsers.add_parser(
        "submit", help="submit a job to a running service"
    )
    submit.add_argument(
        "netlist", help="path to a netlist JSON file, or a benchmark circuit name"
    )
    submit.add_argument(
        "--service", default="http://127.0.0.1:8080", metavar="URL",
        help="service base URL (default: http://127.0.0.1:8080)",
    )
    submit.add_argument(
        "--flow", choices=("pilp", "exact", "manual"), default="pilp",
        help="which flow to run (default: pilp)",
    )
    submit.add_argument("--fast", action="store_true", help="use the fast configuration")
    submit.add_argument("--time-limit", type=float, default=None, help="per-phase solver time limit (s)")
    submit.add_argument("--seed", type=int, default=None, help="RNG seed for the flow heuristics")
    submit.add_argument(
        "--priority", choices=("interactive", "batch", "background"), default=None,
        help="admission priority class (default: batch)",
    )
    submit.add_argument(
        "--client", default=None,
        help="client identity for the service's per-client fairness",
    )
    submit.add_argument(
        "--tag", default="",
        help="extra hash salt forcing a distinct job / cache entry",
    )
    submit.add_argument(
        "--wait", action="store_true",
        help="poll until the job settles; exit non-zero unless it ends 'done'",
    )
    submit.add_argument(
        "--watch", action="store_true",
        help="stream the job's Server-Sent Events until it settles (implies --wait)",
    )
    submit.add_argument(
        "--timeout", type=float, default=None,
        help="give up waiting/watching after this many seconds",
    )

    status = subparsers.add_parser("status", help="query a running service")
    status.add_argument(
        "key", nargs="?", default=None,
        help="job content hash (omit for the service-wide /stats summary)",
    )
    status.add_argument(
        "--service", default="http://127.0.0.1:8080", metavar="URL",
        help="service base URL (default: http://127.0.0.1:8080)",
    )
    status.add_argument("--json", action="store_true", help="print the raw JSON document")
    status.add_argument(
        "--watch", action="store_true",
        help="refresh the service-wide summary in place until interrupted "
        "(service summary only; ignored with a job key)",
    )
    status.add_argument(
        "--interval", type=float, default=2.0, metavar="S",
        help="refresh period for --watch in seconds (default: 2)",
    )

    trace = subparsers.add_parser(
        "trace", help="print a job's span tree from a running service"
    )
    trace.add_argument(
        "key", help="job content hash (or the unique prefix the CLI prints)"
    )
    trace.add_argument(
        "--service", default="http://127.0.0.1:8080", metavar="URL",
        help="service base URL (default: http://127.0.0.1:8080)",
    )
    trace.add_argument("--json", action="store_true", help="print the raw JSON document")

    loadtest = subparsers.add_parser(
        "loadtest",
        help="drive a throwaway daemon with synthetic load and report "
        "latency percentiles, throughput, and exact counter reconciliation",
    )
    loadtest.add_argument(
        "--jobs", type=int, default=200, help="total submissions (default: 200)"
    )
    loadtest.add_argument(
        "--unique", type=int, default=40,
        help="distinct job hashes (cold solves) among them (default: 40)",
    )
    loadtest.add_argument(
        "--submitters", type=int, default=8,
        help="concurrent submitter threads (default: 8)",
    )
    loadtest.add_argument(
        "--watchers", type=int, default=20,
        help="concurrent SSE event watchers (default: 20)",
    )
    loadtest.add_argument(
        "--cached-wave", type=int, default=0, metavar="N",
        help="after the main wave settles, resubmit N guaranteed cache hits",
    )
    loadtest.add_argument(
        "--concurrency", type=int, default=2,
        help="daemon dispatcher threads (default: 2)",
    )
    loadtest.add_argument("--seed", type=int, default=0, help="workload seed")
    loadtest.add_argument(
        "--class-limits", default=None, metavar="CLASS=N[,CLASS=N]",
        help="per-class pending caps, e.g. background=4 (default: none)",
    )
    loadtest.add_argument(
        "--max-queue-depth", type=int, default=0,
        help="global queue bound; 0 = unbounded (default)",
    )
    loadtest.add_argument(
        "--data-dir", default=None,
        help="daemon data directory (default: a throwaway temp dir)",
    )
    loadtest.add_argument(
        "--snapshot", action="store_true",
        help="write the full report to BENCH_service_load.json "
        "(honours RFIC_BENCH_DIR)",
    )
    loadtest.add_argument("--json", action="store_true", help="print the raw report JSON")
    loadtest.add_argument(
        "--metrics-dump", default=None, metavar="PATH",
        help="write the final /metrics Prometheus exposition to this file",
    )

    cache = subparsers.add_parser(
        "cache", help="inspect and repair a result-cache directory"
    )
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)
    cache_scrub = cache_sub.add_parser(
        "scrub",
        help="walk every cache entry and checkpoint, re-verify artifact "
        "digests, quarantine corrupt entries and remove torn checkpoints; "
        "exits non-zero when corruption was found on this run (zero on a "
        "re-run after repair)",
    )
    cache_verify = cache_sub.add_parser(
        "verify",
        help="read-only integrity sweep: same checks as scrub but nothing "
        "is quarantined or removed; exits non-zero when the cache is dirty",
    )
    for cache_cmd in (cache_scrub, cache_verify):
        cache_cmd.add_argument(
            "--cache-dir", default=".rfic-cache",
            help="result cache directory (default: .rfic-cache)",
        )
        cache_cmd.add_argument(
            "--json", action="store_true",
            help="print the machine-readable report instead of the summary",
        )

    bench = subparsers.add_parser(
        "bench", help="operate on BENCH_*.json perf-trajectory snapshots"
    )
    bench_sub = bench.add_subparsers(dest="bench_command", required=True)
    bench_diff = bench_sub.add_parser(
        "diff",
        help="compare two snapshots with per-class tolerances; exits "
        "non-zero on any regression (counters exact, timings by ratio)",
    )
    bench_diff.add_argument(
        "baseline", help="baseline snapshot: a BENCH_*.json path or bare name"
    )
    bench_diff.add_argument(
        "current", help="candidate snapshot: a BENCH_*.json path or bare name"
    )
    bench_diff.add_argument(
        "--gate", action="store_true",
        help="CI mode: additionally fail when the snapshots are not "
        "comparable (different workload plan/config)",
    )
    bench_diff.add_argument(
        "--json", action="store_true",
        help="print the machine-readable diff document instead of the table",
    )
    bench_diff.add_argument(
        "--report", default=None, metavar="PATH",
        help="also write the machine-readable diff document to this file",
    )
    bench_diff.add_argument(
        "--show-ok", action="store_true",
        help="list every compared metric, not just warnings/regressions",
    )
    bench_diff.add_argument(
        "--latency-warn", type=float, default=2.0, metavar="X",
        help="warn when a latency-class metric is X times worse (default: 2)",
    )
    bench_diff.add_argument(
        "--latency-fail", type=float, default=10.0, metavar="X",
        help="fail when a latency-class metric is X times worse (default: 10)",
    )
    bench_diff.add_argument(
        "--throughput-warn", type=float, default=2.0, metavar="X",
        help="warn when a throughput-class metric is X times worse "
        "(default: 2)",
    )
    bench_diff.add_argument(
        "--throughput-fail", type=float, default=10.0, metavar="X",
        help="fail when a throughput-class metric is X times worse "
        "(default: 10)",
    )

    return parser


def _config_from_args(args: argparse.Namespace) -> PILPConfig:
    config = PILPConfig.fast() if getattr(args, "fast", False) else PILPConfig()
    time_limit = getattr(args, "time_limit", None)
    if time_limit is not None:
        config = config.with_updates(
            phase1=PhaseSettings(time_limit=time_limit),
            phase2=PhaseSettings(time_limit=time_limit),
            phase3=PhaseSettings(time_limit=time_limit),
            exact=PhaseSettings(time_limit=time_limit),
        )
    seed = getattr(args, "seed", None)
    if seed is not None:
        config = config.with_updates(random_seed=seed)
    return config


def _resolve_netlist_source(argument: str):
    """A netlist argument is either an existing file or a benchmark name.

    Returns a :class:`Path` for files and the circuit name string for
    benchmark circuits — callers that can stay lazy (``submit`` ships a
    :class:`GeneratorSpec` instead of a materialised netlist) dispatch on
    the type.
    """
    path = Path(argument)
    if path.exists():
        return path
    if argument in circuit_names():
        return argument
    raise SystemExit(
        f"error: {argument!r} is neither an existing netlist file nor one of the "
        f"benchmark circuits {circuit_names()}"
    )


def _load_netlist_argument(argument: str, seed: Optional[int] = None):
    source = _resolve_netlist_source(argument)
    if isinstance(source, Path):
        return load_netlist(source)
    return get_circuit(source, seed=seed).netlist


def _command_generate(args: argparse.Namespace) -> int:
    netlist = _load_netlist_argument(args.netlist, seed=args.seed)
    config = _config_from_args(args)
    if args.flow == "pilp":
        result = PILPLayoutGenerator(config).generate(netlist)
    elif args.flow == "exact":
        result = ExactLayoutGenerator(config).generate(netlist)
    else:
        result = ManualLikeFlow().generate(netlist)

    output = save_layout(result.layout, args.output)
    print(format_text_table([result.summary()], title=f"{args.flow} flow result"))
    print(f"layout written to {output}")
    if args.svg:
        svg_path = save_svg(result.layout, args.svg)
        print(f"SVG written to {svg_path}")
    return 0


def _runner_from_args(args: argparse.Namespace):
    """A runner when requested, else None.

    ``--service URL`` yields a :class:`~repro.service.client.RemoteRunner`
    targeting a running daemon; ``--workers`` / ``--cache-dir`` yield a
    local :class:`~repro.runner.pool.BatchRunner`.  The experiment
    harnesses consume either through the same interface.
    """
    service = getattr(args, "service", None)
    if service is not None:
        from repro.service import RemoteRunner

        return RemoteRunner(service, client="rfic-layout-cli")
    workers = getattr(args, "workers", None)
    cache_dir = getattr(args, "cache_dir", None)
    if workers is None and cache_dir is None:
        return None
    from repro.runner import BatchRunner

    return BatchRunner(
        cache_dir=cache_dir,
        workers=workers,
        job_timeout=getattr(args, "timeout", None),
        progress=None if getattr(args, "quiet", False) else _print_progress,
    )


def _print_progress(event) -> None:
    if event.kind in ("started", "cached", "completed", "failed", "timeout", "cancelled"):
        print(f"  [{event.kind:>9}] {event}", flush=True)


def _parse_grid(text: Optional[str], convert) -> Optional[list]:
    if text is None:
        return None
    try:
        return [convert(part) for part in text.split(",") if part.strip()]
    except ValueError as exc:
        raise SystemExit(f"error: bad sweep grid {text!r}: {exc}")


def _command_batch(args: argparse.Namespace) -> int:
    from repro.experiments.report import save_json as save_rows
    from repro.runner import (
        BatchRunner,
        GeneratorSpec,
        LayoutJob,
        SweepSpec,
        generate_sweep,
        run_portfolio,
    )

    config = _config_from_args(args)
    frequencies = _parse_grid(args.sweep_frequencies, float)
    stages = _parse_grid(args.sweep_stages, int)
    scales = _parse_grid(args.sweep_area_scales, float)
    seeds = _parse_grid(args.sweep_seeds, int)
    sweep_requested = any(grid is not None for grid in (frequencies, stages, scales, seeds))

    jobs = []
    circuits = list(args.circuits)
    if not circuits and not sweep_requested:
        circuits = circuit_names()
    for name in circuits:
        if name not in circuit_names():
            raise SystemExit(
                f"error: unknown circuit {name!r}; available: {circuit_names()}"
            )
        from repro.circuits import area_settings

        areas = area_settings(name, args.variant)
        settings = areas if args.all_areas else areas[:1]
        for index, area in enumerate(settings):
            jobs.append(
                LayoutJob(
                    flow=args.flow,
                    generator=GeneratorSpec(
                        name, args.variant, area=(area.width, area.height), seed=args.seed
                    ),
                    config=config,
                    label=f"{name}[{index}]:{args.flow}",
                )
            )
    if sweep_requested:
        sweep = SweepSpec(
            frequencies_ghz=tuple(frequencies or (60.0,)),
            stage_counts=tuple(stages or (2,)),
            area_scales=tuple(scales or (1.0,)),
            seeds=tuple(seeds or (args.seed,)),
        )
        jobs.extend(generate_sweep(sweep, config=config, flow=args.flow))

    runner = BatchRunner(
        cache_dir=None if args.no_cache else args.cache_dir,
        workers=args.workers,
        job_timeout=args.timeout,
        progress=None if args.quiet else _print_progress,
    )
    print(f"running {len(jobs)} job(s) on {runner.workers} worker(s)...")

    if args.portfolio:
        races = []
        skipped = []
        for index, job in enumerate(jobs):
            race = run_portfolio(job, runner)
            races.append(race)
            if race.winner is None and not args.keep_going:
                print(f"stopping after broken race {job.describe()!r} (no --keep-going)")
                skipped = jobs[index + 1 :]
                break
        rows = [race.row() for race in races]
        rows.extend(
            {"job": job.describe(), "status": "cancelled", "variant": None}
            for job in skipped
        )
        failures = sum(1 for race in races if race.winner is None)
    else:
        # Without --keep-going the first failed/timed-out job cancels the
        # rest of the batch; cancelled jobs are reported but only genuinely
        # broken ones drive the exit status.
        stop_when = (
            None
            if args.keep_going
            else (lambda outcome: outcome.status in ("failed", "timeout"))
        )
        outcomes = runner.run(jobs, stop_when=stop_when)
        rows = [outcome.row() for outcome in outcomes]
        failures = sum(1 for outcome in outcomes if outcome.status in ("failed", "timeout"))

    print()
    print(format_text_table(rows, title="batch results"))
    stats = runner.cache_stats()
    if stats:
        print(
            f"cache: {stats['hits']} hit(s), {stats['misses']} miss(es), "
            f"{stats['stores']} store(s) (hit rate {stats['hit_rate']:.0%})"
        )
    if failures:
        print(f"{failures} job(s) failed or timed out")
    if args.json:
        save_rows(
            {
                "rows": rows,
                "cache": stats or None,
                "failures": failures,
                "keep_going": bool(args.keep_going),
            },
            args.json,
        )
        print(f"rows written to {args.json}")
    return 1 if failures else 0


def _command_table1(args: argparse.Namespace) -> int:
    config = _config_from_args(args)
    circuits = [args.circuit] if args.circuit else None
    result = run_table1(
        circuits=circuits,
        variant=args.variant,
        config=config,
        include_manual=not args.no_manual,
        runner=_runner_from_args(args),
    )
    print(result.to_text())
    print()
    print(f"paper's qualitative shape holds: {result.shape_holds()}")
    if args.json:
        save_json(result.as_dicts(), args.json)
        print(f"rows written to {args.json}")
    return 0


def _command_figure11(args: argparse.Namespace) -> int:
    config = _config_from_args(args)
    circuits = [args.circuit] if args.circuit else None
    results = run_figure11(
        circuits=circuits,
        variant=args.variant,
        config=config,
        runner=_runner_from_args(args),
    )
    for result in results:
        print(result.to_text())
        print(f"shape holds (p-ilp gain >= manual gain): {result.shape_holds()}")
        print()
    if args.json:
        save_json([result.series_dict() for result in results], args.json)
        print(f"series written to {args.json}")
    return 0


def _print_service_event(event) -> None:
    detail = f" {event['detail']}" if event.get("detail") else ""
    runtime = f" {event['runtime']:.1f}s" if event.get("runtime") else ""
    print(f"  [{event['kind']:>8}] {event['label']}{runtime}{detail}", flush=True)


def _parse_class_limits(pairs: Optional[List[str]]) -> Optional[dict]:
    if not pairs:
        return None
    limits = {}
    for pair in pairs:
        name, _, value = pair.partition("=")
        if name not in ("interactive", "batch", "background") or not value.isdigit():
            raise SystemExit(
                f"error: bad --class-limit {pair!r} (expected CLASS=N with CLASS "
                f"one of interactive/batch/background)"
            )
        limits[name] = int(value)
    return limits


def _command_serve(args: argparse.Namespace) -> int:
    import signal
    import threading

    from repro.obs.logging import LOG
    from repro.service import LayoutService

    log_json = args.log_json or args.log_file is not None
    if log_json:
        LOG.configure(path=args.log_file)
    slo = None
    if args.slo_availability is not None or args.slo_latency_p95 is not None:
        from repro.errors import ConfigurationError
        from repro.obs.slo import SLOConfig

        try:
            slo = SLOConfig(
                availability_objective=args.slo_availability,
                latency_p95_target_s=args.slo_latency_p95,
                window_s=args.slo_window,
            )
        except ConfigurationError as exc:
            raise SystemExit(f"error: {exc}")
    service = LayoutService(
        data_dir=args.data_dir,
        cache_dir=args.cache_dir,
        concurrency=args.dispatchers,
        inline=args.inline,
        job_timeout=args.job_timeout,
        max_queue_depth=args.max_queue,
        class_limits=_parse_class_limits(args.class_limit),
        background_shed_ratio=args.shed_ratio,
        poison_threshold=args.poison_threshold,
        slo=slo,
    )
    service.bind(host=args.host, port=args.port)

    def _drain(signum, frame) -> None:
        # The handler runs in the main thread, which is blocked inside
        # serve_forever(); server.shutdown() must come from another thread
        # or it deadlocks.  drain() ends with exactly that shutdown, which
        # unblocks serve_forever and lets main exit normally.
        print("SIGTERM: draining (admission stopped)...", flush=True)
        threading.Thread(
            target=service.drain,
            kwargs={"timeout": args.drain_grace},
            daemon=True,
            name="drain",
        ).start()

    signal.signal(signal.SIGTERM, _drain)
    service.start()
    if args.port_file:
        service.write_port_file(args.port_file)
    if not args.quiet and not log_json:
        # With --log-json the scheduler already emits structured lines for
        # every lifecycle transition; a second firehose would duplicate it.
        subscription = service.scheduler.bus.subscribe(None, replay=False)

        def _pump() -> None:
            while True:
                event = subscription.get(timeout=1.0)
                if event is not None:
                    _print_service_event(event)

        threading.Thread(target=_pump, daemon=True, name="event-log").start()
    replayed = service.scheduler.stats()["replayed_from_journal"]
    print(
        f"rfic-layout service listening on http://{args.host}:{service.port} "
        f"({args.dispatchers} dispatcher(s), "
        f"{'inline' if args.inline else 'process'} execution)",
        flush=True,
    )
    print(
        f"journal: {service.queue.journal_path} "
        f"({replayed} pending job(s) replayed); cache: {service.cache.root}",
        flush=True,
    )
    try:
        service.serve_forever()
    except KeyboardInterrupt:
        print("shutting down...", flush=True)
    finally:
        service.shutdown()
    return 0


def _command_submit(args: argparse.Namespace) -> int:
    from repro.runner import GeneratorSpec, LayoutJob
    from repro.service import ServiceClient

    config = _config_from_args(args)
    source = _resolve_netlist_source(args.netlist)
    if isinstance(source, Path):
        job = LayoutJob(
            flow=args.flow, netlist=load_netlist(source), config=config, tag=args.tag
        )
    else:
        # Stay lazy: the tiny generator recipe travels, the daemon builds
        # the netlist (and hashes the resolved form, as always).
        job = LayoutJob(
            flow=args.flow,
            generator=GeneratorSpec(source, seed=args.seed),
            config=config,
            tag=args.tag,
        )
    from repro.service import ServiceError

    client = ServiceClient(args.service)
    try:
        response = client.submit_job(job, priority=args.priority, client=args.client)
        key = response["key"]
        print(
            f"job {key[:12]} ({response['label']}): {response['disposition']} "
            f"[state: {response['state']}]"
        )
        final_event = None
        if args.watch:
            # iter_events reconnects dropped streams itself, resuming from
            # the last seen seq; a "shutdown" event (daemon draining) ends
            # the stream without settling the job.
            for event in client.iter_events(key, timeout=args.timeout):
                _print_service_event(event)
                if event["kind"] in ("done", "failed", "timeout", "cancelled"):
                    final_event = event
        if args.wait or args.watch:
            if final_event is not None:
                state = str(final_event.get("state") or final_event["kind"])
                try:
                    record = client.status(key)
                except ServiceError:
                    # The stream already told us the outcome; a daemon that
                    # went away since must not turn it into a crash.
                    record = {"state": state, "error": final_event.get("detail")}
            else:
                record = client.wait(key, timeout=args.timeout)
                state = str(record["state"])
            if record.get("summary"):
                print(format_text_table([record["summary"]], title="job result"))
            if state != "done":
                print(f"job settled as {state!r}: {record.get('error') or 'no detail'}")
                return 1
    except ServiceError as exc:
        raise SystemExit(f"error: {exc}")
    return 0


def _command_status(args: argparse.Namespace) -> int:
    import time as _time

    from repro.service import ServiceClient, ServiceError

    client = ServiceClient(args.service)
    try:
        if args.watch and not args.key:
            interval = max(0.2, args.interval)
            try:
                while True:
                    print("\x1b[2J\x1b[H", end="")  # clear + home
                    _print_status(client, args)
                    print(
                        f"  (refreshing every {interval:g}s — Ctrl-C to stop)",
                        flush=True,
                    )
                    _time.sleep(interval)
            except KeyboardInterrupt:
                return 0
        return _print_status(client, args)
    except ServiceError as exc:
        raise SystemExit(f"error: {exc}")


def _print_status(client, args: argparse.Namespace) -> int:
    if args.key:
        record = client.status(args.key)
        if args.json:
            print(json.dumps(record, indent=2, sort_keys=True))
            return 0
        print(f"job {record['key'][:12]} ({record['label']})")
        for field in ("state", "priority", "client", "runtime", "attach_count", "error"):
            if record.get(field) not in (None, "", 0):
                print(f"  {field}: {record[field]}")
        if record.get("summary"):
            print(format_text_table([record["summary"]], title="summary"))
        return 0
    stats = client.stats()
    if args.json:
        print(json.dumps(stats, indent=2, sort_keys=True))
        return 0
    print(f"service at {client.base_url} (up {stats['uptime_s']}s)")
    jobs = stats["jobs"]
    print(
        f"  jobs: {stats['queue_depth']} queued, {jobs['running']} running, "
        f"{jobs['done']} done, {jobs['failed']} failed, "
        f"{jobs['timeout']} timed out, {jobs['cancelled']} cancelled"
    )
    print(
        f"  work: {stats['solved']} solved, {stats['served_from_cache']} served "
        f"from cache, {stats['attached']} attached, "
        f"{stats['replayed_from_journal']} replayed from journal"
    )
    cache = stats["cache"]
    print(
        f"  cache: {cache['hits']} hit(s), {cache['misses']} miss(es), "
        f"{cache['stores']} store(s) (hit rate {cache['hit_rate']:.0%})"
    )
    admission = stats.get("admission") or {}
    if admission.get("max_queue_depth"):
        print(
            f"  admission: max queue {admission['max_queue_depth']}, "
            f"{admission.get('rejected', 0)} rejected, "
            f"{admission.get('shed', 0)} shed"
        )
    supervision = stats.get("supervision") or {}
    if supervision:
        print(
            f"  supervision: {supervision.get('dispatcher_restarts', 0)} dispatcher "
            f"restart(s), {supervision.get('crash_retries', 0)} crash retry(ies), "
            f"{supervision.get('poisoned', 0)} poisoned"
        )
    slo = stats.get("slo") or {}
    if slo.get("configured"):
        parts = []
        availability = slo.get("availability")
        if availability:
            parts.append(
                f"availability {availability['ratio']:.1%} "
                f"(objective {availability['objective']:.1%}, "
                f"burn {availability['burn_rate']:.2f}x)"
            )
        latency = slo.get("latency")
        if latency:
            bounds = latency.get("p95_bounds_s")
            if not bounds:
                shown = "no samples"
            elif bounds[1] is not None:
                shown = f"<= {bounds[1]:g}s"
            else:
                shown = f"> {bounds[0]:g}s"
            parts.append(f"p95 {shown} (target {latency['target_p95_s']:g}s)")
        state = "ok" if slo.get("ok") else "VIOLATED"
        joined = "; ".join(parts) if parts else "no objectives"
        print(f"  slo: {state} over {slo.get('window_s', 0):g}s window — {joined}")
    health = stats.get("health") or {}
    if health:
        flags = []
        if health.get("draining"):
            flags.append("draining")
        if health.get("journal_degraded"):
            flags.append("journal degraded")
        if not health.get("cache_writable", True):
            flags.append("cache unwritable")
        suffix = f" ({', '.join(flags)})" if flags else ""
        print(f"  health: {health.get('status', 'unknown')}{suffix}")
    return 0


def _command_trace(args: argparse.Namespace) -> int:
    from repro.service import ServiceClient, ServiceError

    client = ServiceClient(args.service)
    try:
        document = client.trace(args.key)
    except ServiceError as exc:
        raise SystemExit(f"error: {exc}")
    if args.json:
        print(json.dumps(document, indent=2, sort_keys=True))
        return 0
    trace_id = document.get("trace") or "-"
    print(
        f"job {document['key'][:12]} ({document.get('label') or '?'}) "
        f"trace {trace_id} [state: {document['state']}]"
    )
    total = document.get("total_s")
    span_sum = document.get("span_sum_s")
    if total is not None:
        print(f"  total {total:.3f}s (top-level spans sum to {span_sum:.3f}s)")
    if document.get("truncated"):
        print("  (truncated: spans synthesized from the journal)")
    spans = document.get("spans") or []
    if not spans:
        print("  no spans recorded yet")
        return 0
    for span in spans:
        indent = "    " if span.get("parent") else "  "
        flags = " [truncated]" if span.get("truncated") else ""
        detail = f"  {span['detail']}" if span.get("detail") else ""
        print(
            f"{indent}{span['name']:<16} {span['duration_s'] * 1000:>10.2f}ms"
            f"{detail}{flags}"
        )
    return 0


def _command_circuits(args: argparse.Namespace) -> int:
    rows = []
    for name in circuit_names():
        circuit = get_circuit(name, args.variant)
        rows.append(circuit.summary())
    print(format_text_table(rows, title="Reconstructed benchmark circuits"))
    return 0


def _format_latency(summary: dict) -> str:
    if not summary.get("count"):
        return "no samples"
    return (
        f"p50 {summary['p50'] * 1000:.1f}ms  p95 {summary['p95'] * 1000:.1f}ms  "
        f"p99 {summary['p99'] * 1000:.1f}ms  max {summary['max'] * 1000:.1f}ms "
        f"({summary['count']} samples)"
    )


def _command_loadtest(args: argparse.Namespace) -> int:
    import tempfile

    from repro.loadgen import LoadTestConfig, WorkloadSpec, run_load_test
    from repro.loadgen import write_snapshot

    spec = WorkloadSpec(
        jobs=args.jobs,
        unique_jobs=args.unique,
        submitters=args.submitters,
        watchers=args.watchers,
        cached_wave=args.cached_wave,
        seed=args.seed,
    )
    limits = _parse_class_limits(
        args.class_limits.split(",") if args.class_limits else None
    )
    config = LoadTestConfig(
        concurrency=args.concurrency,
        max_queue_depth=args.max_queue_depth,
        class_limits=limits,
    )
    if args.data_dir is not None:
        report = run_load_test(spec, data_dir=args.data_dir, config=config)
    else:
        with tempfile.TemporaryDirectory(prefix="rfic-loadtest-") as scratch:
            report = run_load_test(
                spec, data_dir=Path(scratch) / "service", config=config
            )
    data = report.to_snapshot_data()
    if args.snapshot:
        path = write_snapshot("service_load", data)
        print(f"snapshot written to {path}", flush=True)
    if args.metrics_dump:
        if report.metrics_text:
            Path(args.metrics_dump).write_text(
                report.metrics_text, encoding="utf-8"
            )
            print(f"metrics exposition written to {args.metrics_dump}", flush=True)
        else:
            print("no /metrics exposition captured; nothing dumped", flush=True)
    if args.json:
        print(json.dumps(data, indent=2, sort_keys=True))
        return 0 if report.ok else 1
    throughput = data["throughput"]
    sse = data["sse"]
    print(
        f"load test: {report.submitted} submissions "
        f"({spec.jobs} main + {spec.cached_wave} cached wave) in "
        f"{report.wall_s:.1f}s — {spec.submitters} submitters, "
        f"{spec.watchers} watchers, {config.concurrency} dispatchers"
    )
    print(f"  dispositions: {dict(sorted(report.dispositions.items()))}")
    print(
        f"  refused: {report.rejected_429} (shed rate "
        f"{data['shed_rate']:.1%}), errors: {len(report.submit_errors)}"
    )
    print(f"  admission: {_format_latency(data['admission_latency_s'])}")
    print(f"  settle:    {_format_latency(data['settle_latency_s'])}")
    print(
        f"  throughput: {throughput['settled_jobs_per_s']} settled/s "
        f"({throughput['solved_per_dispatcher_per_s']} solved/s per dispatcher); "
        f"peak queue depth {data['queue_depth']['peak']}"
    )
    print(
        f"  sse: {sse['events']} events to {sse['watchers']} watchers, "
        f"live lag {_format_latency(sse['live_lag_s'])}"
    )
    checks = data["reconciliation"]
    bad = {name: check for name, check in checks.items() if not check["ok"]}
    if bad:
        print(f"  RECONCILIATION FAILED: {bad}")
        return 1
    print(f"  reconciliation: {len(checks)} exact checks OK, zero lost jobs")
    return 0


def _command_cache(args: argparse.Namespace) -> int:
    from repro.runner.cache import ResultCache

    root = Path(args.cache_dir)
    if not root.exists():
        raise SystemExit(f"error: no cache directory at {root}")
    cache = ResultCache(root)
    repair = args.cache_command == "scrub"
    report = cache.scrub(repair=repair)
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        mode = "scrub" if repair else "verify"
        print(
            f"cache {mode}: {report['entries_scanned']} entr(ies) scanned, "
            f"{report['entries_ok']} ok, {report['entries_corrupt']} corrupt"
            + (f" ({report['entries_quarantined']} quarantined)" if repair else "")
        )
        print(
            f"  checkpoints: {report['checkpoints_scanned']} scanned, "
            f"{report['checkpoints_corrupt']} corrupt"
            + (f" ({report['checkpoints_removed']} removed)" if repair else "")
        )
        if report["staging_swept"]:
            print(f"  staging: {report['staging_swept']} stale dir(s) swept")
        if report["errors"]:
            print(f"  errors: {report['errors']} entr(ies) unreadable")
        if report["quarantine_entries"]:
            print(
                f"  quarantine holds {report['quarantine_entries']} entr(ies) "
                f"under {cache.root / 'quarantine'}"
            )
        for key in report["corrupt_keys"]:
            print(f"  corrupt: {key}")
        print(f"  verdict: {'clean' if report['clean'] else 'DIRTY'}")
    # Non-zero exactly when corruption was found on *this* run: a scrub
    # repairs the cache but still reports what it had to repair; the
    # re-run after repair exits zero.
    return 0 if report["clean"] else 1


def _command_bench(args: argparse.Namespace) -> int:
    from repro.errors import ConfigurationError
    from repro.loadgen import Thresholds, diff_snapshot_files

    try:
        thresholds = Thresholds(
            latency_warn_ratio=args.latency_warn,
            latency_fail_ratio=args.latency_fail,
            throughput_warn_ratio=args.throughput_warn,
            throughput_fail_ratio=args.throughput_fail,
        )
    except ValueError as exc:
        raise SystemExit(f"error: {exc}")
    try:
        report = diff_snapshot_files(args.baseline, args.current, thresholds)
    except ConfigurationError as exc:
        # Covers missing files, foreign schemas, and CorruptSnapshotError
        # (whose message already says how to restore the file).
        raise SystemExit(f"error: {exc}")
    verdict = report.gate_verdict(gate=args.gate)
    doc = report.to_dict()
    doc["gate"] = args.gate
    doc["gate_verdict"] = verdict
    blob = json.dumps(doc, indent=2, sort_keys=True)
    if args.report:
        Path(args.report).write_text(blob + "\n", encoding="utf-8")
    if args.json:
        print(blob)
    else:
        print(report.to_text(show_ok=args.show_ok))
        if verdict == "regression" and report.verdict != "regression":
            print(
                "gate: FAILED — plan mismatch, the snapshots measured "
                "different experiments (re-baseline or fix the workload)"
            )
    return 1 if verdict == "regression" else 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point of the ``rfic-layout`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "generate": _command_generate,
        "batch": _command_batch,
        "table1": _command_table1,
        "figure11": _command_figure11,
        "circuits": _command_circuits,
        "serve": _command_serve,
        "submit": _command_submit,
        "status": _command_status,
        "trace": _command_trace,
        "loadtest": _command_loadtest,
        "cache": _command_cache,
        "bench": _command_bench,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
