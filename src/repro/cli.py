"""Command-line interface: ``rfic-layout`` (or ``python -m repro.cli``).

Sub-commands
------------
``generate``
    Run the P-ILP flow (or the exact / manual-like flow) on a netlist JSON
    file and write the resulting layout (JSON + SVG).
``batch``
    Run many layout jobs through the :mod:`repro.runner` subsystem:
    parallel workers, a content-addressed result cache, optional portfolio
    racing of solver configurations, and parameter-grid sweeps.
``table1``
    Regenerate (part of) the paper's Table 1 and print it.
``figure11``
    Regenerate (part of) the paper's Figure 11 and print the gain summary.
``circuits``
    List the reconstructed benchmark circuits and their statistics.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro import __version__
from repro.circuit.loader import load_netlist
from repro.circuits import circuit_names, get_circuit
from repro.core.config import PhaseSettings, PILPConfig
from repro.core.exact import ExactLayoutGenerator
from repro.core.pilp import PILPLayoutGenerator
from repro.baselines.manual_like import ManualLikeFlow
from repro.experiments.figure11 import FIGURE11_CIRCUITS, run_figure11
from repro.experiments.report import format_text_table, save_json
from repro.experiments.table1 import run_table1
from repro.layout.export_json import save_layout
from repro.layout.export_svg import save_svg


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed for the CLI tests)."""
    parser = argparse.ArgumentParser(
        prog="rfic-layout",
        description="RFIC layout generation with concurrent placement and "
        "fixed-length microstrip routing (DAC 2016 reproduction)",
    )
    parser.add_argument("--version", action="version", version=f"%(prog)s {__version__}")
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser("generate", help="run a layout flow on a netlist JSON")
    generate.add_argument("netlist", help="path to a netlist JSON file, or a benchmark circuit name")
    generate.add_argument(
        "--flow", choices=("pilp", "exact", "manual"), default="pilp",
        help="which flow to run (default: pilp)",
    )
    generate.add_argument("--output", "-o", default="layout.json", help="output layout JSON path")
    generate.add_argument("--svg", default=None, help="optional SVG output path")
    generate.add_argument("--time-limit", type=float, default=None, help="per-phase solver time limit (s)")
    generate.add_argument("--fast", action="store_true", help="use the fast (unit-test sized) configuration")
    generate.add_argument(
        "--seed", type=int, default=None,
        help="RNG seed for the flow heuristics (and, for benchmark circuit "
        "names, the generator's deterministic length jitter)",
    )

    batch = subparsers.add_parser(
        "batch", help="run many layout jobs in parallel with result caching"
    )
    batch.add_argument(
        "circuits", nargs="*", metavar="CIRCUIT",
        help="benchmark circuit names (default: all three, unless sweep "
        "options generate the workload instead)",
    )
    batch.add_argument(
        "--flow", choices=("pilp", "exact", "manual"), default="pilp",
        help="flow to run on every job (default: pilp)",
    )
    batch.add_argument("--variant", choices=("full", "reduced"), default=None)
    batch.add_argument(
        "--all-areas", action="store_true",
        help="also run each circuit's second (stress) area setting",
    )
    batch.add_argument(
        "--workers", type=int, default=None,
        help="worker processes (default: CPU count; 0 = run inline)",
    )
    batch.add_argument(
        "--cache-dir", default=".rfic-cache",
        help="content-addressed result cache directory (default: .rfic-cache)",
    )
    batch.add_argument(
        "--no-cache", action="store_true", help="disable the result cache"
    )
    batch.add_argument(
        "--timeout", type=float, default=None, help="per-job timeout in seconds"
    )
    batch.add_argument(
        "--portfolio", action="store_true",
        help="race solver-configuration variants per job and keep the first "
        "DRC-clean (or best-scoring) result",
    )
    batch.add_argument("--time-limit", type=float, default=None, help="per-phase solver time limit (s)")
    batch.add_argument("--fast", action="store_true", help="use the fast configuration")
    batch.add_argument("--seed", type=int, default=None, help="RNG seed for the flow heuristics")
    batch.add_argument(
        "--sweep-frequencies", default=None, metavar="GHZ[,GHZ...]",
        help="add sweep scenarios at these operating frequencies",
    )
    batch.add_argument(
        "--sweep-stages", default=None, metavar="N[,N...]",
        help="stage counts of the sweep scenarios (default: 2)",
    )
    batch.add_argument(
        "--sweep-area-scales", default=None, metavar="S[,S...]",
        help="area scale factors of the sweep scenarios (default: 1.0)",
    )
    batch.add_argument(
        "--sweep-seeds", default=None, metavar="N[,N...]",
        help="generator jitter seeds of the sweep scenarios",
    )
    batch.add_argument("--quiet", action="store_true", help="suppress per-job progress lines")
    batch.add_argument("--json", default=None, help="write the outcome rows to this JSON file")

    table1 = subparsers.add_parser("table1", help="regenerate the paper's Table 1")
    table1.add_argument("--circuit", choices=circuit_names(), default=None, help="restrict to one circuit")
    table1.add_argument("--variant", choices=("full", "reduced"), default=None)
    table1.add_argument("--no-manual", action="store_true", help="skip the manual-like baseline")
    table1.add_argument("--fast", action="store_true", help="use the fast configuration")
    table1.add_argument("--time-limit", type=float, default=None, help="per-phase solver time limit (s)")
    table1.add_argument("--json", default=None, help="write the rows to this JSON file")
    table1.add_argument(
        "--workers", type=int, default=None,
        help="run the flows through the batch runner with this many workers",
    )
    table1.add_argument(
        "--cache-dir", default=None,
        help="result cache directory for the batch runner (implies runner use)",
    )

    figure11 = subparsers.add_parser("figure11", help="regenerate the paper's Figure 11")
    figure11.add_argument("--circuit", choices=list(FIGURE11_CIRCUITS), default=None)
    figure11.add_argument("--variant", choices=("full", "reduced"), default=None)
    figure11.add_argument("--fast", action="store_true", help="use the fast configuration")
    figure11.add_argument("--time-limit", type=float, default=None, help="per-phase solver time limit (s)")
    figure11.add_argument("--json", default=None, help="write the series to this JSON file")
    figure11.add_argument(
        "--workers", type=int, default=None,
        help="run the flows through the batch runner with this many workers",
    )
    figure11.add_argument(
        "--cache-dir", default=None,
        help="result cache directory for the batch runner (implies runner use)",
    )

    circuits = subparsers.add_parser("circuits", help="list the benchmark circuits")
    circuits.add_argument("--variant", choices=("full", "reduced"), default=None)

    return parser


def _config_from_args(args: argparse.Namespace) -> PILPConfig:
    config = PILPConfig.fast() if getattr(args, "fast", False) else PILPConfig()
    time_limit = getattr(args, "time_limit", None)
    if time_limit is not None:
        config = config.with_updates(
            phase1=PhaseSettings(time_limit=time_limit),
            phase2=PhaseSettings(time_limit=time_limit),
            phase3=PhaseSettings(time_limit=time_limit),
            exact=PhaseSettings(time_limit=time_limit),
        )
    seed = getattr(args, "seed", None)
    if seed is not None:
        config = config.with_updates(random_seed=seed)
    return config


def _load_netlist_argument(argument: str, seed: Optional[int] = None):
    path = Path(argument)
    if path.exists():
        return load_netlist(path)
    if argument in circuit_names():
        return get_circuit(argument, seed=seed).netlist
    raise SystemExit(
        f"error: {argument!r} is neither an existing netlist file nor one of the "
        f"benchmark circuits {circuit_names()}"
    )


def _command_generate(args: argparse.Namespace) -> int:
    netlist = _load_netlist_argument(args.netlist, seed=args.seed)
    config = _config_from_args(args)
    if args.flow == "pilp":
        result = PILPLayoutGenerator(config).generate(netlist)
    elif args.flow == "exact":
        result = ExactLayoutGenerator(config).generate(netlist)
    else:
        result = ManualLikeFlow().generate(netlist)

    output = save_layout(result.layout, args.output)
    print(format_text_table([result.summary()], title=f"{args.flow} flow result"))
    print(f"layout written to {output}")
    if args.svg:
        svg_path = save_svg(result.layout, args.svg)
        print(f"SVG written to {svg_path}")
    return 0


def _runner_from_args(args: argparse.Namespace):
    """A BatchRunner when --workers / --cache-dir were given, else None."""
    workers = getattr(args, "workers", None)
    cache_dir = getattr(args, "cache_dir", None)
    if workers is None and cache_dir is None:
        return None
    from repro.runner import BatchRunner

    return BatchRunner(
        cache_dir=cache_dir,
        workers=workers,
        job_timeout=getattr(args, "timeout", None),
        progress=None if getattr(args, "quiet", False) else _print_progress,
    )


def _print_progress(event) -> None:
    if event.kind in ("started", "cached", "completed", "failed", "timeout", "cancelled"):
        print(f"  [{event.kind:>9}] {event}", flush=True)


def _parse_grid(text: Optional[str], convert) -> Optional[list]:
    if text is None:
        return None
    try:
        return [convert(part) for part in text.split(",") if part.strip()]
    except ValueError as exc:
        raise SystemExit(f"error: bad sweep grid {text!r}: {exc}")


def _command_batch(args: argparse.Namespace) -> int:
    from repro.experiments.report import save_json as save_rows
    from repro.runner import (
        BatchRunner,
        GeneratorSpec,
        LayoutJob,
        SweepSpec,
        generate_sweep,
        run_portfolio_batch,
    )

    config = _config_from_args(args)
    frequencies = _parse_grid(args.sweep_frequencies, float)
    stages = _parse_grid(args.sweep_stages, int)
    scales = _parse_grid(args.sweep_area_scales, float)
    seeds = _parse_grid(args.sweep_seeds, int)
    sweep_requested = any(grid is not None for grid in (frequencies, stages, scales, seeds))

    jobs = []
    circuits = list(args.circuits)
    if not circuits and not sweep_requested:
        circuits = circuit_names()
    for name in circuits:
        if name not in circuit_names():
            raise SystemExit(
                f"error: unknown circuit {name!r}; available: {circuit_names()}"
            )
        from repro.circuits import area_settings

        areas = area_settings(name, args.variant)
        settings = areas if args.all_areas else areas[:1]
        for index, area in enumerate(settings):
            jobs.append(
                LayoutJob(
                    flow=args.flow,
                    generator=GeneratorSpec(
                        name, args.variant, area=(area.width, area.height), seed=args.seed
                    ),
                    config=config,
                    label=f"{name}[{index}]:{args.flow}",
                )
            )
    if sweep_requested:
        sweep = SweepSpec(
            frequencies_ghz=tuple(frequencies or (60.0,)),
            stage_counts=tuple(stages or (2,)),
            area_scales=tuple(scales or (1.0,)),
            seeds=tuple(seeds or (args.seed,)),
        )
        jobs.extend(generate_sweep(sweep, config=config, flow=args.flow))

    runner = BatchRunner(
        cache_dir=None if args.no_cache else args.cache_dir,
        workers=args.workers,
        job_timeout=args.timeout,
        progress=None if args.quiet else _print_progress,
    )
    print(f"running {len(jobs)} job(s) on {runner.workers} worker(s)...")

    if args.portfolio:
        races = run_portfolio_batch(jobs, runner)
        rows = [race.row() for race in races]
        failures = sum(1 for race in races if race.winner is None)
    else:
        outcomes = runner.run(jobs)
        rows = [outcome.row() for outcome in outcomes]
        failures = sum(1 for outcome in outcomes if not outcome.ok)

    print()
    print(format_text_table(rows, title="batch results"))
    stats = runner.cache_stats()
    if stats:
        print(
            f"cache: {stats['hits']} hit(s), {stats['misses']} miss(es) "
            f"(hit rate {stats['hit_rate']:.0%})"
        )
    if args.json:
        save_rows(rows, args.json)
        print(f"rows written to {args.json}")
    return 1 if failures else 0


def _command_table1(args: argparse.Namespace) -> int:
    config = _config_from_args(args)
    circuits = [args.circuit] if args.circuit else None
    result = run_table1(
        circuits=circuits,
        variant=args.variant,
        config=config,
        include_manual=not args.no_manual,
        runner=_runner_from_args(args),
    )
    print(result.to_text())
    print()
    print(f"paper's qualitative shape holds: {result.shape_holds()}")
    if args.json:
        save_json(result.as_dicts(), args.json)
        print(f"rows written to {args.json}")
    return 0


def _command_figure11(args: argparse.Namespace) -> int:
    config = _config_from_args(args)
    circuits = [args.circuit] if args.circuit else None
    results = run_figure11(
        circuits=circuits,
        variant=args.variant,
        config=config,
        runner=_runner_from_args(args),
    )
    for result in results:
        print(result.to_text())
        print(f"shape holds (p-ilp gain >= manual gain): {result.shape_holds()}")
        print()
    if args.json:
        save_json([result.series_dict() for result in results], args.json)
        print(f"series written to {args.json}")
    return 0


def _command_circuits(args: argparse.Namespace) -> int:
    rows = []
    for name in circuit_names():
        circuit = get_circuit(name, args.variant)
        rows.append(circuit.summary())
    print(format_text_table(rows, title="Reconstructed benchmark circuits"))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point of the ``rfic-layout`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "generate": _command_generate,
        "batch": _command_batch,
        "table1": _command_table1,
        "figure11": _command_figure11,
        "circuits": _command_circuits,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
