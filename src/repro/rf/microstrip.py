"""Electrical model of a thin-film microstrip line.

The paper's circuits use thin-film microstrips (Figure 1(a)): the line on the
top metal, the ground plane on Metal 1, separated by ``t`` of SiO2.  This
module provides the quasi-static closed-form model used throughout the RF
substrate:

* effective permittivity and characteristic impedance from the
  Hammerstad-Jensen formulas,
* conductor loss from the skin effect, dielectric loss from the loss
  tangent,
* the complex propagation constant ``gamma(f) = alpha + j beta``.

Absolute accuracy against a full-wave EM solver is not the goal (and not
claimed); what matters for reproducing Figure 11 is that the model responds
correctly to the layout quantities the optimiser controls — line length and
bend count.

All cross-section parameters (``eps_eff``, ``Z0``) are computed once per
line and cached, and the frequency-dependent quantities (``alpha``,
``beta``, ``gamma``) are memoised per frequency grid: amplifier scoring
evaluates the same handful of cross-sections over the same sweep for every
chain element of every layout candidate, so without the cache the identical
transcendental math re-runs hundreds of times per Figure-11 sweep.  The
cached arrays are shared — treat them as read-only.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import cached_property
from typing import Dict, Iterable, Tuple

import numpy as np

from repro.errors import RFError
from repro.tech.technology import Technology
from repro.units import EPSILON_0, ETA_0, MU_0, SPEED_OF_LIGHT, microns_to_meters


@dataclass(frozen=True)
class MicrostripLine:
    """Quasi-static model of a microstrip cross-section.

    Attributes
    ----------
    width:
        Line width in micrometres.
    height:
        Dielectric thickness between line and ground plane, micrometres.
    eps_r:
        Relative permittivity of the dielectric.
    metal_conductivity:
        Conductor conductivity in S/m.
    metal_thickness:
        Conductor thickness in micrometres.
    loss_tangent:
        Dielectric loss tangent.
    """

    width: float
    height: float
    eps_r: float = 4.0
    metal_conductivity: float = 3.0e7
    metal_thickness: float = 3.0
    loss_tangent: float = 0.004

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise RFError("microstrip width and height must be positive")
        if self.eps_r < 1.0:
            raise RFError("relative permittivity must be >= 1")
        if self.metal_conductivity <= 0 or self.metal_thickness <= 0:
            raise RFError("metal parameters must be positive")
        if self.loss_tangent < 0:
            raise RFError("loss tangent must be non-negative")

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #

    @staticmethod
    def from_technology(technology: Technology, width: float | None = None) -> "MicrostripLine":
        """Build the line model from a :class:`Technology` description."""
        return MicrostripLine(
            width=width if width is not None else technology.microstrip_width,
            height=technology.ground_plane_distance,
            eps_r=technology.substrate_permittivity,
            metal_conductivity=technology.metal_conductivity,
            metal_thickness=technology.metal_thickness,
            loss_tangent=technology.loss_tangent,
        )

    # ------------------------------------------------------------------ #
    # quasi-static parameters (Hammerstad-Jensen)
    # ------------------------------------------------------------------ #

    @property
    def width_to_height(self) -> float:
        return self.width / self.height

    @cached_property
    def effective_permittivity(self) -> float:
        """Quasi-static effective permittivity ε_eff (computed once)."""
        u = self.width_to_height
        a = 1.0 + (1.0 / 49.0) * math.log(
            (u**4 + (u / 52.0) ** 2) / (u**4 + 0.432)
        ) + (1.0 / 18.7) * math.log(1.0 + (u / 18.1) ** 3)
        b = 0.564 * ((self.eps_r - 0.9) / (self.eps_r + 3.0)) ** 0.053
        return (self.eps_r + 1.0) / 2.0 + (self.eps_r - 1.0) / 2.0 * (
            1.0 + 10.0 / u
        ) ** (-a * b)

    @cached_property
    def characteristic_impedance(self) -> float:
        """Characteristic impedance Z0 in Ohms (computed once)."""
        u = self.width_to_height
        f_u = 6.0 + (2.0 * math.pi - 6.0) * math.exp(-((30.666 / u) ** 0.7528))
        z0_air = ETA_0 / (2.0 * math.pi) * math.log(
            f_u / u + math.sqrt(1.0 + (2.0 / u) ** 2)
        )
        return z0_air / math.sqrt(self.effective_permittivity)

    # ------------------------------------------------------------------ #
    # frequency-dependent propagation (memoised per frequency grid)
    # ------------------------------------------------------------------ #

    def _as_frequencies(self, frequencies: Iterable[float]) -> np.ndarray:
        freq = np.asarray(
            list(frequencies)
            if not isinstance(frequencies, np.ndarray)
            else frequencies,
            dtype=float,
        )
        if np.any(freq <= 0):
            raise RFError("frequencies must be positive")
        return freq

    def _freq_cache(self) -> Dict[Tuple[str, bytes], np.ndarray]:
        # The instance __dict__ is writable even on a frozen dataclass, which
        # is exactly how cached_property stores its result too.
        return self.__dict__.setdefault("_freq_memo", {})

    def _memoised(self, kind: str, freq: np.ndarray, compute) -> np.ndarray:
        cache = self._freq_cache()
        key = (kind, freq.tobytes())
        hit = cache.get(key)
        if hit is None:
            hit = compute(freq)
            hit.setflags(write=False)
            cache[key] = hit
        return hit

    def phase_constant(self, frequencies: Iterable[float]) -> np.ndarray:
        """β(f) in radians per metre."""
        freq = self._as_frequencies(frequencies)
        return self._memoised(
            "beta",
            freq,
            lambda f: 2.0
            * np.pi
            * f
            * math.sqrt(self.effective_permittivity)
            / SPEED_OF_LIGHT,
        )

    def conductor_loss(self, frequencies: Iterable[float]) -> np.ndarray:
        """α_c(f) in Nepers per metre (skin-effect surface resistance model)."""
        freq = self._as_frequencies(frequencies)

        def compute(f: np.ndarray) -> np.ndarray:
            surface_resistance = np.sqrt(np.pi * f * MU_0 / self.metal_conductivity)
            width_m = microns_to_meters(self.width)
            return surface_resistance / (self.characteristic_impedance * width_m)

        return self._memoised("alpha_c", freq, compute)

    def dielectric_loss(self, frequencies: Iterable[float]) -> np.ndarray:
        """α_d(f) in Nepers per metre."""
        freq = self._as_frequencies(frequencies)

        def compute(f: np.ndarray) -> np.ndarray:
            eps_eff = self.effective_permittivity
            eps_r = self.eps_r
            k0 = 2.0 * np.pi * f / SPEED_OF_LIGHT
            filling = (
                (eps_r * (eps_eff - 1.0)) / (math.sqrt(eps_eff) * (eps_r - 1.0))
                if eps_r > 1.0
                else math.sqrt(eps_eff)
            )
            return k0 * filling * self.loss_tangent / 2.0

        return self._memoised("alpha_d", freq, compute)

    def attenuation(self, frequencies: Iterable[float]) -> np.ndarray:
        """Total attenuation α(f) = α_c + α_d in Nepers per metre."""
        freq = self._as_frequencies(frequencies)
        return self._memoised(
            "alpha",
            freq,
            lambda f: self.conductor_loss(f) + self.dielectric_loss(f),
        )

    def propagation_constant(self, frequencies: Iterable[float]) -> np.ndarray:
        """Complex γ(f) = α + jβ per metre."""
        freq = self._as_frequencies(frequencies)
        return self._memoised(
            "gamma",
            freq,
            lambda f: self.attenuation(f) + 1j * self.phase_constant(f),
        )

    # ------------------------------------------------------------------ #
    # derived helpers
    # ------------------------------------------------------------------ #

    def guided_wavelength(self, frequency_hz: float) -> float:
        """Guided wavelength at ``frequency_hz`` in metres."""
        if frequency_hz <= 0:
            raise RFError("frequency must be positive")
        return SPEED_OF_LIGHT / (frequency_hz * math.sqrt(self.effective_permittivity))

    def electrical_length_deg(self, length_um: float, frequency_hz: float) -> float:
        """Electrical length of a physical line in degrees at one frequency."""
        beta = float(self.phase_constant(np.array([frequency_hz]))[0])
        return math.degrees(beta * microns_to_meters(length_um))

    def length_for_electrical_degrees(self, degrees: float, frequency_hz: float) -> float:
        """Physical length (µm) that gives an electrical length of ``degrees``."""
        beta = float(self.phase_constant(np.array([frequency_hz]))[0])
        return math.radians(degrees) / beta / microns_to_meters(1.0)

    def loss_db_per_mm(self, frequency_hz: float) -> float:
        """Attenuation in dB per millimetre at one frequency."""
        alpha = float(self.attenuation(np.array([frequency_hz]))[0])
        return 20.0 * math.log10(math.e) * alpha * 1.0e-3
