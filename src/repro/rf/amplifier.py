"""Assembling amplifier S-parameter models from a netlist and its layout.

This is the module that turns a *layout* into the RF numbers Figure 11
reports.  A circuit's RF behaviour is described by a :class:`SignalChain`:
the ordered sequence of elements the signal traverses from the input pad to
the output pad — series microstrips, shunt matching stubs, DC-block
capacitors and transistor gain stages.  The chain is defined once per
benchmark circuit (in :mod:`repro.circuits`) against *net and device names*;
the electrical lengths are then taken either from the circuit's target
lengths (the "as designed" reference) or from an actual routed layout, in
which case

* every series/stub microstrip uses its **routed geometric length**, and
* every bend on a routed microstrip inserts a **mitred-bend discontinuity
  two-port**,

so a layout with exact lengths and few bends reproduces the designed
response, while length errors detune the matching networks and extra bends
add loss — precisely the mechanism by which the paper's P-ILP layouts beat
the manual ones in Figure 11.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import RFError
from repro.circuit.device import Device, DeviceType
from repro.circuit.netlist import Netlist
from repro.layout.layout import Layout
from repro.rf.discontinuity import bend_two_port
from repro.rf.elements import (
    microstrip_section,
    open_stub,
    pad_shunt,
    series_capacitor,
    series_inductor,
    series_resistor,
    transistor_stage,
)
from repro.rf.microstrip import MicrostripLine
from repro.rf.network import SParameters, TwoPortNetwork

#: Element kinds a signal chain may contain.
ELEMENT_KINDS = ("line", "stub", "device")


@dataclass(frozen=True)
class ChainElement:
    """One element of a signal chain.

    ``kind`` is ``"line"`` (series microstrip, referenced by net name),
    ``"stub"`` (shunt open stub, referenced by net name) or ``"device"``
    (referenced by device name).
    """

    kind: str
    name: str

    def __post_init__(self) -> None:
        if self.kind not in ELEMENT_KINDS:
            raise RFError(f"unknown chain element kind {self.kind!r}")
        if not self.name:
            raise RFError("chain element must reference a net or device name")


@dataclass(frozen=True)
class SignalChain:
    """The RF signal path of a circuit, from input port to output port."""

    circuit: str
    elements: Tuple[ChainElement, ...]

    def __init__(self, circuit: str, elements: Sequence[ChainElement]) -> None:
        if not elements:
            raise RFError("a signal chain needs at least one element")
        object.__setattr__(self, "circuit", circuit)
        object.__setattr__(self, "elements", tuple(elements))

    @staticmethod
    def from_shorthand(circuit: str, spec: Sequence[Tuple[str, str]]) -> "SignalChain":
        """Build a chain from ``[("line", "ms1"), ("device", "M1"), ...]``."""
        return SignalChain(circuit, [ChainElement(kind, name) for kind, name in spec])

    def net_names(self) -> List[str]:
        return [element.name for element in self.elements if element.kind in ("line", "stub")]

    def device_names(self) -> List[str]:
        return [element.name for element in self.elements if element.kind == "device"]


class AmplifierModel:
    """Builds S-parameters for a circuit given a signal chain.

    Parameters
    ----------
    netlist:
        The circuit (provides target lengths, device parameters, technology).
    chain:
        The RF signal path.
    reference_impedance:
        Port impedance for the S-parameter conversion.
    """

    def __init__(
        self,
        netlist: Netlist,
        chain: SignalChain,
        reference_impedance: float = 50.0,
    ) -> None:
        if reference_impedance <= 0:
            raise RFError("reference impedance must be positive")
        self.netlist = netlist
        self.chain = chain
        self.z0 = reference_impedance
        # Per-net line models and per-(line, sweep) bend discontinuities are
        # cached: every layout candidate of a benchmark re-evaluates the same
        # handful of cross-sections over the same frequency grid.
        self._line_models: dict = {}
        self._bend_networks: dict = {}
        self._validate()

    def _validate(self) -> None:
        for element in self.chain.elements:
            if element.kind in ("line", "stub"):
                if element.name not in self.netlist.microstrip_names:
                    raise RFError(
                        f"signal chain references unknown microstrip {element.name!r}"
                    )
            else:
                if not self.netlist.has_device(element.name):
                    raise RFError(
                        f"signal chain references unknown device {element.name!r}"
                    )

    # ------------------------------------------------------------------ #

    def _line_model(self, net_name: str) -> MicrostripLine:
        model = self._line_models.get(net_name)
        if model is None:
            width = self.netlist.microstrip_width(net_name)
            model = MicrostripLine.from_technology(self.netlist.technology, width=width)
            self._line_models[net_name] = model
        return model

    def _bend_network(
        self, line: MicrostripLine, frequencies: np.ndarray
    ) -> TwoPortNetwork:
        key = (line, frequencies.tobytes())
        network = self._bend_networks.get(key)
        if network is None:
            network = bend_two_port(line, frequencies, mitred=True)
            self._bend_networks[key] = network
        return network

    def _net_geometry(
        self, net_name: str, layout: Optional[Layout]
    ) -> Tuple[float, int]:
        """Return ``(length_um, bend_count)`` for a net.

        Without a layout the circuit's designed (target) length with zero
        bends is used — the "as designed" reference response.
        """
        net = self.netlist.microstrip(net_name)
        if layout is None or not layout.has_route(net_name):
            return net.target_length, 0
        route = layout.route(net_name)
        return route.geometric_length, route.bend_count

    def _element_network(
        self,
        element: ChainElement,
        frequencies: np.ndarray,
        layout: Optional[Layout],
    ) -> TwoPortNetwork:
        if element.kind == "line":
            line = self._line_model(element.name)
            length, bends = self._net_geometry(element.name, layout)
            network = microstrip_section(line, length, frequencies)
            if bends:
                bend = self._bend_network(line, frequencies)
                for _ in range(bends):
                    network = network @ bend
            return network
        if element.kind == "stub":
            line = self._line_model(element.name)
            length, bends = self._net_geometry(element.name, layout)
            # A stub's electrical length is its equivalent length; its bends
            # additionally show up as a (small) shunt loss via the bend model
            # cascaded into the series path.
            delta = self.netlist.technology.bend_compensation
            equivalent = max(length + bends * delta, 0.0)
            network = open_stub(line, equivalent, frequencies)
            if bends:
                bend = self._bend_network(line, frequencies)
                for _ in range(bends):
                    network = network @ bend
            return network
        return self._device_network(element.name, frequencies)

    def _device_network(self, device_name: str, frequencies: np.ndarray) -> TwoPortNetwork:
        device = self.netlist.device(device_name)
        params = dict(device.parameters)
        if device.device_type is DeviceType.TRANSISTOR:
            return transistor_stage(
                frequencies,
                gm_siemens=params.get("gm_ms", 40.0) * 1.0e-3,
                cgs_farad=params.get("cgs_ff", 18.0) * 1.0e-15,
                cds_farad=params.get("cds_ff", 8.0) * 1.0e-15,
                rds_ohm=params.get("rds_ohm", 260.0),
            )
        if device.device_type is DeviceType.CAPACITOR:
            return series_capacitor(params.get("c_ff", 60.0) * 1.0e-15, frequencies)
        if device.device_type is DeviceType.INDUCTOR:
            return series_inductor(params.get("l_ph", 120.0) * 1.0e-12, frequencies)
        if device.device_type is DeviceType.RESISTOR:
            return series_resistor(params.get("r_ohm", 1000.0), frequencies)
        if device.device_type.is_pad:
            return pad_shunt(frequencies, params.get("c_pad_ff", 12.0) * 1.0e-15)
        return TwoPortNetwork.identity(frequencies)

    # ------------------------------------------------------------------ #

    def network(
        self, frequencies: Iterable[float], layout: Optional[Layout] = None
    ) -> TwoPortNetwork:
        """Cascade the whole chain into a single two-port."""
        freq = np.asarray(
            list(frequencies) if not isinstance(frequencies, np.ndarray) else frequencies,
            dtype=float,
        )
        networks = [
            self._element_network(element, freq, layout)
            for element in self.chain.elements
        ]
        return TwoPortNetwork.chain(networks)

    def simulate(
        self, frequencies: Iterable[float], layout: Optional[Layout] = None
    ) -> SParameters:
        """S-parameters of the chain (designed lengths or a routed layout)."""
        return self.network(frequencies, layout).to_sparameters(self.z0)

    def gain_at(
        self, frequency_hz: float, layout: Optional[Layout] = None, span: float = 0.2
    ) -> float:
        """|S21| in dB at the operating frequency (Figure 11's headline number)."""
        frequencies = np.linspace(
            frequency_hz * (1.0 - span), frequency_hz * (1.0 + span), 41
        )
        return self.simulate(frequencies, layout).gain_db(frequency_hz)


def default_frequency_sweep(
    operating_frequency_ghz: float, points: int = 121, relative_span: float = 0.45
) -> np.ndarray:
    """A frequency grid centred on the operating frequency (Hz).

    Figure 11 sweeps roughly +/-40% around the operating frequencies of the
    two circuits; the default span mirrors that.
    """
    if operating_frequency_ghz <= 0:
        raise RFError("operating frequency must be positive")
    if points < 2:
        raise RFError("a sweep needs at least two points")
    centre = operating_frequency_ghz * 1.0e9
    return np.linspace(centre * (1.0 - relative_span), centre * (1.0 + relative_span), points)
