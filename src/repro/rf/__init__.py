"""RF simulation substrate (stands in for the paper's ADS simulations)."""

from repro.rf.network import (
    SParameters,
    TwoPortNetwork,
    open_stub_admittance,
    short_stub_admittance,
)
from repro.rf.microstrip import MicrostripLine
from repro.rf.discontinuity import (
    BendModel,
    bend_two_port,
    delta_versus_frequency,
    extract_delta,
    mitred_bend,
    right_angle_bend,
)
from repro.rf.elements import (
    attenuator,
    microstrip_section,
    open_stub,
    pad_shunt,
    series_capacitor,
    series_inductor,
    series_resistor,
    shunt_capacitor,
    transistor_stage,
)
from repro.rf.amplifier import (
    AmplifierModel,
    ChainElement,
    SignalChain,
    default_frequency_sweep,
)

__all__ = [
    "TwoPortNetwork",
    "SParameters",
    "open_stub_admittance",
    "short_stub_admittance",
    "MicrostripLine",
    "BendModel",
    "right_angle_bend",
    "mitred_bend",
    "bend_two_port",
    "extract_delta",
    "delta_versus_frequency",
    "microstrip_section",
    "open_stub",
    "series_capacitor",
    "shunt_capacitor",
    "series_inductor",
    "series_resistor",
    "transistor_stage",
    "pad_shunt",
    "attenuator",
    "AmplifierModel",
    "SignalChain",
    "ChainElement",
    "default_frequency_sweep",
]
