"""Two-port network algebra: ABCD matrices, cascading and S-parameters.

This module is the numerical backbone of the RF substrate that stands in for
the paper's ADS simulations.  Everything is vectorised over frequency: a
:class:`TwoPortNetwork` stores one complex ABCD matrix per frequency point,
cascades via matrix multiplication, and converts to S-parameters against a
real reference impedance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.errors import RFError


def _as_frequency_array(frequencies: Iterable[float]) -> np.ndarray:
    freq = np.asarray(list(frequencies) if not isinstance(frequencies, np.ndarray) else frequencies, dtype=float)
    if freq.ndim != 1 or freq.size == 0:
        raise RFError("frequencies must be a non-empty 1-D array")
    if np.any(freq <= 0):
        raise RFError("frequencies must be positive")
    return freq


@dataclass(frozen=True)
class SParameters:
    """Two-port scattering parameters over a frequency sweep.

    Attributes
    ----------
    frequencies:
        Frequency points in Hz.
    s11, s12, s21, s22:
        Complex S-parameters, one entry per frequency point.
    z0:
        Real reference impedance in Ohms.
    """

    frequencies: np.ndarray
    s11: np.ndarray
    s12: np.ndarray
    s21: np.ndarray
    s22: np.ndarray
    z0: float = 50.0

    def __post_init__(self) -> None:
        n = self.frequencies.size
        for name in ("s11", "s12", "s21", "s22"):
            if getattr(self, name).shape != (n,):
                raise RFError(f"{name} must have the same shape as frequencies")

    # -- dB views ----------------------------------------------------------- #

    @staticmethod
    def _db(values: np.ndarray) -> np.ndarray:
        magnitude = np.abs(values)
        with np.errstate(divide="ignore"):
            return 20.0 * np.log10(magnitude)

    @property
    def s11_db(self) -> np.ndarray:
        return self._db(self.s11)

    @property
    def s21_db(self) -> np.ndarray:
        return self._db(self.s21)

    @property
    def s12_db(self) -> np.ndarray:
        return self._db(self.s12)

    @property
    def s22_db(self) -> np.ndarray:
        return self._db(self.s22)

    # -- scalar figures of merit --------------------------------------------- #

    def at(self, frequency_hz: float) -> dict:
        """Interpolated S-parameters (dB) at one frequency."""
        if not (self.frequencies[0] <= frequency_hz <= self.frequencies[-1]):
            raise RFError(
                f"frequency {frequency_hz:.3e} Hz outside the swept range "
                f"[{self.frequencies[0]:.3e}, {self.frequencies[-1]:.3e}]"
            )
        return {
            "frequency_hz": frequency_hz,
            "s11_db": float(np.interp(frequency_hz, self.frequencies, self.s11_db)),
            "s21_db": float(np.interp(frequency_hz, self.frequencies, self.s21_db)),
            "s12_db": float(np.interp(frequency_hz, self.frequencies, self.s12_db)),
            "s22_db": float(np.interp(frequency_hz, self.frequencies, self.s22_db)),
        }

    def gain_db(self, frequency_hz: float) -> float:
        """|S21| in dB at a frequency (the paper's headline metric)."""
        return self.at(frequency_hz)["s21_db"]

    def input_return_loss_db(self, frequency_hz: float) -> float:
        """|S11| in dB at a frequency (more negative is better)."""
        return self.at(frequency_hz)["s11_db"]

    def output_return_loss_db(self, frequency_hz: float) -> float:
        """|S22| in dB at a frequency (more negative is better)."""
        return self.at(frequency_hz)["s22_db"]

    def peak_gain(self) -> tuple[float, float]:
        """Return ``(frequency_hz, gain_db)`` of the S21 maximum."""
        index = int(np.argmax(self.s21_db))
        return float(self.frequencies[index]), float(self.s21_db[index])

    def as_dict(self) -> dict:
        """JSON-friendly representation (dB magnitudes only)."""
        return {
            "frequencies_ghz": (self.frequencies / 1e9).tolist(),
            "s11_db": self.s11_db.tolist(),
            "s21_db": self.s21_db.tolist(),
            "s12_db": self.s12_db.tolist(),
            "s22_db": self.s22_db.tolist(),
            "z0_ohm": self.z0,
        }


class TwoPortNetwork:
    """A reciprocal-or-not two-port described by per-frequency ABCD matrices."""

    def __init__(self, frequencies: Iterable[float], abcd: np.ndarray) -> None:
        self.frequencies = _as_frequency_array(frequencies)
        abcd = np.asarray(abcd, dtype=complex)
        expected = (self.frequencies.size, 2, 2)
        if abcd.shape != expected:
            raise RFError(f"abcd must have shape {expected}, got {abcd.shape}")
        self.abcd = abcd

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #

    @staticmethod
    def identity(frequencies: Iterable[float]) -> "TwoPortNetwork":
        """A through connection (unit ABCD matrix at every frequency)."""
        freq = _as_frequency_array(frequencies)
        abcd = np.tile(np.eye(2, dtype=complex), (freq.size, 1, 1))
        return TwoPortNetwork(freq, abcd)

    @staticmethod
    def from_series_impedance(
        frequencies: Iterable[float], impedance: np.ndarray | complex
    ) -> "TwoPortNetwork":
        """A series element:  [[1, Z], [0, 1]]."""
        freq = _as_frequency_array(frequencies)
        z = np.broadcast_to(np.asarray(impedance, dtype=complex), freq.shape).copy()
        abcd = np.zeros((freq.size, 2, 2), dtype=complex)
        abcd[:, 0, 0] = 1.0
        abcd[:, 0, 1] = z
        abcd[:, 1, 0] = 0.0
        abcd[:, 1, 1] = 1.0
        return TwoPortNetwork(freq, abcd)

    @staticmethod
    def from_shunt_admittance(
        frequencies: Iterable[float], admittance: np.ndarray | complex
    ) -> "TwoPortNetwork":
        """A shunt element:  [[1, 0], [Y, 1]]."""
        freq = _as_frequency_array(frequencies)
        y = np.broadcast_to(np.asarray(admittance, dtype=complex), freq.shape).copy()
        abcd = np.zeros((freq.size, 2, 2), dtype=complex)
        abcd[:, 0, 0] = 1.0
        abcd[:, 0, 1] = 0.0
        abcd[:, 1, 0] = y
        abcd[:, 1, 1] = 1.0
        return TwoPortNetwork(freq, abcd)

    @staticmethod
    def from_transmission_line(
        frequencies: Iterable[float],
        gamma: np.ndarray,
        z0: np.ndarray | complex,
        length_m: float,
    ) -> "TwoPortNetwork":
        """A transmission-line section of physical length ``length_m``.

        ``gamma`` is the complex propagation constant per metre and ``z0`` the
        characteristic impedance, both per frequency point.
        """
        freq = _as_frequency_array(frequencies)
        if length_m < 0:
            raise RFError(f"line length must be non-negative, got {length_m}")
        gamma = np.broadcast_to(np.asarray(gamma, dtype=complex), freq.shape)
        z0 = np.broadcast_to(np.asarray(z0, dtype=complex), freq.shape)
        gl = gamma * length_m
        cosh = np.cosh(gl)
        sinh = np.sinh(gl)
        abcd = np.zeros((freq.size, 2, 2), dtype=complex)
        abcd[:, 0, 0] = cosh
        abcd[:, 0, 1] = z0 * sinh
        abcd[:, 1, 0] = sinh / z0
        abcd[:, 1, 1] = cosh
        return TwoPortNetwork(freq, abcd)

    @staticmethod
    def from_voltage_controlled_source(
        frequencies: Iterable[float],
        gm_siemens: np.ndarray | float,
        input_admittance: np.ndarray | complex,
        output_admittance: np.ndarray | complex,
    ) -> "TwoPortNetwork":
        """A unilateral transconductance stage (simple FET small-signal model).

        The Y-matrix is ``[[Y_in, 0], [gm, Y_out]]``; converted to ABCD.  Used
        by the amplifier models: the stage inverts and amplifies with gain
        ``-gm / Y_out`` when unloaded.
        """
        freq = _as_frequency_array(frequencies)
        gm = np.broadcast_to(np.asarray(gm_siemens, dtype=complex), freq.shape)
        y_in = np.broadcast_to(np.asarray(input_admittance, dtype=complex), freq.shape)
        y_out = np.broadcast_to(np.asarray(output_admittance, dtype=complex), freq.shape)
        y21 = gm
        y11, y12, y22 = y_in, np.zeros_like(gm), y_out
        # Y to ABCD (y21 must be non-zero, which gm guarantees).
        if np.any(np.abs(y21) < 1e-18):
            raise RFError("transconductance must be non-zero for a gain stage")
        abcd = np.zeros((freq.size, 2, 2), dtype=complex)
        abcd[:, 0, 0] = -y22 / y21
        abcd[:, 0, 1] = -1.0 / y21
        abcd[:, 1, 0] = -(y11 * y22 - y12 * y21) / y21
        abcd[:, 1, 1] = -y11 / y21
        return TwoPortNetwork(freq, abcd)

    # ------------------------------------------------------------------ #
    # composition
    # ------------------------------------------------------------------ #

    def cascade(self, other: "TwoPortNetwork") -> "TwoPortNetwork":
        """Cascade ``self`` followed by ``other`` (ABCD matrix product)."""
        self._check_compatible(other)
        return TwoPortNetwork(self.frequencies, np.matmul(self.abcd, other.abcd))

    def __matmul__(self, other: "TwoPortNetwork") -> "TwoPortNetwork":
        return self.cascade(other)

    @staticmethod
    def chain(networks: Sequence["TwoPortNetwork"]) -> "TwoPortNetwork":
        """Cascade a sequence of networks in order."""
        if not networks:
            raise RFError("cannot chain an empty sequence of networks")
        result = networks[0]
        for network in networks[1:]:
            result = result.cascade(network)
        return result

    def _check_compatible(self, other: "TwoPortNetwork") -> None:
        if self.frequencies.shape != other.frequencies.shape or not np.allclose(
            self.frequencies, other.frequencies
        ):
            raise RFError("cannot combine networks defined on different frequency grids")

    # ------------------------------------------------------------------ #
    # conversions
    # ------------------------------------------------------------------ #

    def to_sparameters(self, z0: float = 50.0) -> SParameters:
        """Convert to S-parameters against a real reference impedance."""
        if z0 <= 0:
            raise RFError(f"reference impedance must be positive, got {z0}")
        a = self.abcd[:, 0, 0]
        b = self.abcd[:, 0, 1]
        c = self.abcd[:, 1, 0]
        d = self.abcd[:, 1, 1]
        denom = a + b / z0 + c * z0 + d
        if np.any(np.abs(denom) < 1e-30):
            raise RFError("singular ABCD matrix: cannot convert to S-parameters")
        s11 = (a + b / z0 - c * z0 - d) / denom
        s12 = 2.0 * (a * d - b * c) / denom
        s21 = 2.0 / denom
        s22 = (-a + b / z0 - c * z0 + d) / denom
        return SParameters(self.frequencies, s11, s12, s21, s22, z0)

    def input_impedance(self, load_impedance: complex = 50.0) -> np.ndarray:
        """Input impedance when port 2 is terminated with ``load_impedance``."""
        a = self.abcd[:, 0, 0]
        b = self.abcd[:, 0, 1]
        c = self.abcd[:, 1, 0]
        d = self.abcd[:, 1, 1]
        zl = complex(load_impedance)
        return (a * zl + b) / (c * zl + d)

    def voltage_gain(self, load_impedance: complex = 50.0) -> np.ndarray:
        """V2 / V1 when port 2 is terminated with ``load_impedance``."""
        a = self.abcd[:, 0, 0]
        b = self.abcd[:, 0, 1]
        zl = complex(load_impedance)
        return zl / (a * zl + b)


def open_stub_admittance(
    gamma: np.ndarray, z0: np.ndarray | complex, length_m: float
) -> np.ndarray:
    """Input admittance of an open-circuited stub of the given length."""
    if length_m < 0:
        raise RFError(f"stub length must be non-negative, got {length_m}")
    z0 = np.asarray(z0, dtype=complex)
    return np.tanh(np.asarray(gamma, dtype=complex) * length_m) / z0


def short_stub_admittance(
    gamma: np.ndarray, z0: np.ndarray | complex, length_m: float
) -> np.ndarray:
    """Input admittance of a short-circuited stub of the given length."""
    if length_m < 0:
        raise RFError(f"stub length must be non-negative, got {length_m}")
    z0 = np.asarray(z0, dtype=complex)
    gl = np.asarray(gamma, dtype=complex) * length_m
    return 1.0 / (z0 * np.tanh(gl))
