"""Two-port element factories: lines, lumped elements and gain stages.

The amplifier models in :mod:`repro.rf.amplifier` are assembled from these
building blocks.  Everything returns a :class:`TwoPortNetwork` on a given
frequency grid so the blocks compose by cascading.
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from repro.errors import RFError
from repro.rf.microstrip import MicrostripLine
from repro.rf.network import TwoPortNetwork, open_stub_admittance
from repro.units import microns_to_meters


def _freq_array(frequencies: Iterable[float]) -> np.ndarray:
    freq = np.asarray(
        list(frequencies) if not isinstance(frequencies, np.ndarray) else frequencies,
        dtype=float,
    )
    if freq.ndim != 1 or freq.size == 0 or np.any(freq <= 0):
        raise RFError("frequencies must be a non-empty 1-D array of positive values")
    return freq


def microstrip_section(
    line: MicrostripLine, length_um: float, frequencies: Iterable[float]
) -> TwoPortNetwork:
    """A series microstrip section of the given physical length."""
    freq = _freq_array(frequencies)
    if length_um < 0:
        raise RFError(f"line length must be non-negative, got {length_um}")
    gamma = line.propagation_constant(freq)
    z0 = np.full(freq.shape, line.characteristic_impedance, dtype=complex)
    return TwoPortNetwork.from_transmission_line(
        freq, gamma, z0, microns_to_meters(length_um)
    )


def open_stub(
    line: MicrostripLine, length_um: float, frequencies: Iterable[float]
) -> TwoPortNetwork:
    """A shunt open-circuited stub of the given length (matching element)."""
    freq = _freq_array(frequencies)
    if length_um < 0:
        raise RFError(f"stub length must be non-negative, got {length_um}")
    gamma = line.propagation_constant(freq)
    z0 = np.full(freq.shape, line.characteristic_impedance, dtype=complex)
    admittance = open_stub_admittance(gamma, z0, microns_to_meters(length_um))
    return TwoPortNetwork.from_shunt_admittance(freq, admittance)


def series_capacitor(c_farad: float, frequencies: Iterable[float]) -> TwoPortNetwork:
    """A series capacitor (e.g. a MIM DC-block)."""
    freq = _freq_array(frequencies)
    if c_farad <= 0:
        raise RFError(f"capacitance must be positive, got {c_farad}")
    omega = 2.0 * np.pi * freq
    return TwoPortNetwork.from_series_impedance(freq, 1.0 / (1j * omega * c_farad))


def shunt_capacitor(c_farad: float, frequencies: Iterable[float]) -> TwoPortNetwork:
    """A shunt capacitor (e.g. a supply decoupling MIM)."""
    freq = _freq_array(frequencies)
    if c_farad <= 0:
        raise RFError(f"capacitance must be positive, got {c_farad}")
    omega = 2.0 * np.pi * freq
    return TwoPortNetwork.from_shunt_admittance(freq, 1j * omega * c_farad)


def series_inductor(l_henry: float, frequencies: Iterable[float]) -> TwoPortNetwork:
    """A series inductor."""
    freq = _freq_array(frequencies)
    if l_henry <= 0:
        raise RFError(f"inductance must be positive, got {l_henry}")
    omega = 2.0 * np.pi * freq
    return TwoPortNetwork.from_series_impedance(freq, 1j * omega * l_henry)


def series_resistor(r_ohm: float, frequencies: Iterable[float]) -> TwoPortNetwork:
    """A series resistor."""
    freq = _freq_array(frequencies)
    if r_ohm < 0:
        raise RFError(f"resistance must be non-negative, got {r_ohm}")
    return TwoPortNetwork.from_series_impedance(freq, complex(r_ohm))


def transistor_stage(
    frequencies: Iterable[float],
    gm_siemens: float = 0.045,
    cgs_farad: float = 18.0e-15,
    cds_farad: float = 8.0e-15,
    rds_ohm: float = 260.0,
    rg_ohm: float = 4.0,
) -> TwoPortNetwork:
    """A unilateral common-source (or cascode) gain stage.

    The model is the standard simplified FET small-signal network: a gate
    resistance in series with C_gs at the input, a transconductance ``gm``
    and an output formed by r_ds in parallel with C_ds.  Cascode stages are
    represented by the same topology with a higher effective r_ds (their
    defining property at these frequencies).
    """
    freq = _freq_array(frequencies)
    if gm_siemens <= 0:
        raise RFError("gm must be positive")
    if cgs_farad <= 0 or cds_farad <= 0 or rds_ohm <= 0:
        raise RFError("transistor parasitics must be positive")
    omega = 2.0 * np.pi * freq
    input_admittance = (1j * omega * cgs_farad) / (
        1.0 + 1j * omega * cgs_farad * rg_ohm
    )
    output_admittance = 1.0 / rds_ohm + 1j * omega * cds_farad
    return TwoPortNetwork.from_voltage_controlled_source(
        freq, gm_siemens, input_admittance, output_admittance
    )


def pad_shunt(
    frequencies: Iterable[float], c_farad: float = 12.0e-15
) -> TwoPortNetwork:
    """The shunt parasitic capacitance of an RF pad."""
    return shunt_capacitor(c_farad, frequencies)


def attenuator(
    frequencies: Iterable[float], loss_db: float
) -> TwoPortNetwork:
    """A frequency-flat matched attenuator (used for loss budgeting tests)."""
    freq = _freq_array(frequencies)
    if loss_db < 0:
        raise RFError("attenuation must be non-negative")
    amplitude = 10.0 ** (-loss_db / 20.0)
    # A matched attenuator's ABCD for Z0 = 50 ohm.
    z0 = 50.0
    k = amplitude
    abcd = np.zeros((freq.size, 2, 2), dtype=complex)
    abcd[:, 0, 0] = (1.0 + k**2) / (2.0 * k)
    abcd[:, 0, 1] = z0 * (1.0 - k**2) / (2.0 * k)
    abcd[:, 1, 0] = (1.0 - k**2) / (2.0 * k * z0)
    abcd[:, 1, 1] = (1.0 + k**2) / (2.0 * k)
    return TwoPortNetwork(freq, abcd)
