"""Bend discontinuity models and extraction of the compensation length δ.

Section 2.2 of the paper: every remaining 90° bend is smoothed into a
diagonal (mitred) shortcut, and its electrical behaviour is folded into an
*equivalent length* ``l_eq = l_v + l_h + δ`` where ``δ`` comes from RF
simulation of the bend.  This module provides

* a lumped L-C model of a right-angle and of a mitred microstrip bend
  (standard closed-form excess-capacitance / inductance expressions),
* a two-port for the bend that the amplifier models insert per bend, so more
  bends mean more loss and extra phase,
* :func:`extract_delta`, which plays the role of the paper's "RF simulation
  of the diagonal bend": it compares the transmission phase of the mitred
  bend against a straight through-line and converts the difference into the
  equivalent length change δ used by the layout optimiser.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.errors import RFError
from repro.rf.microstrip import MicrostripLine
from repro.rf.network import TwoPortNetwork
from repro.units import microns_to_meters


@dataclass(frozen=True)
class BendModel:
    """Lumped equivalent of a microstrip 90° bend.

    Attributes
    ----------
    excess_capacitance:
        Shunt capacitance at the corner, Farads.
    series_inductance:
        Series inductance of the corner, Henries (split into two halves
        around the shunt capacitance: an L-C-L tee).
    mitred:
        Whether the bend is chamfered (diagonal shortcut) or a square corner.
    """

    excess_capacitance: float
    series_inductance: float
    mitred: bool

    def two_port(self, frequencies: Iterable[float]) -> TwoPortNetwork:
        """The bend as an L-C-L tee two-port."""
        freq = np.asarray(list(frequencies) if not isinstance(frequencies, np.ndarray) else frequencies, dtype=float)
        omega = 2.0 * np.pi * freq
        half_l = TwoPortNetwork.from_series_impedance(
            freq, 1j * omega * (self.series_inductance / 2.0)
        )
        shunt_c = TwoPortNetwork.from_shunt_admittance(
            freq, 1j * omega * self.excess_capacitance
        )
        return half_l @ shunt_c @ half_l


def right_angle_bend(line: MicrostripLine) -> BendModel:
    """Closed-form model of an un-mitred 90° bend.

    Uses the standard Kirschning/Jansen-style fitted expressions for the
    excess capacitance and inductance of a square corner in terms of the
    width-to-height ratio and permittivity.
    """
    w_um = line.width
    h_um = line.height
    w = microns_to_meters(w_um)
    ratio = line.width_to_height
    eps_r = line.eps_r
    if ratio >= 1.0:
        cap_pf_per_m = (14.0 * eps_r + 12.5) * ratio - (1.83 * eps_r - 2.25)
        cap_pf_per_m = cap_pf_per_m / math.sqrt(ratio) + 0.02 * eps_r / ratio
    else:
        cap_pf_per_m = (9.5 * eps_r + 1.25) * ratio + 5.2 * eps_r + 7.0
    capacitance = cap_pf_per_m * 1.0e-12 * w

    h = microns_to_meters(h_um)
    inductance_nh_per_m = 100.0 * (4.0 * math.sqrt(ratio) - 4.21)
    inductance = max(inductance_nh_per_m, 0.0) * 1.0e-9 * h
    return BendModel(excess_capacitance=capacitance, series_inductance=inductance, mitred=False)


def mitred_bend(line: MicrostripLine, mitre_fraction: float = 0.6) -> BendModel:
    """Model of a chamfered (diagonal-shortcut) bend.

    Mitring removes corner metal, which cuts the excess capacitance roughly
    in proportion to the chamfer and slightly increases the series
    inductance.  ``mitre_fraction`` is the fraction of the corner diagonal
    that is cut away (~0.6 is the classic optimum mitre).
    """
    if not 0.0 <= mitre_fraction < 1.0:
        raise RFError(f"mitre fraction must lie in [0, 1), got {mitre_fraction}")
    square = right_angle_bend(line)
    capacitance = square.excess_capacitance * (1.0 - 0.75 * mitre_fraction)
    inductance = square.series_inductance * (1.0 + 0.25 * mitre_fraction)
    return BendModel(excess_capacitance=capacitance, series_inductance=inductance, mitred=True)


def bend_two_port(
    line: MicrostripLine, frequencies: Iterable[float], mitred: bool = True
) -> TwoPortNetwork:
    """Convenience wrapper returning the two-port of a (mitred) bend."""
    model = mitred_bend(line) if mitred else right_angle_bend(line)
    return model.two_port(frequencies)


def extract_delta(
    line: MicrostripLine,
    frequency_hz: float,
    mitred: bool = True,
) -> float:
    """Extract the equivalent-length compensation δ of one smoothed bend (µm).

    The procedure mirrors what the paper obtains from RF simulation: the
    transmission phase of the bend discontinuity is compared with the phase
    of a straight line; the phase difference divided by the phase constant β
    gives the *extra* electrical length the bend represents.  A mitred bend's
    phase lead typically makes δ negative by a few micrometres for thin-film
    dimensions — i.e. the smoothed corner is electrically *shorter* than the
    Manhattan corner length — matching the sign convention used by the layout
    model (`Technology.bend_compensation`).
    """
    if frequency_hz <= 0:
        raise RFError("frequency must be positive")
    freq = np.array([frequency_hz], dtype=float)
    bend = bend_two_port(line, freq, mitred=mitred)
    sparams = bend.to_sparameters(z0=line.characteristic_impedance)
    transmission_phase = float(np.angle(sparams.s21[0]))

    # The bend replaces a corner of Manhattan length 2 * (w/2) = w (the two
    # half-widths of line that physically overlap at the corner); the
    # geometric shortcut of the diagonal is part of the layout geometry, so
    # only the residual electrical phase is attributed to δ.
    beta = float(line.phase_constant(freq)[0])
    delta_m = transmission_phase / beta  # phase lead (positive angle) => shorter line
    corner_correction_m = -microns_to_meters(line.width) * (1.0 - (0.5 if mitred else 0.0))
    return (delta_m + corner_correction_m) / microns_to_meters(1.0)


def delta_versus_frequency(
    line: MicrostripLine, frequencies: Iterable[float], mitred: bool = True
) -> np.ndarray:
    """δ extracted at each frequency (µm); used by the δ-extraction benchmark."""
    return np.array([extract_delta(line, float(f), mitred) for f in frequencies])
