"""Technology description: the design rules driving layout generation.

The paper's problem statement (Section 3) fixes, per technology:

* the ground-plane distance ``t`` (about 5 µm in 90 nm CMOS), which sets the
  microstrip-to-anything spacing rule of ``2t``,
* the microstrip width,
* the equivalent-length compensation ``δ`` of a smoothed bend,
* the layout area available for the circuit.

:class:`Technology` bundles these values together with a few parameters used
by the RF substrate (substrate permittivity, metal conductivity) so that the
same object drives both the layout optimiser and the S-parameter simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict

from repro.errors import TechnologyError


@dataclass(frozen=True)
class Technology:
    """Design rules and physical parameters of a thin-film microstrip process.

    Attributes
    ----------
    name:
        Identifier of the process (e.g. ``"cmos90"``).
    ground_plane_distance:
        Dielectric thickness ``t`` between the microstrip metal and the
        Metal-1 ground plane, in micrometres.  The paper quotes ~5 µm for a
        90 nm CMOS back end.
    microstrip_width:
        Default microstrip width in micrometres.
    bend_compensation:
        Equivalent-length change ``δ`` of a smoothed (diagonal) 90° bend in
        micrometres.  Positive values mean the smoothed bend is electrically
        longer than the corner-to-corner Manhattan length.
    spacing_factor:
        The spacing rule expressed as a multiple of ``ground_plane_distance``
        (the paper uses 2: microstrips further apart than ``2t`` do not
        couple appreciably).
    min_segment_length:
        Minimum usable segment length in micrometres; shorter segments are
        treated as degenerate by the routing model.
    substrate_permittivity:
        Relative permittivity of the SiO2 inter-metal dielectric (RF model).
    metal_conductivity:
        Conductivity of the microstrip metal in S/m (RF model).
    metal_thickness:
        Thickness of the top (microstrip) metal in micrometres (RF model).
    loss_tangent:
        Dielectric loss tangent of the SiO2 stack (RF model).
    """

    name: str = "cmos90"
    ground_plane_distance: float = 5.0
    microstrip_width: float = 10.0
    bend_compensation: float = -4.0
    spacing_factor: float = 2.0
    min_segment_length: float = 1.0
    substrate_permittivity: float = 4.0
    metal_conductivity: float = 3.0e7
    metal_thickness: float = 3.0
    loss_tangent: float = 0.004

    def __post_init__(self) -> None:
        if self.ground_plane_distance <= 0:
            raise TechnologyError("ground_plane_distance must be positive")
        if self.microstrip_width <= 0:
            raise TechnologyError("microstrip_width must be positive")
        if self.spacing_factor <= 0:
            raise TechnologyError("spacing_factor must be positive")
        if self.min_segment_length < 0:
            raise TechnologyError("min_segment_length must be non-negative")
        if self.substrate_permittivity < 1.0:
            raise TechnologyError("substrate_permittivity must be >= 1")
        if self.metal_conductivity <= 0:
            raise TechnologyError("metal_conductivity must be positive")
        if self.metal_thickness <= 0:
            raise TechnologyError("metal_thickness must be positive")
        if self.loss_tangent < 0:
            raise TechnologyError("loss_tangent must be non-negative")

    # ------------------------------------------------------------------ #

    @property
    def spacing(self) -> float:
        """Required clear distance between microstrips/devices (``2t``)."""
        return self.spacing_factor * self.ground_plane_distance

    @property
    def clearance(self) -> float:
        """Bounding-box expansion per side.

        Expanding each outline by ``t`` on every side (Figure 2(a)) makes two
        expanded boxes overlap exactly when the original outlines are closer
        than ``2t``, so the spacing rule becomes plain non-overlap.
        """
        return self.spacing / 2.0

    def equivalent_length(self, geometric_length: float, bends: int) -> float:
        """Equivalent electrical length for a path with ``bends`` corners."""
        if bends < 0:
            raise TechnologyError(f"bend count must be non-negative, got {bends}")
        return geometric_length + bends * self.bend_compensation

    def with_updates(self, **changes) -> "Technology":
        """Return a copy with selected fields replaced."""
        return replace(self, **changes)

    def as_dict(self) -> Dict[str, float | str]:
        """Serialise to a plain dictionary (JSON-friendly)."""
        return {
            "name": self.name,
            "ground_plane_distance": self.ground_plane_distance,
            "microstrip_width": self.microstrip_width,
            "bend_compensation": self.bend_compensation,
            "spacing_factor": self.spacing_factor,
            "min_segment_length": self.min_segment_length,
            "substrate_permittivity": self.substrate_permittivity,
            "metal_conductivity": self.metal_conductivity,
            "metal_thickness": self.metal_thickness,
            "loss_tangent": self.loss_tangent,
        }

    @staticmethod
    def from_dict(data: Dict[str, float | str]) -> "Technology":
        """Deserialise from :meth:`as_dict` output."""
        known = {
            "name",
            "ground_plane_distance",
            "microstrip_width",
            "bend_compensation",
            "spacing_factor",
            "min_segment_length",
            "substrate_permittivity",
            "metal_conductivity",
            "metal_thickness",
            "loss_tangent",
        }
        unknown = set(data) - known
        if unknown:
            raise TechnologyError(f"unknown technology fields: {sorted(unknown)}")
        return Technology(**data)  # type: ignore[arg-type]


#: The 90 nm CMOS thin-film microstrip technology the paper's circuits use.
CMOS90 = Technology(name="cmos90")

#: A denser 65 nm-flavoured variant used by some tests and examples to show
#: that the flow is technology-agnostic.
CMOS65 = Technology(
    name="cmos65",
    ground_plane_distance=4.0,
    microstrip_width=8.0,
    bend_compensation=-3.2,
    metal_thickness=2.5,
)


def default_technology() -> Technology:
    """Return the default (90 nm CMOS) technology."""
    return CMOS90
