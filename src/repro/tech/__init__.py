"""Technology / design-rule descriptions."""

from repro.tech.technology import CMOS65, CMOS90, Technology, default_technology
from repro.tech.stackup import MetalLayer, StackUp, default_stackup

__all__ = [
    "Technology",
    "CMOS90",
    "CMOS65",
    "default_technology",
    "MetalLayer",
    "StackUp",
    "default_stackup",
]
