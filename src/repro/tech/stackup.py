"""Metal stack-up description of the thin-film microstrip back end.

Figure 1(a) of the paper shows the cross section this module describes: a
thick silicon substrate, a Metal-1 ground plane, a SiO2 inter-metal dielectric
of thickness ``t`` and the top-metal microstrip.  The stack-up feeds the RF
substrate (characteristic impedance, effective permittivity, loss) and
documents where the layout layers live.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.errors import TechnologyError
from repro.tech.technology import Technology


@dataclass(frozen=True)
class MetalLayer:
    """A single metal layer in the back-end stack.

    Attributes
    ----------
    name:
        Layer name (``"M1"`` ... ``"TM"``).
    thickness:
        Metal thickness in micrometres.
    height_above_substrate:
        Distance from the silicon surface to the bottom of this layer, µm.
    is_ground_plane:
        True for the layer used as the microstrip return path.
    is_microstrip_layer:
        True for the layer microstrips are drawn on.
    """

    name: str
    thickness: float
    height_above_substrate: float
    is_ground_plane: bool = False
    is_microstrip_layer: bool = False

    def __post_init__(self) -> None:
        if self.thickness <= 0:
            raise TechnologyError(f"layer {self.name!r}: thickness must be positive")
        if self.height_above_substrate < 0:
            raise TechnologyError(
                f"layer {self.name!r}: height_above_substrate must be non-negative"
            )


@dataclass(frozen=True)
class StackUp:
    """Ordered list of metal layers plus the dielectric between them.

    The two distinguished layers are the ground plane (Metal 1) and the
    microstrip layer (top metal); the dielectric thickness between them is
    the paper's ``t``.
    """

    layers: tuple
    dielectric_permittivity: float = 4.0
    loss_tangent: float = 0.004

    def __init__(
        self,
        layers: List[MetalLayer],
        dielectric_permittivity: float = 4.0,
        loss_tangent: float = 0.004,
    ) -> None:
        if not layers:
            raise TechnologyError("a stack-up needs at least one metal layer")
        grounds = [layer for layer in layers if layer.is_ground_plane]
        strips = [layer for layer in layers if layer.is_microstrip_layer]
        if len(grounds) != 1:
            raise TechnologyError("exactly one layer must be the ground plane")
        if len(strips) != 1:
            raise TechnologyError("exactly one layer must carry microstrips")
        if dielectric_permittivity < 1.0:
            raise TechnologyError("dielectric permittivity must be >= 1")
        if loss_tangent < 0:
            raise TechnologyError("loss tangent must be non-negative")
        ordered = tuple(sorted(layers, key=lambda layer: layer.height_above_substrate))
        object.__setattr__(self, "layers", ordered)
        object.__setattr__(self, "dielectric_permittivity", float(dielectric_permittivity))
        object.__setattr__(self, "loss_tangent", float(loss_tangent))

    # ------------------------------------------------------------------ #

    @property
    def ground_plane(self) -> MetalLayer:
        """The layer acting as the microstrip return path."""
        return next(layer for layer in self.layers if layer.is_ground_plane)

    @property
    def microstrip_layer(self) -> MetalLayer:
        """The layer microstrips are drawn on."""
        return next(layer for layer in self.layers if layer.is_microstrip_layer)

    @property
    def microstrip_height(self) -> float:
        """Dielectric thickness ``t`` between microstrip and ground, µm."""
        ground = self.ground_plane
        strip = self.microstrip_layer
        height = strip.height_above_substrate - (
            ground.height_above_substrate + ground.thickness
        )
        if height <= 0:
            raise TechnologyError(
                "microstrip layer must lie above the ground plane"
            )
        return height

    def layer_names(self) -> List[str]:
        """Names of all layers from bottom to top."""
        return [layer.name for layer in self.layers]

    def as_dict(self) -> Dict[str, object]:
        """Serialise to a JSON-friendly dictionary."""
        return {
            "dielectric_permittivity": self.dielectric_permittivity,
            "loss_tangent": self.loss_tangent,
            "layers": [
                {
                    "name": layer.name,
                    "thickness": layer.thickness,
                    "height_above_substrate": layer.height_above_substrate,
                    "is_ground_plane": layer.is_ground_plane,
                    "is_microstrip_layer": layer.is_microstrip_layer,
                }
                for layer in self.layers
            ],
        }


def default_stackup(technology: Technology | None = None) -> StackUp:
    """Build the canonical 90 nm thin-film microstrip stack-up.

    The geometry follows Figure 1(a): Metal 1 as the ground plane right above
    the substrate, intermediate routing metals (not used by microstrips) and
    a top metal separated from Metal 1 by the technology's ``t``.
    """
    technology = technology or Technology()
    t = technology.ground_plane_distance
    m1_thickness = 0.3
    layers = [
        MetalLayer("M1", m1_thickness, 0.0, is_ground_plane=True),
        MetalLayer("M2", 0.3, 1.0),
        MetalLayer("M3", 0.3, 2.0),
        MetalLayer("M4", 0.5, 3.0),
        MetalLayer(
            "TM",
            technology.metal_thickness,
            m1_thickness + t,
            is_microstrip_layer=True,
        ),
    ]
    return StackUp(
        layers,
        dielectric_permittivity=technology.substrate_permittivity,
        loss_tangent=technology.loss_tangent,
    )
