"""Phase 1 — planar microstrip routing with blurred devices (Section 5.1).

Devices are removed from the model: each becomes a dimensionless point to
which its microstrips attach directly.  To make room for the devices that
will reappear in Phase 2, every segment's bounding box is expanded by an
extra reservation margin (Figure 8), and every net's length target is grown
by the centre-to-boundary runs that the blurred devices swallow
(equation (23)).  Exact length matching and strict non-overlap are both
relaxed: unmatched length and residual overlap are penalised in the
objective (equation (26)) instead of being enforced, which keeps this first,
globally-unconstrained model solvable.
"""

from __future__ import annotations

import time
from typing import Optional

from typing import Dict, Tuple

from repro.errors import InfeasibleModelError
from repro.circuit.netlist import Netlist
from repro.core.config import PILPConfig
from repro.core.model_builder import BuildOptions, RficModelBuilder
from repro.core.result import PhaseResult
from repro.core.seed import seed_placement, spread_boundary_pads
from repro.core.warm_start import solve_phase_model, warm_start_from_seeds
from repro.core.windows import mean_device_extent, window_around
from repro.geometry.rect import Rect


def run_phase1(
    netlist: Netlist,
    config: Optional[PILPConfig] = None,
) -> PhaseResult:
    """Run Phase 1 and return its result (layout snapshot + diagnostics).

    The returned layout places every device at its blurred point location
    (orientation R0) and routes every microstrip through the configured
    number of chain points.  Residual overlap and length mismatch are
    expected at this stage; Phases 2 and 3 remove them.

    Raises
    ------
    InfeasibleModelError
        If the solver cannot find any feasible Phase-1 solution (this only
        happens when the area is far too small for the netlist).
    """
    config = config or PILPConfig()
    start = time.perf_counter()

    reservation = config.blur_margin_factor * mean_device_extent(netlist)
    # The force-directed seed placement feeds both the guided windows and
    # the warm start; compute it once.
    seeds = None
    if config.guided_phase1 or config.phase1.warm_start:
        seeds = spread_boundary_pads(
            seed_placement(netlist, config.random_seed), netlist
        )
    device_windows, chain_windows = _phase1_windows(netlist, config, seeds)
    options = BuildOptions(
        blurred_devices=True,
        exact_lengths=False,
        allow_overlap=True,
        include_device_blocks=False,
        extra_segment_margin=reservation,
        chain_point_counts={
            net.name: config.chain_points_per_microstrip for net in netlist.microstrips
        },
        device_windows=device_windows,
        chain_windows=chain_windows,
        same_net_spacing=config.same_net_spacing,
    )
    builder = RficModelBuilder(netlist, config, options, name=f"phase1[{netlist.name}]")
    build_started = time.perf_counter()
    build = builder.build()
    model_build_time = time.perf_counter() - build_started
    settings = config.phase1
    warm_values = None
    if settings.warm_start and seeds is not None:
        warm_values = warm_start_from_seeds(build, seeds)
    solution = solve_phase_model(build, settings, warm_values)
    runtime = time.perf_counter() - start
    if not solution.is_feasible:
        raise InfeasibleModelError(
            f"phase 1 for {netlist.name!r} returned {solution.status.value} after "
            f"{runtime:.1f}s ({build.model.statistics()})"
        )

    layout = build.extract_layout(
        solution,
        metadata={
            "flow": "p-ilp",
            "phase": "phase1",
            "solver_status": solution.status.value,
            "reservation_margin_um": reservation,
        },
    )
    return PhaseResult(
        phase="phase1",
        layout=layout,
        solution=solution,
        runtime=runtime,
        length_errors=build.length_errors(solution),
        bend_counts=build.bend_counts(solution),
        total_overlap=build.total_overlap(solution),
        model_statistics=build.model.statistics(),
        model_build_time=model_build_time,
    )


def _phase1_windows(
    netlist: Netlist, config: PILPConfig, seeds: Optional[Dict] = None
) -> Tuple[Dict[str, Rect], Dict[Tuple[str, int], Rect]]:
    """Confinement corridors for the guided Phase-1 model.

    With ``guided_phase1`` disabled both mappings are empty and Phase 1 runs
    over the whole layout area, as in the paper.  Otherwise every device is
    confined to a ``phase1_window`` box around its seed position, and every
    chain point of a net to the bounding corridor spanned by its two terminal
    seeds (so detours remain possible anywhere between the terminals).
    ``seeds`` lets the caller share an already-computed seed placement.
    """
    if not config.guided_phase1:
        return {}, {}
    tau = config.phase1_window
    if seeds is None:
        seeds = spread_boundary_pads(
            seed_placement(netlist, config.random_seed), netlist
        )

    device_windows: Dict[str, Rect] = {
        name: window_around(point, tau) for name, point in seeds.items()
    }
    chain_windows: Dict[Tuple[str, int], Rect] = {}
    for net in netlist.microstrips:
        start_seed = seeds[net.start.device]
        end_seed = seeds[net.end.device]
        corridor = Rect.bounding(
            [window_around(start_seed, tau), window_around(end_seed, tau)]
        )
        count = config.chain_points_per_microstrip
        for index in range(count):
            chain_windows[(net.name, index)] = corridor
    return device_windows, chain_windows
