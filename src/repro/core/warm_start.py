"""Warm-start construction for the progressive flow's MILP solves.

The three phases of the P-ILP flow solve closely related models: Phase 2
re-solves the geometry Phase 1 produced with real device outlines, and every
Phase-3 iteration perturbs the previous layout only locally.  Each solve
nevertheless used to start cold, spending most of its budget re-discovering
an incumbent it essentially already had.

This module rebuilds a *complete* variable assignment for a freshly built
:class:`~repro.core.model_builder.BuildResult` from known geometry — device
centres, rotations and per-net chain points — including all derived
variables: direction binaries, segment lengths, bounding boxes, bend
indicators, length slacks, spacing-pair selectors and overlap slacks, and
the objective envelope variables.  The assignment is handed to the solver
backends as a warm start (HiGHS injects it with ``setSolution``; the
branch-and-bound backend repairs it into its initial incumbent).

The assignment does not need to be perfectly feasible — backends treat it as
a seed, not as an answer — but the closer it is, the more of the solver
budget goes into *improving* rather than *finding* solutions.

Checkpoint resume (:mod:`repro.core.checkpoint`) rides the same machinery:
a resumed solve deserialises the checkpointed phase-boundary layout and
hands it to the next phase, which warm-starts from that geometry exactly as
it would from a freshly solved predecessor — the JSON round trip preserves
coordinates bit-exactly, so the warm start (and therefore the solve) is
identical to the uninterrupted run's.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from repro.circuit.device import Rotation
from repro.core.model_builder import BuildResult, NetVars, SegmentVars
from repro.geometry.point import Point
from repro.ilp.expr import LinExpr, Variable

#: Coordinate differences below this are treated as zero-length segments.
_ZERO_TOL = 1.0e-9


def _clamp(value: float, var: Variable) -> float:
    return min(max(float(value), var.lb), var.ub)


def _set(values: Dict[Variable, float], var: Variable, value: float) -> None:
    values[var] = _clamp(value, var)


def _resample_polyline(points: Sequence[Point], count: int) -> List[Point]:
    """Resample a polyline to ``count`` points, evenly by arc length."""
    if count < 2:
        raise ValueError("need at least two chain points")
    if len(points) == count:
        return list(points)
    if len(points) < 2:
        return [points[0]] * count if points else []
    lengths = [
        abs(b.x - a.x) + abs(b.y - a.y) for a, b in zip(points, points[1:])
    ]
    total = sum(lengths)
    if total <= _ZERO_TOL:
        return [points[0]] * count
    samples: List[Point] = []
    for index in range(count):
        target = total * index / (count - 1)
        walked = 0.0
        for (a, b), seg_len in zip(zip(points, points[1:]), lengths):
            if walked + seg_len >= target - _ZERO_TOL:
                ratio = 0.0 if seg_len <= _ZERO_TOL else (target - walked) / seg_len
                ratio = min(max(ratio, 0.0), 1.0)
                samples.append(
                    Point(a.x + ratio * (b.x - a.x), a.y + ratio * (b.y - a.y))
                )
                break
            walked += seg_len
        else:
            samples.append(points[-1])
    return samples


def manhattan_guess(start: Point, end: Point, count: int) -> List[Point]:
    """A horizontal-then-vertical L-shaped chain guess between two points."""
    corner = Point(end.x, start.y)
    return _resample_polyline([start, corner, end], count)


def _segment_direction(dx: float, dy: float) -> Optional[str]:
    """Dominant axis direction of a step, or ``None`` for zero length."""
    if abs(dx) <= _ZERO_TOL and abs(dy) <= _ZERO_TOL:
        return None
    if abs(dx) >= abs(dy):
        return "r" if dx > 0 else "l"
    return "u" if dy > 0 else "d"


def _assign_net(
    model,
    values: Dict[Variable, float],
    net_vars: NetVars,
    points: Sequence[Point],
    delta: float,
    margin: float,
) -> None:
    """Assign chain coordinates, directions, lengths, boxes and bends."""
    count = len(net_vars.xs)
    sampled = _resample_polyline(list(points), count)
    for x_var, y_var, point in zip(net_vars.xs, net_vars.ys, sampled):
        _set(values, x_var, point.x)
        _set(values, y_var, point.y)

    # Direction binaries: dominant axis per step; zero-length segments
    # inherit their neighbour's direction so no-reversal rows stay happy.
    raw_directions: List[Optional[str]] = []
    for index in range(count - 1):
        dx = values[net_vars.xs[index + 1]] - values[net_vars.xs[index]]
        dy = values[net_vars.ys[index + 1]] - values[net_vars.ys[index]]
        raw_directions.append(_segment_direction(dx, dy))
    directions: List[str] = []
    for index, direction in enumerate(raw_directions):
        if direction is None:
            if directions:
                direction = directions[-1]
            else:
                direction = next(
                    (d for d in raw_directions[index + 1 :] if d is not None), "r"
                )
        directions.append(direction)

    for segment, direction in zip(net_vars.segments, directions):
        _assign_segment(values, net_vars, segment, direction, margin)

    # Bend indicators at interior chain points.
    total_bends = 0
    for bend_index, (previous, current) in enumerate(
        zip(directions, directions[1:])
    ):
        prev_h = previous in ("l", "r")
        cur_h = current in ("l", "r")
        bend = int(prev_h != cur_h)
        total_bends += bend
        segment = net_vars.segments[bend_index + 1]
        _assign_bend_aux(model, values, net_vars, segment, prev_h, cur_h)

    if net_vars.length_slack is not None:
        equivalent = (
            sum(values[segment.length] for segment in net_vars.segments)
            + delta * total_bends
        )
        _set(
            values,
            net_vars.length_slack,
            abs(equivalent - net_vars.target_length),
        )


def _assign_segment(
    values: Dict[Variable, float],
    net_vars: NetVars,
    segment: SegmentVars,
    direction: str,
    margin: float,
) -> None:
    x_a = values[net_vars.xs[segment.index]]
    y_a = values[net_vars.ys[segment.index]]
    x_b = values[net_vars.xs[segment.index + 1]]
    y_b = values[net_vars.ys[segment.index + 1]]
    for name, var in segment.directions.items():
        _set(values, var, 1.0 if name == direction else 0.0)
    if direction in ("l", "r"):
        length = abs(x_b - x_a)
    else:
        length = abs(y_b - y_a)
    _set(values, segment.length, length)
    # The expanded box hugs the segment at exactly the clearance margin the
    # builder used, matching the cover rows ``box <= point -+ margin``.
    _set(values, segment.box_xl, min(x_a, x_b) - margin)
    _set(values, segment.box_xr, max(x_a, x_b) + margin)
    _set(values, segment.box_yl, min(y_a, y_b) - margin)
    _set(values, segment.box_yu, max(y_a, y_b) + margin)


def _assign_bend_aux(
    model,
    values: Dict[Variable, float],
    net_vars: NetVars,
    segment: SegmentVars,
    prev_h: bool,
    cur_h: bool,
) -> None:
    """Set ``t_hv``/``u_hv``/``t_vh``/``u_vh``/``t`` at one chain point.

    The bend auxiliaries satisfy ``(#horizontal prev) + (#vertical cur) ==
    2 t_hv + u_hv`` (and the transposed row), so their values follow
    directly from the two adjoining directions.  They live on the model
    rather than on :class:`SegmentVars`, hence the name lookup.
    """
    # The builder names the aux binaries with the *current* segment index.
    prefix = f"net[{net_vars.name}].bend[{segment.index}]"
    hv_sum = int(prev_h) + int(not cur_h)
    vh_sum = int(not prev_h) + int(cur_h)
    assignments = {
        f"{prefix}.t_hv": 1.0 if hv_sum == 2 else 0.0,
        f"{prefix}.u_hv": 1.0 if hv_sum == 1 else 0.0,
        f"{prefix}.t_vh": 1.0 if vh_sum == 2 else 0.0,
        f"{prefix}.u_vh": 1.0 if vh_sum == 1 else 0.0,
        f"{prefix}.t": 1.0 if prev_h != cur_h else 0.0,
    }
    for name, value in assignments.items():
        try:
            var = model.get_var(name)
        except Exception:  # pragma: no cover - defensive
            continue
        _set(values, var, value)


def warm_start_from_geometry(
    build: BuildResult,
    device_points: Mapping[str, Point],
    chain_points: Mapping[str, Sequence[Point]],
    rotations: Optional[Mapping[str, Rotation]] = None,
) -> Dict[Variable, float]:
    """Build a full warm-start assignment from known geometry.

    Parameters
    ----------
    build:
        The freshly built model to warm start.
    device_points:
        Device centre per device name (missing devices default to their
        window centre via bound clamping of ``0``).
    chain_points:
        Chain-point polyline per net name; resampled to the model's chain
        count when the lengths differ.
    rotations:
        Device orientations; defaults to each device's fixed rotation.
    """
    rotations = rotations or {}
    model = build.model
    technology = build.netlist.technology
    values: Dict[Variable, float] = {}

    # -- devices --------------------------------------------------------- #
    for name, device_vars in build.devices.items():
        point = device_points.get(name)
        if point is None:
            continue
        _set(values, device_vars.x, point.x)
        _set(values, device_vars.y, point.y)
        if device_vars.rotation_vars:
            chosen = rotations.get(name, device_vars.fixed_rotation)
            if chosen not in device_vars.rotation_vars:
                chosen = next(iter(device_vars.rotation_vars))
            for rotation, var in device_vars.rotation_vars.items():
                _set(values, var, 1.0 if rotation is chosen else 0.0)

    # Pad boundary side selectors: pick the boundary the pad is closest to.
    area = build.netlist.area
    for name, device_vars in build.devices.items():
        if not device_vars.boundary_sides:
            continue
        x = values.get(device_vars.x, 0.0)
        y = values.get(device_vars.y, 0.0)
        half_w = device_vars.half_width.value(values) if _evaluable(
            device_vars.half_width, values
        ) else 0.0
        half_h = device_vars.half_height.value(values) if _evaluable(
            device_vars.half_height, values
        ) else 0.0
        distances = {
            "left": abs(x - half_w),
            "right": abs(area.width - half_w - x),
            "bottom": abs(y - half_h),
            "top": abs(area.height - half_h - y),
        }
        chosen_side = min(distances, key=distances.get)
        for side, var in device_vars.boundary_sides.items():
            _set(values, var, 1.0 if side == chosen_side else 0.0)

    # -- nets ------------------------------------------------------------- #
    delta = technology.bend_compensation
    for name, net_vars in build.nets.items():
        points = chain_points.get(name)
        if not points:
            continue
        margin = (
            build.netlist.microstrip_width(name) / 2.0
            + technology.clearance
            + build.options.extra_segment_margin
        )
        _assign_net(model, values, net_vars, points, delta, margin)

    # -- spacing pairs ----------------------------------------------------- #
    for pair in build.spacing_pairs:
        _assign_pair(values, pair)

    # -- objective envelopes ----------------------------------------------- #
    if build.max_bend_var is not None:
        bend_totals = [
            net_vars.bend_count.value(values)
            for net_vars in build.nets.values()
            if _evaluable(net_vars.bend_count, values)
        ]
        if bend_totals:
            _set(values, build.max_bend_var, max(bend_totals))
    if build.max_length_slack_var is not None:
        slacks = [
            values[net_vars.length_slack]
            for net_vars in build.nets.values()
            if net_vars.length_slack is not None
            and net_vars.length_slack in values
        ]
        if slacks:
            _set(values, build.max_length_slack_var, max(slacks))
    return values


def warm_start_from_layout(build: BuildResult, layout) -> Dict[Variable, float]:
    """Warm start a model from a previous phase's layout snapshot."""
    device_points = {
        placement.device_name: placement.center for placement in layout.placements
    }
    rotations = {
        placement.device_name: placement.rotation for placement in layout.placements
    }
    chain_points = {
        route.net_name: list(route.path.points) for route in layout.routes
    }
    return warm_start_from_geometry(build, device_points, chain_points, rotations)


def warm_start_from_seeds(
    build: BuildResult, seeds: Mapping[str, Point]
) -> Dict[Variable, float]:
    """Warm start the Phase-1 model from a seed placement.

    Every net gets an L-shaped (horizontal-then-vertical) chain guess
    between its two terminal seed points — exactly the kind of rough but
    structurally valid routing the Phase-1 heuristics would otherwise spend
    their first seconds rediscovering.
    """
    chain_points: Dict[str, List[Point]] = {}
    for name, net_vars in build.nets.items():
        net = build.netlist.microstrip(name)
        start = seeds.get(net.start.device)
        end = seeds.get(net.end.device)
        if start is None or end is None:
            continue
        chain_points[name] = manhattan_guess(start, end, len(net_vars.xs))
    return warm_start_from_geometry(build, dict(seeds), chain_points)


def solve_phase_model(build: BuildResult, settings, warm_values=None):
    """Solve a phase model honouring the phase's warm-start knobs.

    ``settings`` is a :class:`~repro.core.config.PhaseSettings`; the warm
    start is only forwarded when enabled there, and the progressive sliced
    solve is requested from the HiGHS backend when configured.
    """
    kwargs = {}
    if getattr(settings, "warm_start", False) and warm_values:
        kwargs["warm_start"] = warm_values
    if getattr(settings, "progressive", False) and settings.backend == "highs":
        kwargs["progressive"] = True
    return build.model.solve(
        backend=settings.backend,
        time_limit=settings.time_limit,
        mip_gap=settings.mip_gap,
        **kwargs,
    )


def _evaluable(expr: LinExpr, values: Mapping[Variable, float]) -> bool:
    return all(var in values for var in expr.coeffs)


def _assign_pair(values: Dict[Variable, float], pair) -> None:
    """Choose the least-violated separation direction for one pair."""
    edges = []
    for block in (pair.first, pair.second):
        exprs = (block.xl, block.xr, block.yl, block.yu)
        if not all(_evaluable(expr, values) for expr in exprs):
            return
        edges.append([expr.value(values) for expr in exprs])
    (f_xl, f_xr, f_yl, f_yu), (s_xl, s_xr, s_yl, s_yu) = edges
    # Violations of rows (16)-(19) without big-M relief or slack.
    violations = [
        f_xr - s_xl,  # first left of second
        s_yu - f_yl,  # second below first
        s_xr - f_xl,  # second left of first (first right of second)
        f_yu - s_yl,  # first below second
    ]
    chosen = min(range(4), key=lambda k: (violations[k], k))
    for k, selector in enumerate(pair.selectors):
        _set(values, selector, 0.0 if k == chosen else 1.0)
    overlap = max(0.0, violations[chosen])
    if pair.slack_h is not None:
        _set(values, pair.slack_h, overlap if chosen in (0, 2) else 0.0)
    if pair.slack_v is not None:
        _set(values, pair.slack_v, overlap if chosen in (1, 3) else 0.0)
