"""Configuration of the exact ILP model and the progressive (P-ILP) flow.

The paper leaves the objective weights (α, β in (21); α, β, γ, ζ, η in (26)),
the initial chain-point count, the confinement window τ_d and the iteration
budget of Phase 3 unspecified.  The defaults below were chosen so that, on
the reconstructed benchmark circuits, the flow behaves the way the paper
describes: bends are the primary objective, length mismatch is driven to zero
by the refinement iterations, and residual overlap from Phase 1 is removed in
Phase 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ObjectiveWeights:
    """Weights of the optimisation objective (equations (21) and (26)).

    Attributes
    ----------
    alpha:
        Weight of the maximum bend count over all microstrips.
    beta:
        Weight of the total bend count.
    gamma:
        Weight of the maximum unmatched length ``l_u,max`` (soft phases only).
    zeta:
        Weight of the total unmatched length.
    eta:
        Weight of the total residual overlap extent (soft phases only).
        Residual overlap is what ultimately makes a layout illegal, so it is
        weighted well above the length terms: the remaining length error is
        eliminated by the hard exact-length iteration of Phase 3 once the
        geometry is clean.
    """

    alpha: float = 20.0
    beta: float = 4.0
    gamma: float = 12.0
    zeta: float = 2.0
    eta: float = 12.0

    def __post_init__(self) -> None:
        for name in ("alpha", "beta", "gamma", "zeta", "eta"):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"objective weight {name} must be non-negative")


@dataclass(frozen=True)
class PhaseSettings:
    """Per-phase solver settings.

    Attributes
    ----------
    time_limit, mip_gap, backend:
        As before: wall-clock budget, relative gap and backend name.
    warm_start:
        Seed the solve with an incumbent constructed from the previous
        phase's geometry (or the seed placement for Phase 1).  Warm starts
        only ever *add* an incumbent; disabling them reproduces the cold
        behaviour exactly.
    progressive:
        Split the time budget into slices and stop once an extra slice no
        longer improves the incumbent.  The soft phase models have a
        structurally weak LP bound (zero), so the MIP-gap criterion never
        fires and this stall criterion is what keeps phases from burning
        their whole budget after convergence.  Only honoured by the HiGHS
        backend.
    """

    time_limit: Optional[float] = 120.0
    mip_gap: Optional[float] = 0.02
    backend: str = "highs"
    warm_start: bool = True
    progressive: bool = True

    def __post_init__(self) -> None:
        if self.time_limit is not None and self.time_limit <= 0:
            raise ConfigurationError("time_limit must be positive or None")
        if self.mip_gap is not None and not (0.0 <= self.mip_gap < 1.0):
            raise ConfigurationError("mip_gap must lie in [0, 1)")


@dataclass(frozen=True)
class PILPConfig:
    """Configuration of the progressive ILP layout generation flow.

    Attributes
    ----------
    weights:
        Objective weights shared by all phases.
    chain_points_per_microstrip:
        Initial number of chain points allocated to every microstrip
        (Section 5.1 fixes this "given number" to bound model complexity).
    max_chain_points:
        Upper limit on chain points per microstrip after Phase 3 insertions.
    confinement_window:
        The τ_d window (µm) of Phase 2: chain points and devices may move at
        most this far from their Phase-1 position.
    refinement_window:
        The (smaller) τ_d window of the Phase-3 iterations; the topology is
        already fixed, so refinement only needs local freedom and a small
        window keeps the per-iteration models easy.
    guided_phase1:
        When True (default), Phase 1 is confined to generous corridors around
        a cheap force-directed seed placement (see :mod:`repro.core.seed`).
        Setting it to False reproduces the paper's fully unconfined Phase-1
        model, which needs far longer solver budgets.
    phase1_window:
        Half-size (µm) of the Phase-1 corridors around the seed placement
        (only used when ``guided_phase1`` is True).
    blur_margin_factor:
        Phase 1 reserves space for blurred devices by expanding segment
        bounding boxes by ``blur_margin_factor x (mean device half dimension)``
        in addition to the normal clearance.
    blur_length_factor:
        Phase 1 grows each net's length target by
        ``blur_length_factor x (w + h) / 2`` of its terminal devices
        (equation (23)); 0.5 corresponds to the average centre-to-boundary
        distance.
    max_refinement_iterations:
        Maximum number of Phase 3 iterations.
    length_tolerance:
        Equivalent-length error (µm) below which a net counts as matched.
    overlap_tolerance:
        Residual bounding-box overlap (µm) below which a pair counts as clear.
    same_net_spacing:
        Whether to also enforce spacing between non-adjacent segments of the
        same microstrip (increases model size; the benchmark circuits do not
        need it because nets are short relative to the spacing rule).
    phase1, phase2, phase3:
        Per-phase solver settings.
    exact:
        Solver settings of the one-shot exact model (Section 4).
    random_seed:
        Seed for the (deterministic) tie-breaking heuristics of the flow.
    """

    weights: ObjectiveWeights = field(default_factory=ObjectiveWeights)
    chain_points_per_microstrip: int = 5
    max_chain_points: int = 9
    confinement_window: float = 120.0
    refinement_window: float = 45.0
    guided_phase1: bool = True
    phase1_window: float = 220.0
    blur_margin_factor: float = 0.35
    blur_length_factor: float = 0.5
    max_refinement_iterations: int = 4
    length_tolerance: float = 0.5
    overlap_tolerance: float = 0.5
    same_net_spacing: bool = False
    phase1: PhaseSettings = field(default_factory=lambda: PhaseSettings(time_limit=180.0))
    phase2: PhaseSettings = field(default_factory=lambda: PhaseSettings(time_limit=120.0))
    phase3: PhaseSettings = field(default_factory=lambda: PhaseSettings(time_limit=90.0))
    exact: PhaseSettings = field(
        default_factory=lambda: PhaseSettings(
            time_limit=300.0, warm_start=False, progressive=False
        )
    )
    random_seed: int = 2016

    def __post_init__(self) -> None:
        if self.chain_points_per_microstrip < 2:
            raise ConfigurationError("chain_points_per_microstrip must be at least 2")
        if self.max_chain_points < self.chain_points_per_microstrip:
            raise ConfigurationError(
                "max_chain_points must be >= chain_points_per_microstrip"
            )
        if self.confinement_window <= 0:
            raise ConfigurationError("confinement_window must be positive")
        if self.refinement_window <= 0:
            raise ConfigurationError("refinement_window must be positive")
        if self.phase1_window <= 0:
            raise ConfigurationError("phase1_window must be positive")
        if self.blur_margin_factor < 0 or self.blur_length_factor < 0:
            raise ConfigurationError("blur factors must be non-negative")
        if self.max_refinement_iterations < 0:
            raise ConfigurationError("max_refinement_iterations must be non-negative")
        if self.length_tolerance <= 0 or self.overlap_tolerance <= 0:
            raise ConfigurationError("tolerances must be positive")

    def with_updates(self, **changes) -> "PILPConfig":
        """Return a copy with selected fields replaced."""
        return replace(self, **changes)

    @staticmethod
    def fast() -> "PILPConfig":
        """A configuration tuned for unit tests and small examples.

        Short time limits, small chain-point budgets and a single refinement
        iteration: small circuits still come out DRC-clean, and the whole
        flow finishes in seconds.
        """
        return PILPConfig(
            chain_points_per_microstrip=5,
            max_chain_points=7,
            max_refinement_iterations=2,
            confinement_window=100.0,
            refinement_window=40.0,
            phase1=PhaseSettings(time_limit=20.0, mip_gap=0.05),
            phase2=PhaseSettings(time_limit=20.0, mip_gap=0.05),
            phase3=PhaseSettings(time_limit=15.0, mip_gap=0.05),
            exact=PhaseSettings(
                time_limit=30.0, mip_gap=0.02, warm_start=False, progressive=False
            ),
        )

    @staticmethod
    def paper() -> "PILPConfig":
        """A configuration sized like the paper's experiments.

        Generous time limits for the full-size reconstructed circuits
        (the paper reports 4-30 minutes per circuit on Gurobi).
        """
        return PILPConfig(
            chain_points_per_microstrip=5,
            max_chain_points=9,
            max_refinement_iterations=4,
            confinement_window=150.0,
            refinement_window=60.0,
            phase1=PhaseSettings(time_limit=600.0, mip_gap=0.02),
            phase2=PhaseSettings(time_limit=420.0, mip_gap=0.02),
            phase3=PhaseSettings(time_limit=300.0, mip_gap=0.02),
            exact=PhaseSettings(
                time_limit=1800.0, mip_gap=0.01, warm_start=False, progressive=False
            ),
        )
