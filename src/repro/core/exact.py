"""One-shot exact concurrent placement and routing (Section 4).

This flow builds the *complete* ILP model — hard exact-length constraints,
full device geometry, hard non-overlap — and hands it to the MILP solver in a
single call.  The paper introduces this model first and then observes that
"the runtime is not acceptable" for realistic circuits, which motivates the
progressive flow of Section 5.  We keep the exact flow because

* it is the ground truth for small circuits (the progressive flow should
  reach the same bend counts),
* it is the baseline of the exact-vs-progressive ablation benchmark.
"""

from __future__ import annotations

import time
from typing import Optional

from repro.errors import InfeasibleModelError
from repro.circuit.netlist import Netlist
from repro.core.config import PILPConfig
from repro.core.model_builder import BuildOptions, RficModelBuilder
from repro.core.result import FlowResult, PhaseResult
from repro.layout.drc import run_drc
from repro.layout.metrics import compute_metrics


class ExactLayoutGenerator:
    """Generate a layout by solving the full Section-4 model once."""

    flow_name = "exact-ilp"

    def __init__(self, config: Optional[PILPConfig] = None) -> None:
        self.config = config or PILPConfig()

    def generate(self, netlist: Netlist) -> FlowResult:
        """Run the exact flow on a netlist.

        Raises
        ------
        InfeasibleModelError
            If the solver proves the instance infeasible or finds no feasible
            solution within the configured time limit.
        """
        start = time.perf_counter()
        options = BuildOptions(
            blurred_devices=False,
            exact_lengths=True,
            allow_overlap=False,
            include_device_blocks=True,
            same_net_spacing=self.config.same_net_spacing,
        )
        builder = RficModelBuilder(netlist, self.config, options, name=f"exact[{netlist.name}]")
        build = builder.build()
        settings = self.config.exact
        solution = build.model.solve(
            backend=settings.backend,
            time_limit=settings.time_limit,
            mip_gap=settings.mip_gap,
        )
        runtime = time.perf_counter() - start
        if not solution.is_feasible:
            raise InfeasibleModelError(
                f"exact model for {netlist.name!r} returned {solution.status.value} "
                f"after {runtime:.1f}s ({build.model.statistics()})"
            )

        layout = build.extract_layout(
            solution,
            metadata={
                "flow": self.flow_name,
                "solver_status": solution.status.value,
                "solver_backend": solution.backend,
                "runtime_s": runtime,
            },
        )
        phase = PhaseResult(
            phase="exact",
            layout=layout,
            solution=solution,
            runtime=runtime,
            length_errors=build.length_errors(solution),
            bend_counts=build.bend_counts(solution),
            total_overlap=0.0,
            model_statistics=build.model.statistics(),
        )
        return FlowResult(
            flow=self.flow_name,
            circuit=netlist.name,
            layout=layout,
            metrics=compute_metrics(layout),
            drc=run_drc(layout),
            runtime=runtime,
            phases=[phase],
        )


def generate_exact_layout(
    netlist: Netlist, config: Optional[PILPConfig] = None
) -> FlowResult:
    """Convenience function wrapping :class:`ExactLayoutGenerator`."""
    return ExactLayoutGenerator(config).generate(netlist)
