"""The concurrent placement-and-routing ILP model (Section 4 of the paper).

:class:`RficModelBuilder` translates a netlist into a mixed integer linear
program following the paper's formulation:

* chain-point coordinates and four direction binaries per segment
  (equations (1)-(5)),
* linearised segment lengths (equation (6)) and geometric lengths (7),
* bend detection at chain points (equations (8)-(11)),
* equivalent length with the per-bend compensation δ (12) matched exactly
  (13) or softly via unmatched-length variables (23)-(25),
* pin connections (14) and pad boundary placement (15),
* pairwise non-overlap of expanded bounding boxes (16)-(20), optionally
  relaxed by penalised overlap slack (Phase 1),
* the bend-count objective (21) extended with the Phase-1 penalty terms (26).

The same builder serves the one-shot exact model and all three phases of the
progressive flow; :class:`BuildOptions` selects which abstractions apply
(blurred devices, confinement windows, rotation freedom, soft lengths).

The large constraint families — segment bounding boxes, no-reversal rows,
bend detection and above all the pairwise non-overlap disjunctions, which
grow quadratically with block count — are emitted through the batched
compile path (:class:`repro.ilp.compile.ConstraintBatch`): rows are
accumulated as COO triplets and ingested in bulk, skipping the per-term
dictionary merges of the expression API.  The produced standard form is
identical to the legacy expression path (a property test pins this down).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.errors import ModelError
from repro.circuit.device import Device, Rotation
from repro.circuit.microstrip_net import MicrostripNet
from repro.circuit.netlist import Netlist
from repro.core.config import PILPConfig
from repro.geometry.path import ManhattanPath
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.ilp.compile import ColumnExpr, ConstraintBatch
from repro.ilp.expr import LinExpr, Variable, lin_sum
from repro.ilp.linearize import equal_if, exactly_one
from repro.ilp.model import Model
from repro.ilp.solution import Solution
from repro.layout.layout import Layout
from repro.layout.placement import Placement
from repro.layout.routing import RoutedMicrostrip

#: Directions in the order used throughout the module.
DIRECTIONS = ("u", "d", "l", "r")

#: Coordinate snapping tolerance when turning LP values into rectilinear
#: geometry (micrometres).
SNAP_TOL = 1.0e-3


# --------------------------------------------------------------------------- #
# options and variable bundles
# --------------------------------------------------------------------------- #


@dataclass
class BuildOptions:
    """Switches selecting which abstraction of the model to build.

    Attributes
    ----------
    blurred_devices:
        Phase-1 mode: devices are dimensionless points, microstrip ends
        attach to the device point, device outlines do not participate in
        the non-overlap constraints, and length targets are grown per
        equation (23).
    exact_lengths:
        Enforce equation (13) as a hard constraint.  When ``False`` the
        unmatched-length variables of (24)-(25) are created and penalised.
    allow_overlap:
        Add the per-pair overlap slack of Phase 1 (penalised in the
        objective) instead of hard non-overlap.
    include_device_blocks:
        Whether placed devices participate in the pairwise non-overlap
        constraints (disabled in Phase 1).
    chain_point_counts:
        Number of chain points per microstrip; nets not listed fall back to
        the configuration default.
    device_windows:
        Per-device confinement rectangles for the device centre (τ_d windows
        of Phases 2/3).
    chain_windows:
        Per-(net, chain-point-index) confinement rectangles.
    rotatable_devices:
        Devices whose orientation the model may choose (Phase 3).
    fixed_rotations:
        Orientation to use for devices that are not free to rotate.
    length_targets:
        Per-net length-target overrides (the grown targets of Phase 1).
    extra_segment_margin:
        Additional bounding-box expansion applied to every segment (the
        aggressive reservation for blurred devices, Figure 8).
    same_net_spacing:
        Enforce spacing between non-adjacent segments of the same net.
    spacing_exempt_pairs:
        Extra pairs of block labels allowed to overlap.
    forced_spacing_pairs:
        Pairs of *net names* whose mutual spacing exemption is revoked.
        Used by Phase-3 refinement to untangle nets whose centre lines were
        found crossing: the pair's segments get (softly slacked) separation
        rows even where the shared-terminal rule would normally exempt
        them, so the escalating overlap penalty pushes the crossing apart.
    """

    blurred_devices: bool = False
    exact_lengths: bool = True
    allow_overlap: bool = False
    include_device_blocks: bool = True
    chain_point_counts: Mapping[str, int] = field(default_factory=dict)
    device_windows: Mapping[str, Rect] = field(default_factory=dict)
    chain_windows: Mapping[Tuple[str, int], Rect] = field(default_factory=dict)
    rotatable_devices: Set[str] = field(default_factory=set)
    fixed_rotations: Mapping[str, Rotation] = field(default_factory=dict)
    length_targets: Mapping[str, float] = field(default_factory=dict)
    extra_segment_margin: float = 0.0
    same_net_spacing: bool = False
    spacing_exempt_pairs: Set[frozenset] = field(default_factory=set)
    forced_spacing_pairs: Set[frozenset] = field(default_factory=set)


@dataclass
class DeviceVars:
    """Decision variables describing one device."""

    name: str
    x: Variable
    y: Variable
    half_width: LinExpr
    half_height: LinExpr
    rotation_vars: Dict[Rotation, Variable] = field(default_factory=dict)
    fixed_rotation: Rotation = Rotation.R0
    boundary_sides: Dict[str, Variable] = field(default_factory=dict)

    @property
    def center(self) -> Tuple[LinExpr, LinExpr]:
        return (LinExpr.from_value(self.x), LinExpr.from_value(self.y))


@dataclass
class SegmentVars:
    """Decision variables describing one microstrip segment."""

    net_name: str
    index: int
    length: Variable
    directions: Dict[str, Variable]
    box_xl: Variable
    box_xr: Variable
    box_yl: Variable
    box_yu: Variable


@dataclass
class NetVars:
    """Decision variables describing one microstrip net."""

    name: str
    xs: List[Variable]
    ys: List[Variable]
    segments: List[SegmentVars]
    bend_vars: List[Variable]
    geometric_length: LinExpr = field(default_factory=LinExpr)
    equivalent_length: LinExpr = field(default_factory=LinExpr)
    bend_count: LinExpr = field(default_factory=LinExpr)
    length_slack: Optional[Variable] = None
    target_length: float = 0.0


@dataclass
class SpacingPairVars:
    """Decision variables of one pairwise non-overlap disjunction.

    Kept on the build result so warm starts can reconstruct consistent
    selector/slack values for a known geometric arrangement.
    """

    first: "_Block"
    second: "_Block"
    selectors: List[Variable]
    slack_h: Optional[Variable] = None
    slack_v: Optional[Variable] = None
    big_m: float = 0.0


@dataclass
class BuildResult:
    """The assembled model plus everything needed to read a layout back."""

    model: Model
    netlist: Netlist
    options: BuildOptions
    devices: Dict[str, DeviceVars]
    nets: Dict[str, NetVars]
    overlap_slacks: List[Variable] = field(default_factory=list)
    max_bend_var: Optional[Variable] = None
    max_length_slack_var: Optional[Variable] = None
    num_spacing_pairs: int = 0
    spacing_pairs: List[SpacingPairVars] = field(default_factory=list)

    # -- solution extraction -------------------------------------------------- #

    def extract_layout(self, solution: Solution, metadata: Optional[dict] = None) -> Layout:
        """Turn a feasible solution into a :class:`Layout`.

        Chain-point coordinates are snapped to the rectilinear skeleton the
        direction binaries describe, so tiny LP round-off never produces a
        non-Manhattan path.
        """
        if not solution.is_feasible:
            raise ModelError(
                f"cannot extract a layout from a {solution.status.value} solution"
            )
        layout = Layout(self.netlist, metadata=metadata or {})
        for name, device_vars in self.devices.items():
            center = Point(solution.value(device_vars.x), solution.value(device_vars.y))
            rotation = device_vars.fixed_rotation
            if device_vars.rotation_vars:
                for candidate, var in device_vars.rotation_vars.items():
                    if solution.value(var) > 0.5:
                        rotation = candidate
                        break
            layout.set_placement(Placement(name, center, rotation))

        for name, net_vars in self.nets.items():
            points = self._extract_points(solution, net_vars)
            width = self.netlist.microstrip_width(name)
            path = ManhattanPath(points, width=width)
            layout.set_route(RoutedMicrostrip(name, path))
        return layout

    def _extract_points(self, solution: Solution, net_vars: NetVars) -> List[Point]:
        """Read chain points and snap them onto the solved directions."""
        raw = [
            (solution.value(x), solution.value(y))
            for x, y in zip(net_vars.xs, net_vars.ys)
        ]
        snapped: List[Tuple[float, float]] = [raw[0]]
        for index, segment in enumerate(net_vars.segments):
            x_prev, y_prev = snapped[-1]
            x_next, y_next = raw[index + 1]
            direction = self._solved_direction(solution, segment)
            if direction in ("l", "r"):
                snapped.append((x_next, y_prev))
            elif direction in ("u", "d"):
                snapped.append((x_prev, y_next))
            else:  # pragma: no cover - defensive, direction always exists
                snapped.append((x_next, y_next))
        return [Point(x, y) for x, y in snapped]

    @staticmethod
    def _solved_direction(solution: Solution, segment: SegmentVars) -> str:
        for direction, var in segment.directions.items():
            if solution.value(var) > 0.5:
                return direction
        return "r"

    def length_errors(self, solution: Solution) -> Dict[str, float]:
        """Signed equivalent-length errors per net under a solution."""
        errors = {}
        for name, net_vars in self.nets.items():
            errors[name] = (
                solution.value(net_vars.equivalent_length) - net_vars.target_length
            )
        return errors

    def bend_counts(self, solution: Solution) -> Dict[str, int]:
        """Bend counts per net under a solution."""
        return {
            name: int(round(solution.value(net_vars.bend_count)))
            for name, net_vars in self.nets.items()
        }

    def total_overlap(self, solution: Solution) -> float:
        """Total residual overlap slack (Phase-1/2 diagnostics)."""
        return sum(solution.value(slack) for slack in self.overlap_slacks)


# --------------------------------------------------------------------------- #
# internal helper describing one block that takes part in spacing constraints
# --------------------------------------------------------------------------- #


@dataclass
class _Block:
    """A rectangle (device outline or segment box) for non-overlap pairs."""

    label: str
    xl: LinExpr
    xr: LinExpr
    yl: LinExpr
    yu: LinExpr
    kind: str  # "device" or "segment"
    net_name: str = ""
    segment_index: int = -1
    device_name: str = ""
    #: Conservative static bounds used for pair pruning (None = unbounded).
    static_bounds: Optional[Rect] = None
    #: Lazily lowered edge expressions for the batched spacing-pair path.
    _lowered: Optional[Tuple[ColumnExpr, ColumnExpr, ColumnExpr, ColumnExpr]] = None

    def lowered_edges(self) -> Tuple[ColumnExpr, ColumnExpr, ColumnExpr, ColumnExpr]:
        """Return ``(xl, xr, yl, yu)`` pre-lowered to column/coefficient form."""
        if self._lowered is None:
            self._lowered = (
                ColumnExpr.lower(self.xl),
                ColumnExpr.lower(self.xr),
                ColumnExpr.lower(self.yl),
                ColumnExpr.lower(self.yu),
            )
        return self._lowered


# --------------------------------------------------------------------------- #
# the builder
# --------------------------------------------------------------------------- #


class RficModelBuilder:
    """Builds the concurrent placement-and-routing MILP for a netlist."""

    def __init__(
        self,
        netlist: Netlist,
        config: Optional[PILPConfig] = None,
        options: Optional[BuildOptions] = None,
        name: str = "",
    ) -> None:
        self.netlist = netlist
        self.config = config or PILPConfig()
        self.options = options or BuildOptions()
        self.model = Model(name or f"rfic[{netlist.name}]")
        area = netlist.area
        #: Big-M for coordinate / length disjunctions: nothing in the model is
        #: ever farther apart than the half-perimeter of the layout area plus
        #: the largest device, so this is safely large yet well-conditioned.
        largest_device = max(
            (max(d.width, d.height) for d in netlist.devices), default=0.0
        )
        self.big_m = area.width + area.height + 2.0 * largest_device + 100.0

        self._devices: Dict[str, DeviceVars] = {}
        self._nets: Dict[str, NetVars] = {}
        self._blocks: List[_Block] = []
        self._overlap_slacks: List[Variable] = []
        self._num_pairs = 0
        self._spacing_pairs: List[SpacingPairVars] = []

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #

    def build(self) -> BuildResult:
        """Create all variables, constraints and the objective."""
        for device in self.netlist.devices:
            self._devices[device.name] = self._build_device(device)
        for net in self.netlist.microstrips:
            self._nets[net.name] = self._build_net(net)
        self._build_connections()
        self._collect_blocks()
        self._build_spacing_pairs()
        max_bend, max_slack = self._build_objective()
        return BuildResult(
            model=self.model,
            netlist=self.netlist,
            options=self.options,
            devices=self._devices,
            nets=self._nets,
            overlap_slacks=self._overlap_slacks,
            max_bend_var=max_bend,
            max_length_slack_var=max_slack,
            num_spacing_pairs=self._num_pairs,
            spacing_pairs=self._spacing_pairs,
        )

    # ------------------------------------------------------------------ #
    # devices
    # ------------------------------------------------------------------ #

    def _device_window(self, device: Device) -> Rect:
        """Bounds for the device centre: confinement window clipped to the area."""
        area = self.netlist.area
        window = self.options.device_windows.get(device.name)
        full = Rect(0.0, 0.0, area.width, area.height)
        if window is None:
            return full
        clipped = window.intersection(full)
        return clipped if clipped is not None else full

    def _build_device(self, device: Device) -> DeviceVars:
        options = self.options
        area = self.netlist.area
        window = self._device_window(device)

        x = self.model.add_continuous(f"dev[{device.name}].x", lb=window.xl, ub=window.xr)
        y = self.model.add_continuous(f"dev[{device.name}].y", lb=window.yl, ub=window.yu)

        fixed_rotation = options.fixed_rotations.get(device.name, Rotation.R0)
        rotation_vars: Dict[Rotation, Variable] = {}

        if options.blurred_devices:
            # Phase 1: the device is a point; no outline, no rotation.
            half_width = LinExpr({}, 0.0)
            half_height = LinExpr({}, 0.0)
        elif device.name in options.rotatable_devices and device.rotatable:
            for rotation in Rotation:
                rotation_vars[rotation] = self.model.add_binary(
                    f"dev[{device.name}].rot{rotation.degrees}"
                )
            exactly_one(
                self.model,
                list(rotation_vars.values()),
                name=f"dev[{device.name}].one_rotation",
            )
            half_width = LinExpr.sum(
                rotation_vars[r] * (device.dimensions(r)[0] / 2.0) for r in Rotation
            )
            half_height = LinExpr.sum(
                rotation_vars[r] * (device.dimensions(r)[1] / 2.0) for r in Rotation
            )
        else:
            width, height = device.dimensions(fixed_rotation)
            half_width = LinExpr({}, width / 2.0)
            half_height = LinExpr({}, height / 2.0)

        device_vars = DeviceVars(
            name=device.name,
            x=x,
            y=y,
            half_width=half_width,
            half_height=half_height,
            rotation_vars=rotation_vars,
            fixed_rotation=fixed_rotation,
        )

        if device.is_pad:
            self._add_pad_boundary_constraints(device, device_vars)
        elif not options.blurred_devices:
            # Keep the outline inside the layout area.
            self.model.add_constraint(
                x - half_width >= 0, name=f"dev[{device.name}].in_left"
            )
            self.model.add_constraint(
                x + half_width <= area.width, name=f"dev[{device.name}].in_right"
            )
            self.model.add_constraint(
                y - half_height >= 0, name=f"dev[{device.name}].in_bottom"
            )
            self.model.add_constraint(
                y + half_height <= area.height, name=f"dev[{device.name}].in_top"
            )
        return device_vars

    def _add_pad_boundary_constraints(self, device: Device, dv: DeviceVars) -> None:
        """Pads sit with one edge on the layout boundary (equation (15)).

        The paper aligns the pad centre with the boundary; we keep the pad
        outline inside the area and require one of its edges to coincide with
        a boundary edge, which is the same feasible set up to the half pad
        size and keeps every outline inside the area rectangle.  One binary
        per side selects which edge the pad is attached to.
        """
        area = self.netlist.area
        sides = {}
        for side in ("left", "right", "bottom", "top"):
            sides[side] = self.model.add_binary(f"pad[{device.name}].{side}")
        exactly_one(self.model, list(sides.values()), name=f"pad[{device.name}].one_side")

        equal_if(
            self.model, sides["left"], dv.x, dv.half_width, big_m=self.big_m,
            name=f"pad[{device.name}].at_left",
        )
        equal_if(
            self.model, sides["right"], dv.x,
            LinExpr({}, area.width) - dv.half_width, big_m=self.big_m,
            name=f"pad[{device.name}].at_right",
        )
        equal_if(
            self.model, sides["bottom"], dv.y, dv.half_height, big_m=self.big_m,
            name=f"pad[{device.name}].at_bottom",
        )
        equal_if(
            self.model, sides["top"], dv.y,
            LinExpr({}, area.height) - dv.half_height, big_m=self.big_m,
            name=f"pad[{device.name}].at_top",
        )
        # Whatever side is chosen, the outline must not leave the area.
        self.model.add_constraint(dv.x - dv.half_width >= 0, name=f"pad[{device.name}].in_l")
        self.model.add_constraint(
            dv.x + dv.half_width <= area.width, name=f"pad[{device.name}].in_r"
        )
        self.model.add_constraint(dv.y - dv.half_height >= 0, name=f"pad[{device.name}].in_b")
        self.model.add_constraint(
            dv.y + dv.half_height <= area.height, name=f"pad[{device.name}].in_t"
        )
        dv.boundary_sides = sides

    # ------------------------------------------------------------------ #
    # nets
    # ------------------------------------------------------------------ #

    def _chain_point_count(self, net: MicrostripNet) -> int:
        from_options = self.options.chain_point_counts.get(net.name)
        if from_options is not None:
            return max(2, int(from_options))
        if net.max_chain_points is not None:
            return max(2, net.max_chain_points)
        return self.config.chain_points_per_microstrip

    def _net_target(self, net: MicrostripNet) -> float:
        override = self.options.length_targets.get(net.name)
        if override is not None:
            return float(override)
        if self.options.blurred_devices:
            # Equation (23): grow the target by the centre-to-boundary runs of
            # the two terminal devices that disappear in the blurred model.
            grow = 0.0
            for terminal in net.terminals:
                device = self.netlist.device(terminal.device)
                grow += self.config.blur_length_factor * (device.width + device.height) / 2.0
            return net.target_length + grow
        return net.target_length

    def _chain_window(self, net_name: str, index: int) -> Optional[Rect]:
        return self.options.chain_windows.get((net_name, index))

    def _build_net(self, net: MicrostripNet) -> NetVars:
        area = self.netlist.area
        width = self.netlist.microstrip_width(net)
        half_width = width / 2.0
        count = self._chain_point_count(net)
        delta = self.netlist.technology.bend_compensation

        xs: List[Variable] = []
        ys: List[Variable] = []
        # In the blurred (Phase-1) model microstrip ends coincide with device
        # points, which may sit directly on the boundary, so the metal-width
        # margin is only enforced once real device geometry is present.
        floor_margin = 0.0 if self.options.blurred_devices else half_width
        for index in range(count):
            window = self._chain_window(net.name, index)
            if window is None:
                lb_x, ub_x = floor_margin, area.width - floor_margin
                lb_y, ub_y = floor_margin, area.height - floor_margin
            else:
                lb_x = max(window.xl, floor_margin)
                ub_x = min(window.xr, area.width - floor_margin)
                lb_y = max(window.yl, floor_margin)
                ub_y = min(window.yu, area.height - floor_margin)
                if lb_x > ub_x or lb_y > ub_y:
                    lb_x, ub_x = floor_margin, area.width - floor_margin
                    lb_y, ub_y = floor_margin, area.height - floor_margin
            xs.append(
                self.model.add_continuous(f"net[{net.name}].x[{index}]", lb=lb_x, ub=ub_x)
            )
            ys.append(
                self.model.add_continuous(f"net[{net.name}].y[{index}]", lb=lb_y, ub=ub_y)
            )

        segments = [
            self._build_segment(net, index, xs, ys, half_width)
            for index in range(count - 1)
        ]
        self._add_no_reversal_constraints(net, segments)
        bend_vars = self._build_bends(net, segments)

        geometric_length = LinExpr.sum(segment.length for segment in segments)
        bend_count = LinExpr.sum(bend_vars) if bend_vars else LinExpr()
        equivalent_length = geometric_length + bend_count * delta

        target = self._net_target(net)
        net_vars = NetVars(
            name=net.name,
            xs=xs,
            ys=ys,
            segments=segments,
            bend_vars=bend_vars,
            geometric_length=geometric_length,
            equivalent_length=equivalent_length,
            bend_count=bend_count,
            target_length=target,
        )

        if self.options.exact_lengths:
            self.model.add_constraint(
                equivalent_length == target, name=f"net[{net.name}].exact_length"
            )
        else:
            slack = self.model.add_continuous(
                f"net[{net.name}].length_slack", lb=0.0, ub=self.big_m
            )
            self.model.add_constraint(
                slack >= LinExpr({}, target) - equivalent_length,
                name=f"net[{net.name}].under",
            )
            self.model.add_constraint(
                slack >= equivalent_length - target, name=f"net[{net.name}].over"
            )
            net_vars.length_slack = slack
        return net_vars

    def _build_segment(
        self,
        net: MicrostripNet,
        index: int,
        xs: Sequence[Variable],
        ys: Sequence[Variable],
        half_width: float,
    ) -> SegmentVars:
        """Direction binaries, length linearisation and the expanded box."""
        model = self.model
        area = self.netlist.area
        x_a, y_a = xs[index], ys[index]
        x_b, y_b = xs[index + 1], ys[index + 1]
        prefix = f"net[{net.name}].seg[{index}]"

        directions = {
            direction: model.add_binary(f"{prefix}.s_{direction}")
            for direction in DIRECTIONS
        }
        exactly_one(model, list(directions.values()), name=f"{prefix}.one_direction")

        # The segment can never be longer than the spread of its two chain
        # points' variable bounds; using that spread as the length bound and
        # deriving the big-M of the conditional equalities from it keeps the
        # LP relaxation tight, which matters enormously for solver
        # performance in the window-confined phases.  A deactivated length
        # equality must tolerate |length - (coordinate difference)|, which is
        # at most the length bound plus the coordinate spread, hence the
        # factor of two.
        span_x = max(x_a.ub, x_b.ub) - min(x_a.lb, x_b.lb)
        span_y = max(y_a.ub, y_b.ub) - min(y_a.lb, y_b.lb)
        length_bound = min(area.width + area.height, span_x + span_y)
        local_m = min(self.big_m, 2.0 * (span_x + span_y) + 1.0)

        length = model.add_continuous(f"{prefix}.len", lb=0.0, ub=length_bound)

        # Equation (6), linearised with conditional equalities: the selected
        # direction fixes which coordinate difference the length equals and
        # forces the perpendicular coordinates to coincide.
        equal_if(model, directions["r"], length, x_b - x_a, local_m, f"{prefix}.len_r")
        equal_if(model, directions["r"], y_b, y_a, local_m, f"{prefix}.straight_r")
        equal_if(model, directions["l"], length, x_a - x_b, local_m, f"{prefix}.len_l")
        equal_if(model, directions["l"], y_b, y_a, local_m, f"{prefix}.straight_l")
        equal_if(model, directions["u"], length, y_b - y_a, local_m, f"{prefix}.len_u")
        equal_if(model, directions["u"], x_b, x_a, local_m, f"{prefix}.straight_u")
        equal_if(model, directions["d"], length, y_a - y_b, local_m, f"{prefix}.len_d")
        equal_if(model, directions["d"], x_b, x_a, local_m, f"{prefix}.straight_d")

        # Expanded bounding box of the segment (Figure 2(a) plus the optional
        # Phase-1 reservation margin of Figure 8).  The box is constrained to
        # *cover* the segment; spacing constraints only push boxes apart, so
        # at any optimum the box hugs the segment.
        margin = half_width + self.netlist.technology.clearance + self.options.extra_segment_margin
        slack_extent = margin + 10.0
        box_xl = model.add_continuous(
            f"{prefix}.box_xl", lb=-slack_extent, ub=area.width + slack_extent
        )
        box_xr = model.add_continuous(
            f"{prefix}.box_xr", lb=-slack_extent, ub=area.width + slack_extent
        )
        box_yl = model.add_continuous(
            f"{prefix}.box_yl", lb=-slack_extent, ub=area.height + slack_extent
        )
        box_yu = model.add_continuous(
            f"{prefix}.box_yu", lb=-slack_extent, ub=area.height + slack_extent
        )
        # Cover rows emitted through the batched fast path: box <= point -+
        # margin per coordinate and chain point.
        cover = ConstraintBatch()
        for side, point, sign, tag in (
            (box_xl, x_a, -1.0, "box_xl_a"),
            (box_xl, x_b, -1.0, "box_xl_b"),
            (box_xr, x_a, 1.0, "box_xr_a"),
            (box_xr, x_b, 1.0, "box_xr_b"),
            (box_yl, y_a, -1.0, "box_yl_a"),
            (box_yl, y_b, -1.0, "box_yl_b"),
            (box_yu, y_a, 1.0, "box_yu_a"),
            (box_yu, y_b, 1.0, "box_yu_b"),
        ):
            if sign < 0:
                # box_min <= point - margin
                cover.add_le(
                    -margin, [(side, 1.0), (point, -1.0)], name=f"{prefix}.{tag}"
                )
            else:
                # box_max >= point + margin
                cover.add_ge(
                    margin, [(side, 1.0), (point, -1.0)], name=f"{prefix}.{tag}"
                )
        model.add_linear_batch(cover)

        return SegmentVars(
            net_name=net.name,
            index=index,
            length=length,
            directions=directions,
            box_xl=box_xl,
            box_xr=box_xr,
            box_yl=box_yl,
            box_yu=box_yu,
        )

    def _add_no_reversal_constraints(
        self, net: MicrostripNet, segments: Sequence[SegmentVars]
    ) -> None:
        """Equations (2)-(5): a segment may not fold back onto its predecessor."""
        batch = ConstraintBatch()
        for previous, current in zip(segments, segments[1:]):
            prefix = f"net[{net.name}].rev[{previous.index}]"
            for a, b in (("u", "d"), ("d", "u"), ("l", "r"), ("r", "l")):
                batch.add_le(
                    1.0,
                    [(previous.directions[a], 1.0), (current.directions[b], 1.0)],
                    name=f"{prefix}.{a}{b}",
                )
        self.model.add_linear_batch(batch)

    def _build_bends(
        self, net: MicrostripNet, segments: Sequence[SegmentVars]
    ) -> List[Variable]:
        """Equations (8)-(10): bend indicators at the interior chain points."""
        model = self.model
        bend_vars: List[Variable] = []
        batch = ConstraintBatch()
        for previous, current in zip(segments, segments[1:]):
            prefix = f"net[{net.name}].bend[{current.index}]"
            t_hv = model.add_binary(f"{prefix}.t_hv")
            u_hv = model.add_binary(f"{prefix}.u_hv")
            t_vh = model.add_binary(f"{prefix}.t_vh")
            u_vh = model.add_binary(f"{prefix}.u_vh")
            bend = model.add_binary(f"{prefix}.t")

            batch.add_eq(
                0.0,
                [
                    (previous.directions["r"], 1.0),
                    (previous.directions["l"], 1.0),
                    (current.directions["u"], 1.0),
                    (current.directions["d"], 1.0),
                    (t_hv, -2.0),
                    (u_hv, -1.0),
                ],
                name=f"{prefix}.hv",
            )
            batch.add_eq(
                0.0,
                [
                    (previous.directions["u"], 1.0),
                    (previous.directions["d"], 1.0),
                    (current.directions["r"], 1.0),
                    (current.directions["l"], 1.0),
                    (t_vh, -2.0),
                    (u_vh, -1.0),
                ],
                name=f"{prefix}.vh",
            )
            batch.add_eq(
                0.0,
                [(bend, 1.0), (t_hv, -1.0), (t_vh, -1.0)],
                name=f"{prefix}.sum",
            )
            bend_vars.append(bend)
        model.add_linear_batch(batch)
        return bend_vars

    # ------------------------------------------------------------------ #
    # connections (equation (14))
    # ------------------------------------------------------------------ #

    def _build_connections(self) -> None:
        for net in self.netlist.microstrips:
            net_vars = self._nets[net.name]
            endpoints = (
                (net.start, net_vars.xs[0], net_vars.ys[0]),
                (net.end, net_vars.xs[-1], net_vars.ys[-1]),
            )
            for terminal, x_var, y_var in endpoints:
                device = self.netlist.device(terminal.device)
                device_vars = self._devices[terminal.device]
                if self.options.blurred_devices:
                    offset_x = LinExpr({}, 0.0)
                    offset_y = LinExpr({}, 0.0)
                elif device_vars.rotation_vars:
                    pin = device.pin(terminal.pin)
                    offset_x = LinExpr.sum(
                        device_vars.rotation_vars[r] * pin.offset(r).x for r in Rotation
                    )
                    offset_y = LinExpr.sum(
                        device_vars.rotation_vars[r] * pin.offset(r).y for r in Rotation
                    )
                else:
                    offset = device.pin(terminal.pin).offset(device_vars.fixed_rotation)
                    offset_x = LinExpr({}, offset.x)
                    offset_y = LinExpr({}, offset.y)
                name = f"conn[{net.name}->{terminal.device}.{terminal.pin}]"
                self.model.add_constraint(
                    LinExpr.from_value(x_var) == device_vars.x + offset_x,
                    name=f"{name}.x",
                )
                self.model.add_constraint(
                    LinExpr.from_value(y_var) == device_vars.y + offset_y,
                    name=f"{name}.y",
                )

    # ------------------------------------------------------------------ #
    # spacing / non-overlap (equations (16)-(20))
    # ------------------------------------------------------------------ #

    def _collect_blocks(self) -> None:
        clearance = self.netlist.technology.clearance
        area = self.netlist.area

        for net in self.netlist.microstrips:
            net_vars = self._nets[net.name]
            for segment in net_vars.segments:
                bounds = self._segment_static_bounds(net.name, segment.index)
                self._blocks.append(
                    _Block(
                        label=f"net:{net.name}[{segment.index}]",
                        xl=LinExpr.from_value(segment.box_xl),
                        xr=LinExpr.from_value(segment.box_xr),
                        yl=LinExpr.from_value(segment.box_yl),
                        yu=LinExpr.from_value(segment.box_yu),
                        kind="segment",
                        net_name=net.name,
                        segment_index=segment.index,
                        static_bounds=bounds,
                    )
                )

        if not self.options.include_device_blocks or self.options.blurred_devices:
            return
        for device in self.netlist.devices:
            device_vars = self._devices[device.name]
            window = self._device_window(device)
            max_half = max(device.width, device.height) / 2.0 + clearance
            bounds = Rect(
                window.xl - max_half,
                window.yl - max_half,
                min(window.xr + max_half, area.width + max_half),
                min(window.yu + max_half, area.height + max_half),
            )
            self._blocks.append(
                _Block(
                    label=f"dev:{device.name}",
                    xl=device_vars.x - device_vars.half_width - clearance,
                    xr=device_vars.x + device_vars.half_width + clearance,
                    yl=device_vars.y - device_vars.half_height - clearance,
                    yu=device_vars.y + device_vars.half_height + clearance,
                    kind="device",
                    device_name=device.name,
                    static_bounds=bounds,
                )
            )

    def _segment_static_bounds(self, net_name: str, index: int) -> Optional[Rect]:
        """Conservative reachable region of a segment box (for pair pruning)."""
        window_a = self._chain_window(net_name, index)
        window_b = self._chain_window(net_name, index + 1)
        if window_a is None or window_b is None:
            return None
        net = self.netlist.microstrip(net_name)
        margin = (
            self.netlist.microstrip_width(net) / 2.0
            + self.netlist.technology.clearance
            + self.options.extra_segment_margin
        )
        return Rect(
            min(window_a.xl, window_b.xl) - margin,
            min(window_a.yl, window_b.yl) - margin,
            max(window_a.xr, window_b.xr) + margin,
            max(window_a.yu, window_b.yu) + margin,
        )

    def _spacing_exempt(self, first: _Block, second: _Block) -> bool:
        """Pairs that are electrically joined and therefore allowed to touch."""
        if frozenset((first.label, second.label)) in self.options.spacing_exempt_pairs:
            return True
        if first.kind == "segment" and second.kind == "segment":
            if self._pair_forced(first, second):
                return False
            if first.net_name == second.net_name:
                if self.options.same_net_spacing:
                    # Adjacent segments always share a chain point.
                    return abs(first.segment_index - second.segment_index) <= 1
                return True
            return self._segments_share_terminal(first, second)
        if {first.kind, second.kind} == {"segment", "device"}:
            segment = first if first.kind == "segment" else second
            device = first if first.kind == "device" else second
            return self._segment_terminates_on_device(segment, device)
        return False

    def _pair_forced(self, first: _Block, second: _Block) -> bool:
        """Whether this segment pair's spacing exemption has been revoked."""
        if first.kind != "segment" or second.kind != "segment":
            return False
        if first.net_name == second.net_name:
            return False
        return (
            frozenset((first.net_name, second.net_name))
            in self.options.forced_spacing_pairs
        )

    def _segments_share_terminal(self, first: _Block, second: _Block) -> bool:
        """End segments of two nets meeting at the same device may touch.

        Pins of a single device are routinely closer together than the
        inter-line spacing rule (a transistor's drain and source, say), so
        the last segments of the lines landing there are allowed to approach
        each other; everywhere else the full spacing applies.
        """
        net_a = self.netlist.microstrip(first.net_name)
        net_b = self.netlist.microstrip(second.net_name)
        ends_a = self._end_terminals(net_a, first.segment_index)
        ends_b = self._end_terminals(net_b, second.segment_index)
        if not ends_a or not ends_b:
            return False
        devices_a = {terminal.device for terminal in ends_a}
        devices_b = {terminal.device for terminal in ends_b}
        return bool(devices_a & devices_b)

    def _end_terminals(self, net: MicrostripNet, segment_index: int) -> List:
        """Terminals adjacent to a segment if it is the first or last one."""
        count = self._chain_point_count(net)
        terminals = []
        if segment_index == 0:
            terminals.append(net.start)
        if segment_index == count - 2:
            terminals.append(net.end)
        return terminals

    def _segment_terminates_on_device(self, segment: _Block, device: _Block) -> bool:
        net = self.netlist.microstrip(segment.net_name)
        terminals = self._end_terminals(net, segment.segment_index)
        return any(terminal.device == device.device_name for terminal in terminals)

    def _pairs_can_interact(self, first: _Block, second: _Block) -> bool:
        """Static pruning: skip pairs whose reachable regions cannot overlap."""
        if first.static_bounds is None or second.static_bounds is None:
            return True
        return first.static_bounds.overlaps(second.static_bounds)

    def _build_spacing_pairs(self) -> None:
        """Equations (16)-(20), emitted through the batched fast path.

        This is the hottest constraint family (quadratic in block count);
        every row is accumulated as COO triplets against pre-lowered block
        edges and ingested with a single :meth:`Model.add_linear_batch`.
        """
        model = self.model
        allow_overlap = self.options.allow_overlap
        batch = ConstraintBatch()
        for first, second in itertools.combinations(self._blocks, 2):
            if self._spacing_exempt(first, second):
                continue
            if not self._pairs_can_interact(first, second):
                continue
            self._num_pairs += 1
            prefix = f"pair[{first.label}|{second.label}]"
            pair_m = self._pair_big_m(first, second)
            selectors = [model.add_binary(f"{prefix}.u{k}") for k in range(4)]
            slack_h: Optional[Variable] = None
            slack_v: Optional[Variable] = None
            slack_h_terms: List[Tuple[Variable, float]] = []
            slack_v_terms: List[Tuple[Variable, float]] = []
            # Forced (exemption-revoked) pairs are always soft: their
            # segments legitimately meet at a shared pin, so hard
            # separation could be infeasible — the penalised slack merely
            # pushes the crossing apart as far as the geometry allows.
            if allow_overlap or self._pair_forced(first, second):
                slack_h = model.add_continuous(f"{prefix}.dh", lb=0.0, ub=self.big_m)
                slack_v = model.add_continuous(f"{prefix}.dv", lb=0.0, ub=self.big_m)
                self._overlap_slacks.extend([slack_h, slack_v])
                slack_h_terms = [(slack_h, -1.0)]
                slack_v_terms = [(slack_v, -1.0)]

            first_xl, first_xr, first_yl, first_yu = first.lowered_edges()
            second_xl, second_xr, second_yl, second_yu = second.lowered_edges()

            # Equations (16)-(19) with the optional Phase-1 overlap slack:
            # each row reads ``edge_a - edge_b - M u_k - slack <= 0``.
            batch.add_le(
                0.0,
                first_xr,
                ColumnExpr.lower(second_xl, -1.0),
                [(selectors[0], -pair_m)],
                slack_h_terms,
                name=f"{prefix}.left_of",
            )
            batch.add_le(
                0.0,
                second_yu,
                ColumnExpr.lower(first_yl, -1.0),
                [(selectors[1], -pair_m)],
                slack_v_terms,
                name=f"{prefix}.below",
            )
            batch.add_le(
                0.0,
                second_xr,
                ColumnExpr.lower(first_xl, -1.0),
                [(selectors[2], -pair_m)],
                slack_h_terms,
                name=f"{prefix}.right_of",
            )
            batch.add_le(
                0.0,
                first_yu,
                ColumnExpr.lower(second_yl, -1.0),
                [(selectors[3], -pair_m)],
                slack_v_terms,
                name=f"{prefix}.above",
            )
            # Equation (20): at least one separation direction must hold.
            batch.add_le(
                3.0,
                [(selector, 1.0) for selector in selectors],
                name=f"{prefix}.disjunction",
            )
            self._spacing_pairs.append(
                SpacingPairVars(
                    first=first,
                    second=second,
                    selectors=selectors,
                    slack_h=slack_h,
                    slack_v=slack_v,
                    big_m=pair_m,
                )
            )
        model.add_linear_batch(batch)

    def _pair_big_m(self, first: _Block, second: _Block) -> float:
        """Tightest safe big-M for a pair's disjunctive separation constraints.

        The relaxation slack a deactivated constraint needs is bounded by how
        far the two blocks' reachable regions can possibly inter-penetrate,
        which the static window bounds give directly.  Pairs without windows
        (Phase 1, the exact model) fall back to the global constant.
        """
        if first.static_bounds is None or second.static_bounds is None:
            return self.big_m
        a, b = first.static_bounds, second.static_bounds
        reach = max(
            a.xr - b.xl,
            b.xr - a.xl,
            a.yu - b.yl,
            b.yu - a.yl,
        )
        return min(self.big_m, max(reach, 1.0) + 1.0)

    # ------------------------------------------------------------------ #
    # objective (equations (21) and (26))
    # ------------------------------------------------------------------ #

    def _build_objective(self) -> Tuple[Optional[Variable], Optional[Variable]]:
        model = self.model
        weights = self.config.weights

        max_bend = model.add_continuous(
            "obj.max_bends", lb=0.0, ub=float(self.config.max_chain_points)
        )
        total_bends = LinExpr()
        for net_vars in self._nets.values():
            model.add_constraint(
                max_bend >= net_vars.bend_count, name=f"obj.max_bends>={net_vars.name}"
            )
            total_bends += net_vars.bend_count

        objective = weights.alpha * max_bend + weights.beta * total_bends

        max_slack: Optional[Variable] = None
        if not self.options.exact_lengths:
            max_slack = model.add_continuous("obj.max_length_slack", lb=0.0, ub=self.big_m)
            total_slack = LinExpr()
            for net_vars in self._nets.values():
                if net_vars.length_slack is None:
                    continue
                model.add_constraint(
                    max_slack >= net_vars.length_slack,
                    name=f"obj.max_slack>={net_vars.name}",
                )
                total_slack += net_vars.length_slack
            objective = objective + weights.gamma * max_slack + weights.zeta * total_slack

        if self._overlap_slacks:
            objective = objective + weights.eta * lin_sum(self._overlap_slacks)

        model.set_objective(objective, sense="min")
        return max_bend, max_slack
