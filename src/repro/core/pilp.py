"""The progressive ILP-based layout generation flow (P-ILP, Section 5).

:class:`PILPLayoutGenerator` chains the three phases together exactly as
Figure 7 of the paper shows:

1. planar microstrip routing with blurred devices (:mod:`repro.core.phase1`),
2. device visualisation and overlap fixing (:mod:`repro.core.phase2`),
3. iterative refinement with chain-point deletion / insertion and device
   rotation (:mod:`repro.core.phase3`),

and finally checks the result with the independent design-rule checker.  The
intermediate snapshots are kept so that examples and the documentation can
show the same phase-by-phase pictures the paper does.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Union

from repro.errors import InfeasibleModelError
from repro.circuit.netlist import Netlist
from repro.core.checkpoint import (
    CheckpointSink,
    CompletedPhase,
    ReplayedPhase,
    SolveCheckpoint,
)
from repro.core.config import PILPConfig
from repro.core.phase1 import run_phase1
from repro.core.phase2 import run_phase2
from repro.core.phase3 import run_phase3
from repro.core.result import FlowResult, PhaseResult
from repro.layout.drc import run_drc
from repro.layout.export_json import layout_from_dict, layout_to_dict
from repro.layout.layout import Layout
from repro.layout.metrics import compute_metrics


class PILPLayoutGenerator:
    """Generate an RFIC layout with the paper's progressive ILP flow."""

    flow_name = "p-ilp"

    def __init__(self, config: Optional[PILPConfig] = None) -> None:
        self.config = config or PILPConfig()

    def generate(
        self, netlist: Netlist, checkpoint: Optional[CheckpointSink] = None
    ) -> FlowResult:
        """Run all three phases on a netlist and return the final result.

        With a ``checkpoint`` sink the flow becomes crash-resumable: after
        every completed phase (Phase 3: every refinement iteration) the
        loop state is saved through the sink, and a run that finds a
        checkpoint on startup replays the completed phases' bookkeeping and
        continues at the next one.  Each phase is a deterministic function
        of (prior geometry, configuration), so the resumed run settles on
        the same final layout a cold run would — only the wall-clock
        ``runtime_s`` metadata differs.

        Raises
        ------
        InfeasibleModelError
            If Phase 1 cannot find any feasible planar routing, or Phase 2
            cannot re-insert the devices even after widening its confinement
            window.
        """
        start = time.perf_counter()
        config = self.config
        phases: List[Union[PhaseResult, ReplayedPhase]] = []
        completed: List[CompletedPhase] = []
        checkpoint_writes = 0
        resumed_from: Optional[str] = None
        replayed_elapsed = 0.0
        current_layout: Optional[Layout] = None
        initial_best: Optional[Layout] = None
        next_iteration = 0

        state = checkpoint.load() if checkpoint is not None else None
        if state is not None:
            resumed_from = state.stage
            replayed_elapsed = state.elapsed_s
            next_iteration = state.next_iteration
            completed = list(state.completed)
            current_layout = layout_from_dict(state.layout_doc)
            if state.best_layout_doc is not None:
                initial_best = layout_from_dict(state.best_layout_doc)
            for item in state.completed:
                phases.append(
                    ReplayedPhase(item.phase, current_layout, item.summary, item.profile)
                )
        done = {phase.phase for phase in phases}

        def save_checkpoint(
            result: PhaseResult,
            layout: Layout,
            best: Optional[Layout],
            iteration: int,
        ) -> None:
            nonlocal checkpoint_writes
            completed.append(
                CompletedPhase(result.phase, result.summary(), result.profile_entry())
            )
            if checkpoint is None:
                return
            saved = checkpoint.save(
                SolveCheckpoint(
                    stage=result.phase,
                    completed=list(completed),
                    layout_doc=layout_to_dict(layout),
                    best_layout_doc=layout_to_dict(best) if best is not None else None,
                    next_iteration=iteration,
                    objective=result.solution.objective
                    if result.solution.is_feasible
                    else None,
                    elapsed_s=replayed_elapsed + (time.perf_counter() - start),
                )
            )
            if saved:
                checkpoint_writes += 1

        if "phase1" not in done:
            phase1 = run_phase1(netlist, config)
            phases.append(phase1)
            current_layout = phase1.layout
            save_checkpoint(phase1, phase1.layout, None, 0)

        if "phase2" not in done:
            phase2 = self._run_phase2_with_retry(netlist, current_layout, config)
            phases.append(phase2)
            current_layout = phase2.layout
            save_checkpoint(phase2, phase2.layout, None, 0)

        refinement_results, best_layout = run_phase3(
            netlist,
            current_layout,
            config,
            start_iteration=next_iteration,
            initial_best=initial_best,
            on_iteration=save_checkpoint,
        )
        phases.extend(refinement_results)

        final_layout = best_layout.with_simplified_routes()
        metrics_started = time.perf_counter()
        metrics = compute_metrics(final_layout)
        drc_started = time.perf_counter()
        drc = run_drc(final_layout)
        drc_done = time.perf_counter()
        runtime = replayed_elapsed + (drc_done - start)
        final_layout.metadata.update(
            {
                "flow": self.flow_name,
                "circuit": netlist.name,
                "runtime_s": runtime,
                "phases": [phase.phase for phase in phases],
            }
        )
        return FlowResult(
            flow=self.flow_name,
            circuit=netlist.name,
            layout=final_layout,
            metrics=metrics,
            drc=drc,
            runtime=runtime,
            phases=phases,
            timings={
                "metrics_s": drc_started - metrics_started,
                "drc_s": drc_done - drc_started,
            },
            resumed_from_phase=resumed_from,
            resume_saved_s=replayed_elapsed if resumed_from else 0.0,
            checkpoint_writes=checkpoint_writes,
        )

    def snapshots(self, result: FlowResult) -> Dict[str, Layout]:
        """Phase-by-phase layout snapshots (the panels of Figure 7)."""
        snapshots: Dict[str, Layout] = {}
        for phase in result.phases:
            snapshots[phase.phase] = phase.layout
        snapshots["final"] = result.layout
        return snapshots

    # ------------------------------------------------------------------ #

    def _run_phase2_with_retry(
        self, netlist: Netlist, phase1_layout: Layout, config: PILPConfig
    ) -> PhaseResult:
        """Run Phase 2, widening the confinement window once if needed.

        Phase 1 places device points optimistically; occasionally the real
        device outlines cannot all be legalised within τ_d of those points.
        The paper handles this by making τ_d "large enough"; we retry once
        with a doubled window before giving up.
        """
        try:
            return run_phase2(netlist, phase1_layout, config)
        except InfeasibleModelError:
            widened = config.with_updates(confinement_window=2.0 * config.confinement_window)
            return run_phase2(netlist, phase1_layout, widened)


def generate_pilp_layout(
    netlist: Netlist, config: Optional[PILPConfig] = None
) -> FlowResult:
    """Convenience function wrapping :class:`PILPLayoutGenerator`."""
    return PILPLayoutGenerator(config).generate(netlist)
