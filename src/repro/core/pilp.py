"""The progressive ILP-based layout generation flow (P-ILP, Section 5).

:class:`PILPLayoutGenerator` chains the three phases together exactly as
Figure 7 of the paper shows:

1. planar microstrip routing with blurred devices (:mod:`repro.core.phase1`),
2. device visualisation and overlap fixing (:mod:`repro.core.phase2`),
3. iterative refinement with chain-point deletion / insertion and device
   rotation (:mod:`repro.core.phase3`),

and finally checks the result with the independent design-rule checker.  The
intermediate snapshots are kept so that examples and the documentation can
show the same phase-by-phase pictures the paper does.
"""

from __future__ import annotations

import time
from typing import Dict, Optional

from repro.errors import InfeasibleModelError
from repro.circuit.netlist import Netlist
from repro.core.config import PILPConfig
from repro.core.phase1 import run_phase1
from repro.core.phase2 import run_phase2
from repro.core.phase3 import run_phase3
from repro.core.result import FlowResult, PhaseResult
from repro.layout.drc import run_drc
from repro.layout.layout import Layout
from repro.layout.metrics import compute_metrics


class PILPLayoutGenerator:
    """Generate an RFIC layout with the paper's progressive ILP flow."""

    flow_name = "p-ilp"

    def __init__(self, config: Optional[PILPConfig] = None) -> None:
        self.config = config or PILPConfig()

    def generate(self, netlist: Netlist) -> FlowResult:
        """Run all three phases on a netlist and return the final result.

        Raises
        ------
        InfeasibleModelError
            If Phase 1 cannot find any feasible planar routing, or Phase 2
            cannot re-insert the devices even after widening its confinement
            window.
        """
        start = time.perf_counter()
        config = self.config
        phases: list[PhaseResult] = []

        phase1 = run_phase1(netlist, config)
        phases.append(phase1)

        phase2 = self._run_phase2_with_retry(netlist, phase1.layout, config)
        phases.append(phase2)

        refinement_results, best_layout = run_phase3(netlist, phase2.layout, config)
        phases.extend(refinement_results)

        final_layout = best_layout.with_simplified_routes()
        metrics_started = time.perf_counter()
        metrics = compute_metrics(final_layout)
        drc_started = time.perf_counter()
        drc = run_drc(final_layout)
        drc_done = time.perf_counter()
        runtime = drc_done - start
        final_layout.metadata.update(
            {
                "flow": self.flow_name,
                "circuit": netlist.name,
                "runtime_s": runtime,
                "phases": [phase.phase for phase in phases],
            }
        )
        return FlowResult(
            flow=self.flow_name,
            circuit=netlist.name,
            layout=final_layout,
            metrics=metrics,
            drc=drc,
            runtime=runtime,
            phases=phases,
            timings={
                "metrics_s": drc_started - metrics_started,
                "drc_s": drc_done - drc_started,
            },
        )

    def snapshots(self, result: FlowResult) -> Dict[str, Layout]:
        """Phase-by-phase layout snapshots (the panels of Figure 7)."""
        snapshots: Dict[str, Layout] = {}
        for phase in result.phases:
            snapshots[phase.phase] = phase.layout
        snapshots["final"] = result.layout
        return snapshots

    # ------------------------------------------------------------------ #

    def _run_phase2_with_retry(
        self, netlist: Netlist, phase1_layout: Layout, config: PILPConfig
    ) -> PhaseResult:
        """Run Phase 2, widening the confinement window once if needed.

        Phase 1 places device points optimistically; occasionally the real
        device outlines cannot all be legalised within τ_d of those points.
        The paper handles this by making τ_d "large enough"; we retry once
        with a doubled window before giving up.
        """
        try:
            return run_phase2(netlist, phase1_layout, config)
        except InfeasibleModelError:
            widened = config.with_updates(confinement_window=2.0 * config.confinement_window)
            return run_phase2(netlist, phase1_layout, widened)


def generate_pilp_layout(
    netlist: Netlist, config: Optional[PILPConfig] = None
) -> FlowResult:
    """Convenience function wrapping :class:`PILPLayoutGenerator`."""
    return PILPLayoutGenerator(config).generate(netlist)
