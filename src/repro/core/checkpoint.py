"""Per-phase checkpoint state of a progressive solve.

The P-ILP flow is a chain of deterministic phase solves: each phase is a
function of (prior geometry, configuration), and the configuration — seed
included — is part of the job's content hash.  That makes the flow
*resumable*: the geometry at a phase boundary, plus the bookkeeping the
final :class:`~repro.core.result.FlowResult` needs for the phases already
behind it, is everything a fresh process requires to continue at phase
N+1 and settle on the **same** final layout a cold run would have produced
(the sole exception is the wall-clock ``runtime_s`` metadata, which is
inherently run-dependent — see ROADMAP "Durable solves & cache integrity").

This module owns the *state* and its JSON form.  Persistence — staging +
atomic rename into the result cache's ``partial/`` area, digests, fault
points — lives in :mod:`repro.runner.cache`; the flow only sees the small
:class:`CheckpointSink` interface so the core stays free of storage
concerns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.layout.layout import Layout

#: Version of the checkpoint document.  Bump when the state shape (or the
#: resume semantics) change; older checkpoints are then discarded and the
#: solve degrades to a cold start.
CHECKPOINT_SCHEMA_VERSION = 1


@dataclass
class CompletedPhase:
    """Bookkeeping of one phase that finished before the checkpoint."""

    phase: str
    summary: Dict[str, object]
    profile: Dict[str, object]

    def to_doc(self) -> Dict[str, object]:
        return {
            "phase": self.phase,
            "summary": dict(self.summary),
            "profile": dict(self.profile),
        }

    @classmethod
    def from_doc(cls, doc: Dict[str, object]) -> "CompletedPhase":
        return cls(
            phase=str(doc["phase"]),
            summary=dict(doc["summary"]),
            profile=dict(doc["profile"]),
        )


@dataclass
class SolveCheckpoint:
    """Everything needed to resume a progressive solve at the next phase."""

    #: Name of the last completed phase (``"phase1"``, ``"phase3[2]"``, ...).
    stage: str
    #: Per-phase bookkeeping in execution order.
    completed: List[CompletedPhase] = field(default_factory=list)
    #: Layout document at the phase boundary (netlist embedded) — the next
    #: phase's input geometry and warm start.
    layout_doc: Dict[str, object] = field(default_factory=dict)
    #: Phase-3 incumbent layout document (``None`` before Phase 3 starts).
    best_layout_doc: Optional[Dict[str, object]] = None
    #: Index of the next Phase-3 refinement iteration to run.
    next_iteration: int = 0
    #: Incumbent objective of the last completed phase (``None`` when the
    #: phase reported no feasible objective).
    objective: Optional[float] = None
    #: Wall-clock seconds of solve budget the checkpoint represents.
    elapsed_s: float = 0.0

    def to_doc(self) -> Dict[str, object]:
        return {
            "schema": CHECKPOINT_SCHEMA_VERSION,
            "stage": self.stage,
            "completed": [item.to_doc() for item in self.completed],
            "layout": dict(self.layout_doc),
            "best_layout": dict(self.best_layout_doc)
            if self.best_layout_doc is not None
            else None,
            "next_iteration": int(self.next_iteration),
            "objective": self.objective,
            "elapsed_s": float(self.elapsed_s),
        }

    @classmethod
    def from_doc(cls, doc: Dict[str, object]) -> "SolveCheckpoint":
        """Parse a checkpoint document.

        Raises
        ------
        ValueError
            On any malformed or version-mismatched document, so callers can
            treat the checkpoint as torn and fall back to a cold solve.
        """
        try:
            if int(doc["schema"]) != CHECKPOINT_SCHEMA_VERSION:
                raise ValueError(
                    f"checkpoint schema {doc['schema']!r} != "
                    f"{CHECKPOINT_SCHEMA_VERSION}"
                )
            completed = [CompletedPhase.from_doc(item) for item in doc["completed"]]
            if not completed:
                raise ValueError("checkpoint lists no completed phases")
            best = doc.get("best_layout")
            objective = doc.get("objective")
            return cls(
                stage=str(doc["stage"]),
                completed=completed,
                layout_doc=dict(doc["layout"]),
                best_layout_doc=dict(best) if best is not None else None,
                next_iteration=int(doc["next_iteration"]),
                objective=float(objective) if objective is not None else None,
                elapsed_s=float(doc["elapsed_s"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(f"malformed checkpoint document: {exc}") from exc


class ReplayedPhase:
    """Stand-in for a :class:`~repro.core.result.PhaseResult` whose solve
    was skipped because a checkpoint already contained its outcome.

    Carries the stored summary and profile entry *verbatim*, so the final
    result's ``phase_table()`` and ``profile()`` match what the cold run
    recorded.  The per-phase layout snapshot is not preserved across a
    resume; ``layout`` is the checkpoint-boundary geometry for every
    replayed phase.
    """

    def __init__(
        self,
        phase: str,
        layout: Layout,
        summary: Dict[str, object],
        profile: Dict[str, object],
    ) -> None:
        self.phase = phase
        self.layout = layout
        self._summary = dict(summary)
        self._profile = dict(profile)

    def summary(self) -> Dict[str, object]:
        return dict(self._summary)

    def profile_entry(self) -> Dict[str, object]:
        return dict(self._profile)


class CheckpointSink:
    """Interface the flow saves checkpoints through (default: no-op).

    :meth:`save` returns ``True`` only when the checkpoint was durably
    written — persistence failures are *contained* by implementations (a
    checkpoint is an optimisation, never worth failing the solve over).
    """

    def load(self) -> Optional[SolveCheckpoint]:
        return None

    def save(self, checkpoint: SolveCheckpoint) -> bool:  # noqa: ARG002
        return False
