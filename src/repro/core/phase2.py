"""Phase 2 — device visualisation and overlap fixing (Section 5.2).

The blurred devices of Phase 1 are given their real geometry back: device
centres start from the Phase-1 points, microstrip ends snap from the device
point to the actual pin (equation (14) re-enters the model), the reservation
margin around segments is dropped, and device outlines join the non-overlap
constraints.  To keep the model tractable the routing topology found in
Phase 1 is preserved: every chain point and every device centre may move at
most τ_d away from its Phase-1 location, which both bounds the search space
and lets the builder prune non-overlap pairs whose windows can never meet.

Length matching and overlap removal are still handled through the soft
objective (26); Phase 3 iterates until both are exact.
"""

from __future__ import annotations

import time
from typing import Optional

from typing import Dict, Tuple

from repro.errors import InfeasibleModelError
from repro.circuit.netlist import Netlist
from repro.core.config import PILPConfig
from repro.core.model_builder import BuildOptions, RficModelBuilder
from repro.core.result import PhaseResult
from repro.core.seed import relax_seed_overlaps
from repro.core.warm_start import solve_phase_model, warm_start_from_geometry
from repro.core.windows import (
    chain_point_counts,
    chain_positions_from_layout,
    chain_windows_from_positions,
    window_around,
)
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.layout.layout import Layout


def run_phase2(
    netlist: Netlist,
    phase1_layout: Layout,
    config: Optional[PILPConfig] = None,
) -> PhaseResult:
    """Run Phase 2 starting from a Phase-1 layout snapshot.

    Raises
    ------
    InfeasibleModelError
        If no feasible solution exists within the confinement windows (the
        orchestrator retries with a widened window before giving up).
    """
    config = config or PILPConfig()
    start = time.perf_counter()

    tau = config.confinement_window
    positions = chain_positions_from_layout(phase1_layout)
    device_windows, chain_windows, relaxed_points = _phase2_windows(
        netlist, phase1_layout, positions, tau
    )
    options = BuildOptions(
        blurred_devices=False,
        exact_lengths=False,
        allow_overlap=True,
        include_device_blocks=True,
        chain_point_counts=chain_point_counts(positions),
        device_windows=device_windows,
        chain_windows=chain_windows,
        same_net_spacing=config.same_net_spacing,
    )
    builder = RficModelBuilder(netlist, config, options, name=f"phase2[{netlist.name}]")
    build_started = time.perf_counter()
    build = builder.build()
    model_build_time = time.perf_counter() - build_started
    settings = config.phase2
    warm_values = None
    if settings.warm_start:
        # Seed from the legalised Phase-1 geometry: device points pushed
        # apart until their real outlines clear, chain points as routed.
        warm_values = warm_start_from_geometry(
            build,
            relaxed_points,
            {name: list(points) for name, points in positions.items()},
        )
    solution = solve_phase_model(build, settings, warm_values)
    runtime = time.perf_counter() - start
    if not solution.is_feasible:
        raise InfeasibleModelError(
            f"phase 2 for {netlist.name!r} returned {solution.status.value} after "
            f"{runtime:.1f}s ({build.model.statistics()})"
        )

    layout = build.extract_layout(
        solution,
        metadata={
            "flow": "p-ilp",
            "phase": "phase2",
            "solver_status": solution.status.value,
            "confinement_window_um": tau,
        },
    )
    return PhaseResult(
        phase="phase2",
        layout=layout,
        solution=solution,
        runtime=runtime,
        length_errors=build.length_errors(solution),
        bend_counts=build.bend_counts(solution),
        total_overlap=build.total_overlap(solution),
        model_statistics=build.model.statistics(),
        model_build_time=model_build_time,
    )


def _phase2_windows(
    netlist: Netlist,
    phase1_layout: Layout,
    positions: Dict[str, list],
    tau: float,
) -> Tuple[Dict[str, Rect], Dict[Tuple[str, int], Rect], Dict[str, Point]]:
    """Confinement windows for Phase 2, centred on legalised device points.

    Phase 1 treats devices as points, so several of them routinely end up
    closer together than their real outlines allow.  Before the windows are
    drawn the device points are therefore pushed apart until their outlines
    clear each other (the same relaxation used for the seed placement); the
    τ_d windows around these legalised centres are then guaranteed to contain
    an overlap-free arrangement, which is exactly what Phase 2 is asked to
    find.  Chain-point windows grow by however far "their" devices moved so
    the Phase-1 routing topology stays reachable.
    """
    phase1_points = {
        placement.device_name: placement.center
        for placement in phase1_layout.placements
    }
    relaxed = relax_seed_overlaps(phase1_points, netlist)

    device_windows: Dict[str, Rect] = {}
    shift_by_device: Dict[str, float] = {}
    for name, original in phase1_points.items():
        moved = relaxed[name]
        shift_by_device[name] = original.euclidean_distance(moved)
        device_windows[name] = window_around(moved, tau)

    chain_windows: Dict[Tuple[str, int], Rect] = {}
    for net_name, points in positions.items():
        net = netlist.microstrip(net_name)
        slack = max(
            shift_by_device.get(net.start.device, 0.0),
            shift_by_device.get(net.end.device, 0.0),
        )
        for index, point in enumerate(points):
            chain_windows[(net_name, index)] = window_around(
                Point(point.x, point.y), tau + slack
            )
    return device_windows, chain_windows, relaxed
