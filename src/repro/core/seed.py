"""Seed placement used to confine the Phase-1 search space.

The paper solves the Phase-1 model over the whole layout area.  With Gurobi
and half-hour budgets that is viable; with the open-source solvers available
to this reproduction the completely unconfined model converges too slowly to
be practical.  We therefore compute a cheap *seed placement* — a
force-directed (spring) embedding of the device connectivity graph, scaled
into the layout area, with pads projected onto the boundary — and hand
Phase 1 generous confinement corridors centred on the seed.  The ILP still
places devices and routes microstrips *concurrently*; the corridors only
bound how far the concurrent optimisation may wander, exactly like the τ_d
windows the paper itself uses from Phase 2 onwards.  The deviation is
documented in DESIGN.md.
"""

from __future__ import annotations

from typing import Dict, Optional

import networkx as nx

from repro.circuit.netlist import Netlist
from repro.geometry.point import Point


def seed_placement(netlist: Netlist, seed: int = 2016) -> Dict[str, Point]:
    """Compute a deterministic rough placement of every device.

    The device connectivity graph is embedded so that the geometric distance
    between connected devices approximates the microstrip's *required*
    length (Kamada-Kawai layout over target-length graph distances, falling
    back to a spring layout for degenerate graphs), scaled into the layout
    area, pads projected onto the nearest boundary edge, and finally relaxed
    so that no two device outlines overlap.  The resulting seed is only used
    to centre the Phase-1 confinement corridors; the ILP does the actual
    placement.
    """
    area = netlist.area
    graph = nx.Graph()
    graph.add_nodes_from(netlist.device_names)
    for net in netlist.microstrips:
        length = max(net.target_length, 1.0)
        if graph.has_edge(net.start.device, net.end.device):
            existing = graph[net.start.device][net.end.device]["length"]
            graph[net.start.device][net.end.device]["length"] = min(existing, length)
        else:
            graph.add_edge(net.start.device, net.end.device, length=length)

    if graph.number_of_nodes() == 0:
        return {}
    if graph.number_of_nodes() == 1:
        only = next(iter(graph.nodes))
        return {only: Point(area.width / 2.0, area.height / 2.0)}

    positions = _embed_graph(graph, netlist, seed)

    xs = [pos[0] for pos in positions.values()]
    ys = [pos[1] for pos in positions.values()]
    min_x, max_x = min(xs), max(xs)
    min_y, max_y = min(ys), max(ys)
    span_x = max(max_x - min_x, 1e-9)
    span_y = max(max_y - min_y, 1e-9)

    # Keep a margin of the largest device half-dimension so outlines fit.
    margin = max(
        (max(device.width, device.height) / 2.0 for device in netlist.devices),
        default=0.0,
    )
    margin = min(margin, 0.25 * min(area.width, area.height))
    usable_w = area.width - 2.0 * margin
    usable_h = area.height - 2.0 * margin

    seeds: Dict[str, Point] = {}
    for name, (raw_x, raw_y) in positions.items():
        x = margin + (raw_x - min_x) / span_x * usable_w
        y = margin + (raw_y - min_y) / span_y * usable_h
        seeds[name] = Point(x, y)

    for pad in netlist.pads():
        seeds[pad.name] = _project_to_boundary(seeds[pad.name], netlist, pad.name)
    return relax_seed_overlaps(seeds, netlist)


def _embed_graph(graph: nx.Graph, netlist: Netlist, seed: int) -> Dict[str, tuple]:
    """Embed the connectivity graph in the plane.

    Kamada-Kawai over target-length graph distances makes connected devices
    land roughly one required-length apart, which is exactly the geometry a
    fixed-length router wants to start from.  Disconnected components each
    get their own embedding and are then handled by the overlap relaxation.
    """
    diameter_guess = (netlist.area.width + netlist.area.height) / 2.0
    try:
        distances: Dict[str, Dict[str, float]] = {}
        lengths = dict(nx.all_pairs_dijkstra_path_length(graph, weight="length"))
        for source in graph.nodes:
            distances[source] = {}
            for target in graph.nodes:
                if target in lengths.get(source, {}):
                    distances[source][target] = max(lengths[source][target], 1.0)
                else:
                    distances[source][target] = diameter_guess
        return nx.kamada_kawai_layout(graph, dist=distances)
    except Exception:  # pragma: no cover - networkx numerical corner cases
        return nx.spring_layout(graph, seed=seed, iterations=200)


def relax_seed_overlaps(
    seeds: Dict[str, Point],
    netlist: Netlist,
    iterations: int = 150,
) -> Dict[str, Point]:
    """Push overlapping device seeds apart until outlines clear each other.

    A simple pairwise repulsion: whenever two devices are closer than the sum
    of their half-extents plus the spacing rule, both are moved apart along
    the line between them (pads only slide along their boundary edge).  This
    guarantees the Phase-1 corridors are centred on a physically plausible
    arrangement.
    """
    area = netlist.area
    spacing = netlist.technology.spacing
    current = dict(seeds)
    devices = [netlist.device(name) for name in current]

    def required_gap(a, b) -> float:
        return (
            max(a.width, a.height) / 2.0 + max(b.width, b.height) / 2.0 + spacing
        )

    for _ in range(iterations):
        moved = False
        for index, first in enumerate(devices):
            for second in devices[index + 1 :]:
                p1, p2 = current[first.name], current[second.name]
                gap = required_gap(first, second)
                dx, dy = p2.x - p1.x, p2.y - p1.y
                distance = (dx * dx + dy * dy) ** 0.5
                if distance >= gap:
                    continue
                moved = True
                if distance < 1e-6:
                    # Coincident seeds: separate along x deterministically.
                    dx, dy, distance = 1.0, 0.0, 1.0
                push = 0.5 * (gap - distance) / distance
                shift_x, shift_y = dx * push, dy * push
                current[first.name] = _clamp_seed(
                    Point(p1.x - shift_x, p1.y - shift_y), first, netlist
                )
                current[second.name] = _clamp_seed(
                    Point(p2.x + shift_x, p2.y + shift_y), second, netlist
                )
        if not moved:
            break
    return current


def _clamp_seed(point: Point, device, netlist: Netlist) -> Point:
    """Keep a seed inside the area; pads stay glued to their boundary edge."""
    area = netlist.area
    half_w = device.width / 2.0
    half_h = device.height / 2.0
    x = min(max(point.x, half_w), area.width - half_w)
    y = min(max(point.y, half_h), area.height - half_h)
    clamped = Point(x, y)
    if device.is_pad:
        return _project_to_boundary(clamped, netlist, device.name)
    return clamped


def _project_to_boundary(point: Point, netlist: Netlist, device_name: str) -> Point:
    """Move a pad seed onto the nearest boundary edge (outline kept inside)."""
    area = netlist.area
    device = netlist.device(device_name)
    half_w = device.width / 2.0
    half_h = device.height / 2.0
    candidates = [
        Point(half_w, min(max(point.y, half_h), area.height - half_h)),
        Point(area.width - half_w, min(max(point.y, half_h), area.height - half_h)),
        Point(min(max(point.x, half_w), area.width - half_w), half_h),
        Point(min(max(point.x, half_w), area.width - half_w), area.height - half_h),
    ]
    return min(candidates, key=point.euclidean_distance)


def spread_boundary_pads(
    seeds: Dict[str, Point], netlist: Netlist, minimum_gap: Optional[float] = None
) -> Dict[str, Point]:
    """Nudge pads sharing a boundary edge apart so their seeds do not collide.

    The spring embedding can put several pads on the same spot of the same
    edge; Phase 1 would then start from heavily overlapping corridors.  Pads
    on each edge are re-spaced evenly while keeping their relative order.
    """
    area = netlist.area
    pads = [device for device in netlist.pads() if device.name in seeds]
    if not pads:
        return dict(seeds)
    if minimum_gap is None:
        minimum_gap = max(max(p.width, p.height) for p in pads) + netlist.technology.spacing

    adjusted = dict(seeds)
    edges: Dict[str, list] = {"left": [], "right": [], "bottom": [], "top": []}
    for pad in pads:
        point = seeds[pad.name]
        distances = {
            "left": abs(point.x - pad.width / 2.0),
            "right": abs(area.width - pad.width / 2.0 - point.x),
            "bottom": abs(point.y - pad.height / 2.0),
            "top": abs(area.height - pad.height / 2.0 - point.y),
        }
        edge = min(distances, key=distances.get)
        edges[edge].append(pad)

    for edge, edge_pads in edges.items():
        if len(edge_pads) < 2:
            continue
        horizontal = edge in ("bottom", "top")
        extent = area.width if horizontal else area.height
        ordered = sorted(
            edge_pads,
            key=lambda pad: seeds[pad.name].x if horizontal else seeds[pad.name].y,
        )
        pitch = extent / (len(ordered) + 1)
        for index, pad in enumerate(ordered, start=1):
            coordinate = pitch * index
            old = adjusted[pad.name]
            if horizontal:
                adjusted[pad.name] = Point(coordinate, old.y)
            else:
                adjusted[pad.name] = Point(old.x, coordinate)
    return adjusted
