"""Phase 3 — iterative layout refinement (Section 5.3).

Starting from the Phase-2 layout, the optimisation problem (26)-(28) is
solved repeatedly.  Between solves the model itself is refined:

* **chain-point deletion** — chain points at which no bend was formed are
  removed (the two adjacent segments run in the same direction, so the point
  only enlarges the model),
* **chain-point insertion** — nets whose equivalent length still misses the
  target, or which are involved in residual overlap, receive an extra chain
  point so the router can fold in a detour (Figure 10),
* **device rotation** — devices touching the remaining problems are allowed
  to pick a new orientation.

Chain points and devices stay confined to τ_d windows around their current
coordinates.  The penalty weights on unmatched length and overlap escalate
from iteration to iteration, and once the length error is already small the
iteration switches to the hard exact-length constraint (13), falling back to
the soft model if that turns out to be infeasible within its window.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import InfeasibleModelError
from repro.circuit.netlist import Netlist
from repro.core.config import PILPConfig
from repro.core.model_builder import BuildOptions, RficModelBuilder
from repro.core.result import PhaseResult
from repro.core.warm_start import solve_phase_model, warm_start_from_geometry
from repro.core.windows import (
    chain_windows_from_positions,
    device_windows_from_layout,
    window_around,
)
from repro.geometry.point import Point, midpoint
from repro.layout.drc import DRCReport, run_drc
from repro.layout.layout import Layout

#: Escalation factor applied to the length / overlap penalty weights at every
#: refinement iteration.
_WEIGHT_ESCALATION = 3.0

#: Maximum number of devices granted rotation freedom per iteration (keeps the
#: per-iteration model growth bounded).
_MAX_ROTATABLE_PER_ITERATION = 8


@dataclass
class RefinementPlan:
    """What a single Phase-3 iteration changes relative to the current layout."""

    chain_positions: Dict[str, List[Point]]
    inserted_points: Dict[str, int]
    deleted_points: Dict[str, int]
    rotatable_devices: Set[str]
    use_exact_lengths: bool
    #: Net pairs whose centre lines were found crossing; their spacing
    #: exemption is revoked (softly) so the overlap penalty untangles them.
    forced_spacing_pairs: Set[frozenset] = field(default_factory=set)


def plan_refinement(
    netlist: Netlist,
    layout: Layout,
    config: PILPConfig,
    drc_report: Optional[DRCReport] = None,
    allow_exact: bool = False,
) -> RefinementPlan:
    """Decide deletions, insertions and rotation freedom for one iteration."""
    drc_report = drc_report if drc_report is not None else run_drc(layout)
    delta = netlist.technology.bend_compensation
    troubled_nets = _nets_with_drc_problems(drc_report)
    troubled_devices = _devices_with_drc_problems(drc_report)

    chain_positions: Dict[str, List[Point]] = {}
    inserted: Dict[str, int] = {}
    deleted: Dict[str, int] = {}

    for net in netlist.microstrips:
        route = layout.route(net.name)
        simplified = route.path.simplified()
        removed = len(route.path.points) - len(simplified.points)
        if removed > 0:
            deleted[net.name] = removed
        points = list(simplified.points)

        length_error = abs(simplified.equivalent_length(delta) - net.target_length)
        needs_detour = (
            length_error > config.length_tolerance or net.name in troubled_nets
        )
        room_left = config.max_chain_points - len(points)
        if needs_detour:
            # Guarantee enough corners for a detour: a fold needs at least
            # four segments, and problem nets get one extra corner to work with.
            to_insert = max(0, min(room_left, max(5 - len(points), 1)))
            for _ in range(to_insert):
                points = _insert_midpoint(points)
            if to_insert:
                inserted[net.name] = to_insert
        chain_positions[net.name] = points

    rotatable = _select_rotatable_devices(netlist, troubled_nets, troubled_devices)
    max_error = _max_length_error(netlist, layout)
    # The hard exact-length constraint (13) is attempted as soon as the
    # remaining error is plausibly fixable inside the refinement window:
    # every inserted detour can absorb roughly two window-widths of length.
    use_exact = allow_exact and max_error <= 2.0 * config.refinement_window
    return RefinementPlan(
        chain_positions=chain_positions,
        inserted_points=inserted,
        deleted_points=deleted,
        rotatable_devices=rotatable,
        use_exact_lengths=use_exact,
        forced_spacing_pairs=_crossing_net_pairs(drc_report),
    )


def run_phase3_iteration(
    netlist: Netlist,
    layout: Layout,
    config: PILPConfig,
    iteration: int,
    plan: Optional[RefinementPlan] = None,
) -> PhaseResult:
    """Solve one refinement iteration starting from ``layout``."""
    start = time.perf_counter()
    plan = plan or plan_refinement(netlist, layout, config, allow_exact=iteration > 0)

    escalation = _WEIGHT_ESCALATION ** iteration
    weights = config.weights
    escalated = config.with_updates(
        weights=type(weights)(
            alpha=weights.alpha,
            beta=weights.beta,
            gamma=weights.gamma * escalation,
            zeta=weights.zeta * escalation,
            eta=weights.eta * escalation,
        )
    )

    # The refinement window is normally small (the topology is fixed), but a
    # net that still misses its length badly needs room for a deeper detour,
    # so the window grows with the remaining error up to the Phase-2 window.
    residual_error = _max_length_error(netlist, layout)
    tau = min(
        config.confinement_window,
        max(config.refinement_window, 0.75 * residual_error),
    )
    fixed_rotations = {
        placement.device_name: placement.rotation for placement in layout.placements
    }
    options = BuildOptions(
        blurred_devices=False,
        exact_lengths=plan.use_exact_lengths,
        allow_overlap=not plan.use_exact_lengths,
        include_device_blocks=True,
        chain_point_counts={
            name: len(points) for name, points in plan.chain_positions.items()
        },
        device_windows=device_windows_from_layout(layout, tau),
        chain_windows=chain_windows_from_positions(plan.chain_positions, tau),
        rotatable_devices=set(plan.rotatable_devices),
        fixed_rotations=fixed_rotations,
        same_net_spacing=config.same_net_spacing,
        forced_spacing_pairs=set(plan.forced_spacing_pairs),
    )
    builder = RficModelBuilder(
        netlist, escalated, options, name=f"phase3[{netlist.name}][{iteration}]"
    )
    build_started = time.perf_counter()
    build = builder.build()
    model_build_time = time.perf_counter() - build_started
    settings = config.phase3
    warm_values = None
    if settings.warm_start:
        # Seed from the current layout with the planned chain points (which
        # already reflect this iteration's deletions and insertions).
        warm_values = warm_start_from_geometry(
            build,
            {p.device_name: p.center for p in layout.placements},
            {name: list(points) for name, points in plan.chain_positions.items()},
            rotations=fixed_rotations,
        )
    solution = solve_phase_model(build, settings, warm_values)

    if not solution.is_feasible and plan.use_exact_lengths:
        # The hard-length model can be infeasible inside the current windows;
        # fall back to the soft model for this iteration.
        fallback_plan = RefinementPlan(
            chain_positions=plan.chain_positions,
            inserted_points=plan.inserted_points,
            deleted_points=plan.deleted_points,
            rotatable_devices=plan.rotatable_devices,
            use_exact_lengths=False,
            forced_spacing_pairs=plan.forced_spacing_pairs,
        )
        return run_phase3_iteration(netlist, layout, config, iteration, fallback_plan)

    runtime = time.perf_counter() - start
    if not solution.is_feasible:
        raise InfeasibleModelError(
            f"phase 3 iteration {iteration} for {netlist.name!r} returned "
            f"{solution.status.value} after {runtime:.1f}s"
        )

    refined = build.extract_layout(
        solution,
        metadata={
            "flow": "p-ilp",
            "phase": f"phase3[{iteration}]",
            "solver_status": solution.status.value,
            "exact_lengths": plan.use_exact_lengths,
            "inserted_chain_points": dict(plan.inserted_points),
            "deleted_chain_points": dict(plan.deleted_points),
            "rotatable_devices": sorted(plan.rotatable_devices),
        },
    )
    return PhaseResult(
        phase=f"phase3[{iteration}]",
        layout=refined,
        solution=solution,
        runtime=runtime,
        length_errors=build.length_errors(solution),
        bend_counts=build.bend_counts(solution),
        total_overlap=build.total_overlap(solution),
        model_statistics=build.model.statistics(),
        model_build_time=model_build_time,
    )


def run_phase3(
    netlist: Netlist,
    phase2_layout: Layout,
    config: Optional[PILPConfig] = None,
    *,
    start_iteration: int = 0,
    initial_best: Optional[Layout] = None,
    on_iteration: Optional[
        Callable[[PhaseResult, Layout, Layout, int], None]
    ] = None,
) -> Tuple[List[PhaseResult], Layout]:
    """Iterate refinement until the layout is clean or the budget is spent.

    Returns the per-iteration results and the best layout seen (fewest DRC
    violations, ties broken by total bend count).

    The keyword-only parameters support checkpoint resume: a resumed run
    passes the checkpointed geometry as ``phase2_layout``, the stored
    incumbent as ``initial_best``, and continues at ``start_iteration``.
    Because the loop state is exactly (current layout, incumbent,
    iteration index) — ``best_key`` is recomputed deterministically — the
    resumed iterations are identical to the ones a cold run would have
    executed.  ``on_iteration(result, current, best, next_iteration)`` is
    invoked after each completed iteration so callers can persist that
    state.
    """
    config = config or PILPConfig()
    current = phase2_layout
    results: List[PhaseResult] = []
    best_layout = initial_best if initial_best is not None else phase2_layout
    best_key = _quality_key(netlist, best_layout)

    if start_iteration > 0:
        # Re-evaluate the stop conditions the checkpointed run faced at the
        # end of its last iteration: a run that stopped because it was DRC
        # clean must not burn an extra iteration after resume.
        current_key = _quality_key(netlist, current)
        if current_key[0] == 0 or start_iteration >= config.max_refinement_iterations:
            return results, best_layout

    for iteration in range(start_iteration, config.max_refinement_iterations):
        report = run_drc(current)
        plan = plan_refinement(
            netlist, current, config, drc_report=report, allow_exact=True
        )
        try:
            result = run_phase3_iteration(netlist, current, config, iteration, plan)
        except InfeasibleModelError:
            # Refinement is best-effort: an iteration whose solver budget
            # expires without any incumbent must not discard the complete
            # layout the earlier phases already produced.
            break
        results.append(result)
        current = result.layout

        key = _quality_key(netlist, current)
        if key < best_key:
            best_key = key
            best_layout = current
        if on_iteration is not None:
            on_iteration(result, current, best_layout, iteration + 1)
        if key[0] == 0:
            # DRC clean: lengths exact, no overlaps, planar — we are done.
            break
    return results, best_layout


# --------------------------------------------------------------------------- #
# helpers
# --------------------------------------------------------------------------- #


def _insert_midpoint(points: List[Point]) -> List[Point]:
    """Insert a chain point in the middle of the longest segment."""
    if len(points) < 2:
        return points
    longest_index = 0
    longest_length = -1.0
    for index, (a, b) in enumerate(zip(points, points[1:])):
        length = a.manhattan_distance(b)
        if length > longest_length:
            longest_length = length
            longest_index = index
    a, b = points[longest_index], points[longest_index + 1]
    inserted = midpoint(a, b)
    return points[: longest_index + 1] + [inserted] + points[longest_index + 1 :]


def _nets_with_drc_problems(report: DRCReport) -> Set[str]:
    """Names of nets implicated in any remaining violation."""
    nets: Set[str] = set()
    for violation in report.violations:
        for label in (violation.subject, violation.other):
            if label.startswith("net:"):
                nets.add(label[len("net:"):].split("[", 1)[0])
            elif label and not label.startswith("dev:") and ":" not in label:
                # length-mismatch / open-connection violations carry the bare
                # net name as their subject.
                nets.add(label)
    return nets


def _crossing_net_pairs(report: DRCReport) -> Set[frozenset]:
    """Pairs of net names whose centre lines cross in the current layout."""
    from repro.layout.drc import ViolationKind

    pairs: Set[frozenset] = set()
    for violation in report.violations:
        if violation.kind is ViolationKind.CROSSING and violation.other:
            pairs.add(frozenset((violation.subject, violation.other)))
    return pairs


def _devices_with_drc_problems(report: DRCReport) -> Set[str]:
    devices: Set[str] = set()
    for violation in report.violations:
        for label in (violation.subject, violation.other):
            if label.startswith("dev:"):
                devices.add(label[len("dev:"):])
    return devices


def _select_rotatable_devices(
    netlist: Netlist, troubled_nets: Set[str], troubled_devices: Set[str]
) -> Set[str]:
    """Devices granted rotation freedom this iteration."""
    candidates: Set[str] = set()
    for name in troubled_devices:
        if netlist.has_device(name) and netlist.device(name).rotatable:
            candidates.add(name)
    for net_name in troubled_nets:
        if net_name not in netlist.microstrip_names:
            continue
        net = netlist.microstrip(net_name)
        for terminal in net.terminals:
            device = netlist.device(terminal.device)
            if device.rotatable and not device.is_pad:
                candidates.add(device.name)
    return set(sorted(candidates)[:_MAX_ROTATABLE_PER_ITERATION])


def _max_length_error(netlist: Netlist, layout: Layout) -> float:
    delta = netlist.technology.bend_compensation
    errors = []
    for net in netlist.microstrips:
        if layout.has_route(net.name):
            errors.append(abs(layout.route(net.name).length_error(net, delta)))
    return max(errors) if errors else 0.0


def _quality_key(netlist: Netlist, layout: Layout) -> Tuple[int, float, int]:
    """Ordering key: fewer DRC violations, smaller length error, fewer bends."""
    report = run_drc(layout)
    delta = netlist.technology.bend_compensation
    total_bends = sum(route.bend_count for route in layout.routes)
    return (report.count(), round(_max_length_error(netlist, layout), 3), total_bends)
