"""The paper's core contribution: concurrent placement + fixed-length routing.

``ExactLayoutGenerator`` solves the complete Section-4 ILP in one shot;
``PILPLayoutGenerator`` runs the three-phase progressive flow of Section 5.
Both return a :class:`~repro.core.result.FlowResult` containing the final
layout, its metrics, a DRC report and per-phase diagnostics.
"""

from repro.core.config import ObjectiveWeights, PhaseSettings, PILPConfig
from repro.core.model_builder import (
    BuildOptions,
    BuildResult,
    DeviceVars,
    NetVars,
    RficModelBuilder,
    SegmentVars,
)
from repro.core.result import FlowResult, PhaseResult
from repro.core.exact import ExactLayoutGenerator, generate_exact_layout
from repro.core.phase1 import run_phase1
from repro.core.phase2 import run_phase2
from repro.core.phase3 import (
    RefinementPlan,
    plan_refinement,
    run_phase3,
    run_phase3_iteration,
)
from repro.core.pilp import PILPLayoutGenerator, generate_pilp_layout
from repro.core.warm_start import (
    warm_start_from_geometry,
    warm_start_from_layout,
    warm_start_from_seeds,
)
from repro.core.windows import (
    chain_point_counts,
    chain_positions_from_layout,
    chain_windows_from_positions,
    device_windows_from_layout,
    mean_device_extent,
    window_around,
)

__all__ = [
    "PILPConfig",
    "ObjectiveWeights",
    "PhaseSettings",
    "RficModelBuilder",
    "BuildOptions",
    "BuildResult",
    "DeviceVars",
    "NetVars",
    "SegmentVars",
    "FlowResult",
    "PhaseResult",
    "ExactLayoutGenerator",
    "generate_exact_layout",
    "PILPLayoutGenerator",
    "generate_pilp_layout",
    "run_phase1",
    "run_phase2",
    "run_phase3",
    "run_phase3_iteration",
    "plan_refinement",
    "RefinementPlan",
    "warm_start_from_geometry",
    "warm_start_from_layout",
    "warm_start_from_seeds",
    "window_around",
    "device_windows_from_layout",
    "chain_positions_from_layout",
    "chain_windows_from_positions",
    "chain_point_counts",
    "mean_device_extent",
]
