"""Confinement-window helpers shared by Phases 2 and 3.

Section 5.2 of the paper: once the routing topology is fixed by Phase 1,
chain points and devices are only allowed to move within a window of size
τ_d centred on their current coordinates.  These helpers derive such windows
from a layout snapshot.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Tuple

from repro.circuit.netlist import Netlist
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.layout.layout import Layout


def window_around(point: Point, tau: float) -> Rect:
    """Square window of half-size ``tau`` centred on a point."""
    return Rect(point.x - tau, point.y - tau, point.x + tau, point.y + tau)


def device_windows_from_layout(layout: Layout, tau: float) -> Dict[str, Rect]:
    """τ_d windows around every placed device centre."""
    windows: Dict[str, Rect] = {}
    for placement in layout.placements:
        windows[placement.device_name] = window_around(placement.center, tau)
    return windows


def chain_positions_from_layout(layout: Layout) -> Dict[str, List[Point]]:
    """Current chain-point coordinates of every routed net."""
    return {route.net_name: list(route.path.points) for route in layout.routes}


def chain_windows_from_positions(
    positions: Mapping[str, List[Point]], tau: float
) -> Dict[Tuple[str, int], Rect]:
    """τ_d windows around given chain-point positions."""
    windows: Dict[Tuple[str, int], Rect] = {}
    for net_name, points in positions.items():
        for index, point in enumerate(points):
            windows[(net_name, index)] = window_around(point, tau)
    return windows


def chain_point_counts(positions: Mapping[str, List[Point]]) -> Dict[str, int]:
    """Number of chain points per net implied by a set of positions."""
    return {net_name: len(points) for net_name, points in positions.items()}


def mean_device_extent(netlist: Netlist, include_pads: bool = False) -> float:
    """Average of ``(width + height) / 2`` over the netlist's devices.

    Used to size the Phase-1 space reservation (Figure 8): segments are
    expanded by a fraction of the typical device extent so that, once devices
    are visualised again in Phase 2, there is room to slot them in.
    """
    devices = netlist.devices if include_pads else netlist.non_pads()
    if not devices:
        devices = netlist.devices
    if not devices:
        return 0.0
    return sum((device.width + device.height) / 2.0 for device in devices) / len(devices)
