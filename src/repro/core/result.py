"""Result objects produced by the exact and progressive flows."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.ilp.solution import Solution
from repro.layout.drc import DRCReport
from repro.layout.layout import Layout
from repro.layout.metrics import LayoutMetrics


@dataclass
class PhaseResult:
    """Outcome of a single optimisation phase (or refinement iteration).

    Attributes
    ----------
    phase:
        Identifier such as ``"phase1"``, ``"phase2"``, ``"phase3[2]"`` or
        ``"exact"``.
    layout:
        Layout snapshot extracted from the phase's solution.
    solution:
        Raw solver outcome.
    runtime:
        Wall-clock seconds spent building and solving the phase model.
    length_errors:
        Signed equivalent-length error per net (against the phase's targets).
    bend_counts:
        Bend count per net.
    total_overlap:
        Sum of residual overlap slack (zero when overlap was forbidden).
    model_statistics:
        Variable / constraint counts of the phase model.
    model_build_time:
        Wall-clock seconds spent constructing the phase model (a subset of
        ``runtime``; the remainder is solver time plus layout extraction).
    """

    phase: str
    layout: Layout
    solution: Solution
    runtime: float
    length_errors: Dict[str, float] = field(default_factory=dict)
    bend_counts: Dict[str, int] = field(default_factory=dict)
    total_overlap: float = 0.0
    model_statistics: Dict[str, int] = field(default_factory=dict)
    model_build_time: float = 0.0

    @property
    def max_abs_length_error(self) -> float:
        if not self.length_errors:
            return 0.0
        return max(abs(error) for error in self.length_errors.values())

    @property
    def total_bends(self) -> int:
        return sum(self.bend_counts.values())

    @property
    def max_bends(self) -> int:
        return max(self.bend_counts.values()) if self.bend_counts else 0

    def summary(self) -> Dict[str, object]:
        """Compact dictionary for logs and reports."""
        return {
            "phase": self.phase,
            "status": self.solution.status.value,
            "objective": round(self.solution.objective, 4)
            if self.solution.is_feasible
            else None,
            "runtime_s": round(self.runtime, 2),
            "total_bends": self.total_bends,
            "max_bends": self.max_bends,
            "max_abs_length_error_um": round(self.max_abs_length_error, 3),
            "total_overlap_um": round(self.total_overlap, 3),
        }

    def profile_entry(self) -> Dict[str, object]:
        """This phase's row of :meth:`FlowResult.profile`.

        Splits wall time into model build vs. solver and carries the
        backend's iteration count when it reports one.  Checkpoint resume
        replays these entries verbatim for phases it skips, so the entry
        must be a pure function of the phase outcome.
        """
        entry: Dict[str, object] = {
            "phase": self.phase,
            "wall_s": round(self.runtime, 6),
            "model_build_s": round(self.model_build_time, 6),
            "solver_s": round(self.solution.solve_time, 6),
            "solver_backend": self.solution.backend,
        }
        if self.solution.iterations is not None:
            entry["solver_iterations"] = int(self.solution.iterations)
        return entry


@dataclass
class FlowResult:
    """Final outcome of a layout-generation flow (exact, P-ILP or baseline).

    Attributes
    ----------
    flow:
        Flow identifier (``"p-ilp"``, ``"exact-ilp"``, ``"manual-like"``).
    circuit:
        Netlist name.
    layout:
        The final layout.
    metrics:
        Bend / length metrics of the final layout.
    drc:
        Design-rule report of the final layout.
    runtime:
        Total wall-clock seconds.
    phases:
        Per-phase results in execution order (empty for single-shot flows).
    timings:
        Wall-clock seconds of flow stages outside the phase solves —
        currently ``drc_s`` and ``metrics_s`` (filled by the flows that
        measure them; empty otherwise).
    resumed_from_phase:
        Name of the checkpointed phase this run resumed after, or ``None``
        for a cold solve.
    resume_saved_s:
        Solve budget (wall-clock seconds) the resume skipped re-spending.
    checkpoint_writes:
        Number of phase checkpoints durably written during this run.
    """

    flow: str
    circuit: str
    layout: Layout
    metrics: LayoutMetrics
    drc: DRCReport
    runtime: float
    phases: List[PhaseResult] = field(default_factory=list)
    timings: Dict[str, float] = field(default_factory=dict)
    resumed_from_phase: Optional[str] = None
    resume_saved_s: float = 0.0
    checkpoint_writes: int = 0

    @property
    def is_clean(self) -> bool:
        """True when the final layout passes DRC."""
        return self.drc.is_clean

    def summary(self) -> Dict[str, object]:
        """The Table-1 style row for this flow run."""
        return {
            "flow": self.flow,
            "circuit": self.circuit,
            "area": self.metrics.area_label,
            "max_bends": self.metrics.max_bend_count,
            "total_bends": self.metrics.total_bend_count,
            "runtime_s": round(self.runtime, 2),
            "drc_clean": self.is_clean,
            "drc_violations": self.drc.count(),
            "max_abs_length_error_um": round(self.metrics.max_abs_length_error, 3),
        }

    def phase_table(self) -> List[Dict[str, object]]:
        """Per-phase summaries (for the progressive flow's progress report)."""
        return [phase.summary() for phase in self.phases]

    def profile(self) -> Dict[str, object]:
        """Per-stage cost breakdown of this run (the cache keeps it forever).

        The phase entries split wall time into model build vs. solver and
        carry the backend's iteration count when it reports one, so a perf
        regression in a cached result can be attributed to a stage without
        re-running the flow.
        """
        doc: Dict[str, object] = {
            "phases": [phase.profile_entry() for phase in self.phases],
            "total_s": round(self.runtime, 6),
        }
        for stage, seconds in sorted(self.timings.items()):
            doc[stage] = round(float(seconds), 6)
        if self.resumed_from_phase:
            doc["resumed_from_phase"] = self.resumed_from_phase
            doc["resume_saved_s"] = round(self.resume_saved_s, 6)
        if self.checkpoint_writes:
            doc["checkpoint_writes"] = int(self.checkpoint_writes)
        return doc
