"""The :class:`Layout` container: a netlist plus its placement and routing.

A layout is the *output* of the paper's problem formulation: every device has
a position (and orientation), every microstrip has a chain-point path, and
the whole thing is supposed to respect the spacing / planarity / boundary /
exact-length constraints — which the design-rule checker in
:mod:`repro.layout.drc` verifies independently of the optimiser.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.errors import LayoutError
from repro.circuit.device import Device, Rotation
from repro.circuit.microstrip_net import MicrostripNet
from repro.circuit.netlist import Netlist
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.layout.placement import Placement
from repro.layout.routing import RoutedMicrostrip


class Layout:
    """A (possibly partial) physical realisation of a netlist.

    Parameters
    ----------
    netlist:
        The circuit being laid out.
    placements:
        Initial placements (may be empty and filled in later).
    routes:
        Initial routed microstrips (may be empty and filled in later).
    metadata:
        Free-form information about how the layout was produced (flow name,
        phase snapshots, solver statistics).  Copied on construction.
    """

    def __init__(
        self,
        netlist: Netlist,
        placements: Iterable[Placement] = (),
        routes: Iterable[RoutedMicrostrip] = (),
        metadata: Optional[Mapping[str, object]] = None,
    ) -> None:
        self.netlist = netlist
        self._placements: Dict[str, Placement] = {}
        self._routes: Dict[str, RoutedMicrostrip] = {}
        self.metadata: Dict[str, object] = dict(metadata or {})
        for placement in placements:
            self.set_placement(placement)
        for route in routes:
            self.set_route(route)

    # ------------------------------------------------------------------ #
    # population
    # ------------------------------------------------------------------ #

    def set_placement(self, placement: Placement) -> None:
        """Add or replace the placement of a device."""
        if not self.netlist.has_device(placement.device_name):
            raise LayoutError(
                f"placement references device {placement.device_name!r} which is not "
                f"in netlist {self.netlist.name!r}"
            )
        self._placements[placement.device_name] = placement

    def set_route(self, route: RoutedMicrostrip) -> None:
        """Add or replace the routing of a microstrip."""
        if route.net_name not in self.netlist.microstrip_names:
            raise LayoutError(
                f"route references microstrip {route.net_name!r} which is not in "
                f"netlist {self.netlist.name!r}"
            )
        self._routes[route.net_name] = route

    def place_device(
        self, device_name: str, x: float, y: float, rotation: Rotation = Rotation.R0
    ) -> Placement:
        """Convenience wrapper building and registering a placement."""
        placement = Placement(device_name, Point(x, y), rotation)
        self.set_placement(placement)
        return placement

    # ------------------------------------------------------------------ #
    # accessors
    # ------------------------------------------------------------------ #

    @property
    def placements(self) -> List[Placement]:
        return [self._placements[name] for name in sorted(self._placements)]

    @property
    def routes(self) -> List[RoutedMicrostrip]:
        return [self._routes[name] for name in sorted(self._routes)]

    def placement(self, device_name: str) -> Placement:
        try:
            return self._placements[device_name]
        except KeyError as exc:
            raise LayoutError(f"device {device_name!r} has not been placed") from exc

    def route(self, net_name: str) -> RoutedMicrostrip:
        try:
            return self._routes[net_name]
        except KeyError as exc:
            raise LayoutError(f"microstrip {net_name!r} has not been routed") from exc

    def has_placement(self, device_name: str) -> bool:
        return device_name in self._placements

    def has_route(self, net_name: str) -> bool:
        return net_name in self._routes

    @property
    def is_complete(self) -> bool:
        """True when every device is placed and every microstrip is routed."""
        return len(self._placements) == self.netlist.num_devices and len(
            self._routes
        ) == self.netlist.num_microstrips

    # ------------------------------------------------------------------ #
    # derived geometry
    # ------------------------------------------------------------------ #

    @property
    def boundary(self) -> Rect:
        """The layout area rectangle."""
        return self.netlist.area.rect

    def device_outline(self, device_name: str, clearance: float = 0.0) -> Rect:
        """Outline (optionally expanded) of a placed device."""
        device = self.netlist.device(device_name)
        placement = self.placement(device_name)
        outline = placement.outline(device)
        return outline.expanded(clearance) if clearance else outline

    def pin_position(self, device_name: str, pin_name: str) -> Point:
        """Absolute position of a pin of a placed device."""
        device = self.netlist.device(device_name)
        placement = self.placement(device_name)
        return placement.pin_position(device, pin_name)

    def terminal_positions(self, net: MicrostripNet | str) -> Tuple[Point, Point]:
        """Absolute start / end pin positions a routed net must connect."""
        if isinstance(net, str):
            net = self.netlist.microstrip(net)
        start = self.pin_position(net.start.device, net.start.pin)
        end = self.pin_position(net.end.device, net.end.pin)
        return start, end

    def device_outlines(self, clearance: float = 0.0) -> Dict[str, Rect]:
        """Outlines of all placed devices keyed by ``dev:<name>``."""
        outlines: Dict[str, Rect] = {}
        for name in sorted(self._placements):
            outlines[f"dev:{name}"] = self.device_outline(name, clearance)
        return outlines

    def segment_outlines(self, clearance: float = 0.0) -> Dict[str, Rect]:
        """Per-segment outlines of all routes keyed by ``net:<name>[i]``."""
        outlines: Dict[str, Rect] = {}
        for net_name in sorted(self._routes):
            route = self._routes[net_name]
            for index, segment in enumerate(route.segments()):
                rect = segment.bounding_box(clearance) if clearance else segment.outline()
                outlines[f"net:{net_name}[{index}]"] = rect
        return outlines

    def all_outlines(self, clearance: float = 0.0) -> Dict[str, Rect]:
        """Device and segment outlines combined (for overlap / DRC checks)."""
        outlines = self.device_outlines(clearance)
        outlines.update(self.segment_outlines(clearance))
        return outlines

    def occupied_bounding_box(self) -> Optional[Rect]:
        """Bounding box of everything placed/routed, or ``None`` when empty."""
        rects = list(self.all_outlines().values())
        if not rects:
            return None
        return Rect.bounding(rects)

    # ------------------------------------------------------------------ #
    # copies
    # ------------------------------------------------------------------ #

    def copy(self) -> "Layout":
        """Shallow copy (placements/routes are immutable, so this is safe)."""
        return Layout(
            self.netlist,
            self._placements.values(),
            self._routes.values(),
            metadata=dict(self.metadata),
        )

    def with_simplified_routes(self) -> "Layout":
        """Copy with every route's redundant chain points removed."""
        simplified = [route.simplified() for route in self._routes.values()]
        return Layout(
            self.netlist,
            self._placements.values(),
            simplified,
            metadata=dict(self.metadata),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Layout({self.netlist.name!r}, {len(self._placements)}/"
            f"{self.netlist.num_devices} devices placed, {len(self._routes)}/"
            f"{self.netlist.num_microstrips} microstrips routed)"
        )
