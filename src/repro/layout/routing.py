"""Routed microstrips: the chain-point realisation of each net."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence

from repro.errors import LayoutError
from repro.circuit.microstrip_net import MicrostripNet
from repro.geometry.path import ManhattanPath
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.geometry.segment import Segment


@dataclass(frozen=True)
class RoutedMicrostrip:
    """The routing of one microstrip net.

    Attributes
    ----------
    net_name:
        Name of the :class:`~repro.circuit.microstrip_net.MicrostripNet`.
    path:
        The chain-point path from the start terminal to the end terminal.
        ``path.width`` is the physical microstrip width.
    """

    net_name: str
    path: ManhattanPath

    def __post_init__(self) -> None:
        if not self.net_name:
            raise LayoutError("routed microstrip must name its net")

    # -- geometry ----------------------------------------------------------- #

    @property
    def chain_points(self) -> Sequence[Point]:
        return self.path.points

    @property
    def width(self) -> float:
        return self.path.width

    def segments(self) -> List[Segment]:
        """Non-degenerate segments of the routing."""
        return self.path.segments(drop_degenerate=True)

    def outline_rects(self, clearance: float = 0.0) -> List[Rect]:
        """Per-segment outline rectangles, optionally expanded by clearance."""
        return self.path.outline_rects(clearance)

    # -- metrics ------------------------------------------------------------- #

    @property
    def geometric_length(self) -> float:
        return self.path.geometric_length

    @property
    def bend_count(self) -> int:
        return self.path.bend_count

    def equivalent_length(self, delta: float) -> float:
        """Electrical length including the per-bend compensation δ."""
        return self.path.equivalent_length(delta)

    def length_error(self, net: MicrostripNet, delta: float) -> float:
        """Signed difference between equivalent and required length."""
        if net.name != self.net_name:
            raise LayoutError(
                f"routing of {self.net_name!r} compared against net {net.name!r}"
            )
        return self.equivalent_length(delta) - net.target_length

    # -- editing --------------------------------------------------------------- #

    def simplified(self) -> "RoutedMicrostrip":
        """Drop chain points that do not bend the path (Phase 3 deletion)."""
        return RoutedMicrostrip(self.net_name, self.path.simplified())

    def with_path(self, path: ManhattanPath) -> "RoutedMicrostrip":
        """Return a copy carrying a different path."""
        return RoutedMicrostrip(self.net_name, path)

    # -- serialisation ------------------------------------------------------- #

    def as_dict(self) -> Dict[str, object]:
        return {
            "net": self.net_name,
            "width": self.path.width,
            "points": [[p.x, p.y] for p in self.path.points],
        }

    @staticmethod
    def from_dict(data: Mapping[str, object]) -> "RoutedMicrostrip":
        try:
            points = [Point(float(x), float(y)) for x, y in data["points"]]
            return RoutedMicrostrip(
                net_name=str(data["net"]),
                path=ManhattanPath(points, float(data.get("width", 0.0))),
            )
        except (KeyError, ValueError, TypeError) as exc:
            raise LayoutError(f"malformed routed microstrip record: {exc}") from exc
