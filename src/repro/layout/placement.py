"""Device placements: where each device sits and how it is oriented."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping

from repro.errors import LayoutError
from repro.circuit.device import Device, Rotation
from repro.geometry.point import Point
from repro.geometry.rect import Rect


@dataclass(frozen=True)
class Placement:
    """Position and orientation of one device.

    Attributes
    ----------
    device_name:
        Name of the placed device.
    center:
        Centre of the device outline in layout coordinates (µm).
    rotation:
        Orientation in quarter turns; pads keep ``R0``.
    """

    device_name: str
    center: Point
    rotation: Rotation = Rotation.R0

    def __post_init__(self) -> None:
        if not self.device_name:
            raise LayoutError("placement must name a device")

    def outline(self, device: Device) -> Rect:
        """Outline rectangle of the device under this placement."""
        self._check_device(device)
        return device.outline(self.center, self.rotation)

    def bounding_box(self, device: Device, clearance: float) -> Rect:
        """Outline expanded by the spacing clearance (Figure 2(a))."""
        return self.outline(device).expanded(clearance)

    def pin_position(self, device: Device, pin_name: str) -> Point:
        """Absolute position of a pin under this placement."""
        self._check_device(device)
        return device.pin_position(pin_name, self.center, self.rotation)

    def moved_to(self, center: Point) -> "Placement":
        """Return a copy at a new centre."""
        return Placement(self.device_name, center, self.rotation)

    def rotated(self, rotation: Rotation) -> "Placement":
        """Return a copy with a new orientation."""
        return Placement(self.device_name, self.center, rotation)

    def translated(self, dx: float, dy: float) -> "Placement":
        """Return a copy shifted by ``(dx, dy)``."""
        return Placement(self.device_name, self.center.translated(dx, dy), self.rotation)

    def _check_device(self, device: Device) -> None:
        if device.name != self.device_name:
            raise LayoutError(
                f"placement of {self.device_name!r} queried with device {device.name!r}"
            )

    # -- serialisation ------------------------------------------------------ #

    def as_dict(self) -> Dict[str, object]:
        return {
            "device": self.device_name,
            "x": self.center.x,
            "y": self.center.y,
            "rotation_deg": self.rotation.degrees,
        }

    @staticmethod
    def from_dict(data: Mapping[str, object]) -> "Placement":
        try:
            return Placement(
                device_name=str(data["device"]),
                center=Point(float(data["x"]), float(data["y"])),
                rotation=Rotation.from_degrees(int(data.get("rotation_deg", 0))),
            )
        except (KeyError, ValueError, TypeError) as exc:
            raise LayoutError(f"malformed placement record: {exc}") from exc
