"""Bend smoothing: turning 90° corners into diagonal shortcuts.

Section 2.2 / Figure 3 of the paper: every remaining right-angle bend in the
final layout is replaced by a 45° diagonal shortcut to reduce the
discontinuity loss.  The ILP works entirely on the un-smoothed rectilinear
skeleton and accounts for smoothing through the equivalent-length
compensation ``δ``; smoothing itself is a pure post-processing step applied
here when exporting the final geometry.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List

from repro.errors import LayoutError
from repro.geometry.point import Point
from repro.layout.layout import Layout
from repro.layout.routing import RoutedMicrostrip


@dataclass(frozen=True)
class SmoothedRoute:
    """The octilinear (45°-bend) realisation of one routed microstrip."""

    net_name: str
    vertices: tuple
    width: float

    @property
    def length(self) -> float:
        """Physical centre-line length of the smoothed polyline."""
        total = 0.0
        for a, b in zip(self.vertices, self.vertices[1:]):
            total += math.hypot(b.x - a.x, b.y - a.y)
        return total

    @property
    def diagonal_count(self) -> int:
        """Number of 45° diagonal sections (one per smoothed bend)."""
        count = 0
        for a, b in zip(self.vertices, self.vertices[1:]):
            dx, dy = abs(b.x - a.x), abs(b.y - a.y)
            if dx > 1e-9 and dy > 1e-9:
                count += 1
        return count


def default_cut_length(delta: float, width: float) -> float:
    """Choose the corner cut-back distance for smoothing.

    A diagonal shortcut that cuts back ``c`` on each arm replaces ``2c`` of
    Manhattan length by ``c * sqrt(2)`` of diagonal, i.e. it shortens the
    physical path by ``c (2 - sqrt 2)``.  The electrical compensation ``δ``
    combines this geometric shortening with the (small) excess phase of the
    discontinuity, so when ``δ`` is negative we recover the geometric cut from
    it; otherwise we fall back to one line width, the customary mitre size.
    """
    if delta < 0:
        return -delta / (2.0 - math.sqrt(2.0))
    return max(width, 1.0)


def smooth_route(
    route: RoutedMicrostrip, delta: float, width: float | None = None
) -> SmoothedRoute:
    """Smooth one routed microstrip."""
    width = route.width if width is None else width
    cut = default_cut_length(delta, width if width > 0 else 1.0)
    vertices = route.path.smoothed_vertices(cut)
    return SmoothedRoute(route.net_name, tuple(vertices), width)


def smooth_layout(layout: Layout) -> Dict[str, SmoothedRoute]:
    """Smooth every routed microstrip of a layout.

    Returns a mapping from net name to its smoothed polyline.  The layout
    itself is not modified — smoothing is a view used by exports and by the
    RF substrate when it wants physical (rather than equivalent) lengths.
    """
    delta = layout.netlist.technology.bend_compensation
    smoothed: Dict[str, SmoothedRoute] = {}
    for route in layout.routes:
        width = route.width or layout.netlist.microstrip_width(route.net_name)
        smoothed[route.net_name] = smooth_route(route, delta, width)
    return smoothed


def smoothing_length_change(route: RoutedMicrostrip, delta: float) -> float:
    """Difference between smoothed physical length and rectilinear length.

    Useful for validating the equivalent-length model: for a route with ``n``
    bends the physical length changes by roughly ``n`` times the geometric
    part of ``δ``.
    """
    smoothed = smooth_route(route, delta)
    return smoothed.length - route.geometric_length
