"""JSON serialisation of layouts (placement + routing + metadata)."""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Mapping, Optional, Union

from repro.errors import LayoutError
from repro.circuit.loader import netlist_from_dict, netlist_to_dict
from repro.circuit.netlist import Netlist
from repro.layout.layout import Layout
from repro.layout.placement import Placement
from repro.layout.routing import RoutedMicrostrip

PathLike = Union[str, Path]

#: Current schema version of the layout document.
SCHEMA_VERSION = 1


def layout_to_dict(layout: Layout, embed_netlist: bool = True) -> Dict[str, object]:
    """Serialise a layout to a JSON-friendly dictionary.

    With ``embed_netlist=True`` (default) the document is self-contained;
    otherwise only the netlist name is recorded and the caller must supply
    the netlist again when loading.
    """
    data: Dict[str, object] = {
        "schema_version": SCHEMA_VERSION,
        "circuit": layout.netlist.name,
        "metadata": dict(layout.metadata),
        "placements": [placement.as_dict() for placement in layout.placements],
        "routes": [route.as_dict() for route in layout.routes],
    }
    if embed_netlist:
        data["netlist"] = netlist_to_dict(layout.netlist)
    return data


def layout_from_dict(
    data: Mapping[str, object], netlist: Optional[Netlist] = None
) -> Layout:
    """Deserialise a layout.

    ``netlist`` overrides any embedded netlist; it must be provided when the
    document was written with ``embed_netlist=False``.
    """
    try:
        version = int(data.get("schema_version", SCHEMA_VERSION))
        if version != SCHEMA_VERSION:
            raise LayoutError(
                f"unsupported layout schema version {version}; expected {SCHEMA_VERSION}"
            )
        if netlist is None:
            embedded = data.get("netlist")
            if embedded is None:
                raise LayoutError(
                    "layout document has no embedded netlist; pass one explicitly"
                )
            netlist = netlist_from_dict(dict(embedded))
        placements = [Placement.from_dict(entry) for entry in data.get("placements", [])]
        routes = [RoutedMicrostrip.from_dict(entry) for entry in data.get("routes", [])]
        metadata = dict(data.get("metadata", {}))
        return Layout(netlist, placements, routes, metadata=metadata)
    except LayoutError:
        raise
    except (KeyError, ValueError, TypeError) as exc:
        raise LayoutError(f"malformed layout document: {exc}") from exc


def save_layout(layout: Layout, path: PathLike, embed_netlist: bool = True) -> Path:
    """Write a layout to a JSON file and return the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        json.dump(layout_to_dict(layout, embed_netlist), handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_layout(path: PathLike, netlist: Optional[Netlist] = None) -> Layout:
    """Read a layout from a JSON file."""
    path = Path(path)
    if not path.exists():
        raise LayoutError(f"layout file not found: {path}")
    try:
        with path.open("r", encoding="utf-8") as handle:
            data = json.load(handle)
    except json.JSONDecodeError as exc:
        raise LayoutError(f"invalid JSON in {path}: {exc}") from exc
    return layout_from_dict(data, netlist)
